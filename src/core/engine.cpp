#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/ir.h"
#include "obs/counters.h"
#include "php/walk.h"
#include "util/strings.h"
#include "util/timing.h"

namespace phpsafe {

using php::NodeKind;

namespace {

/// Expression-nesting limit for eval(). The parser admits ~500 nested
/// expressions per file; each level costs two engine frames, which are an
/// order of magnitude larger than parser frames under sanitizer builds, so
/// taint evaluation truncates (returns clean) before the stack is at risk.
constexpr int kMaxEvalDepth = 400;

struct EvalDepthScope {
    explicit EvalDepthScope(int& depth) : depth_(depth) { ++depth_; }
    ~EvalDepthScope() { --depth_; }
    int& depth_;
};

void append_ascii_lower(std::string& out, std::string_view s) {
    for (char c : s)
        out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + ('a' - 'A'))
                                           : c);
}

/// Summary-store key for a function: ascii_lower(ref.qualified_name()) in a
/// single allocation. Stage 1 recomputes this for every declared function on
/// every scan, so the two-allocation spelling shows up in seeded rescans.
std::string lowered_key(const php::FunctionRef& ref) {
    std::string key;
    if (!ref.decl) return "<null>";
    if (ref.owner) {
        key.reserve(ref.owner->name.size() + ref.decl->name.size() + 2);
        append_ascii_lower(key, ref.owner->name);
        key += "::";
    } else {
        key.reserve(ref.decl->name.size());
    }
    append_ascii_lower(key, ref.decl->name);
    return key;
}

/// Best-effort static reconstruction of an include path: concatenates the
/// literal fragments of concat chains / interpolated strings and ignores
/// dynamic parts (dirname(__FILE__), constants, ...).
std::string static_path_hint(const php::Expr& expr) {
    switch (expr.kind) {
        case NodeKind::kLiteral: {
            const auto& lit = static_cast<const php::Literal&>(expr);
            return lit.type == php::Literal::Type::kString ? std::string(lit.value)
                                                           : std::string();
        }
        case NodeKind::kInterpString: {
            std::string out;
            for (const php::ExprPtr& part :
                 static_cast<const php::InterpString&>(expr).parts)
                if (part) out += static_path_hint(*part);
            return out;
        }
        case NodeKind::kBinary: {
            const auto& bin = static_cast<const php::Binary&>(expr);
            if (bin.op != php::BinaryOp::kConcat) return {};
            return static_path_hint(*bin.lhs) + static_path_hint(*bin.rhs);
        }
        default:
            return {};
    }
}

/// Extracts "$_GET['key']"-style display text for a superglobal access.
std::string superglobal_display(std::string_view name, const php::Expr* index) {
    std::string out(name);
    if (!index) return out;
    if (index->kind == NodeKind::kLiteral) {
        const auto& lit = static_cast<const php::Literal&>(*index);
        out += "['";
        out += lit.value;
        out += "']";
        return out;
    }
    out += "[...]";
    return out;
}

}  // namespace

std::string_view to_string(EngineBackend backend) noexcept {
    switch (backend) {
        case EngineBackend::kAst:
            return "ast";
        case EngineBackend::kIr:
            return "ir";
        case EngineBackend::kDifferential:
            return "differential";
    }
    return "ast";
}

bool backend_from_string(std::string_view text, EngineBackend& out) noexcept {
    if (text == "ast") {
        out = EngineBackend::kAst;
        return true;
    }
    if (text == "ir") {
        out = EngineBackend::kIr;
        return true;
    }
    if (text == "differential") {
        out = EngineBackend::kDifferential;
        return true;
    }
    return false;
}

EngineBackend default_engine_backend() {
    static const EngineBackend cached = [] {
        EngineBackend backend = EngineBackend::kAst;
        if (const char* env = std::getenv("PHPSAFE_BACKEND");
            env && *env && !backend_from_string(env, backend))
            std::fprintf(stderr,
                         "phpsafe: ignoring unknown PHPSAFE_BACKEND=%s "
                         "(expected ast|ir|differential)\n",
                         env);
        return backend;
    }();
    return cached;
}

AnalysisOptions AnalysisOptions::phpsafe() {
    AnalysisOptions options;
    options.tool_name = "phpSAFE";
    options.oop_support = true;
    options.analyze_uncalled_functions = true;
    options.max_include_depth = 8;
    return options;
}

AnalysisOptions AnalysisOptions::rips_like() {
    AnalysisOptions options;
    options.tool_name = "RIPS";
    options.oop_support = false;
    options.analyze_uncalled_functions = true;
    options.max_include_depth = 64;  // completed every file in the paper
    options.analyze_closures = true;
    return options;
}

AnalysisOptions AnalysisOptions::pixy_like() {
    AnalysisOptions options;
    options.tool_name = "Pixy";
    options.oop_support = false;
    options.fail_on_oop_file = true;  // predates PHP 5 OOP
    options.analyze_uncalled_functions = false;  // paper §V.A observation
    options.analyze_closures = false;            // closures are PHP 5.3
    options.max_include_depth = 16;
    return options;
}

std::string AnalysisOptions::fingerprint() const {
    std::string fp = tool_name;
    const auto flag = [&fp](bool value) { fp += value ? "|1" : "|0"; };
    flag(oop_support);
    flag(fail_on_oop_file);
    flag(analyze_uncalled_functions);
    flag(assume_params_tainted_in_uncalled);
    flag(track_object_types);
    flag(analyze_closures);
    flag(hermetic_summaries);
    flag(capture_entry_files);
    fp += '|' + std::to_string(loop_iterations);
    fp += '|' + std::to_string(max_include_depth);
    fp += '|' + std::to_string(max_call_depth);
    fp += '|';
    fp += to_string(engine_backend);
    return fp;
}

Engine::Engine(const KnowledgeBase& kb, AnalysisOptions options)
    : kb_(kb), options_(std::move(options)) {}

Engine::~Engine() = default;  // out-of-line: ir::Module is incomplete in the header

AnalysisResult Engine::analyze(const php::Project& project) {
    return analyze(project, SummaryExchange{});
}

AnalysisResult Engine::analyze(const php::Project& project,
                               const SummaryExchange& exchange) {
    if (options_.engine_backend == EngineBackend::kDifferential)
        return analyze_differential(project, exchange);
    project_ = &project;
    exchange_ = exchange;
    capture_stack_.clear();
    run_artifacts_.clear();
    symbols_.clear();
    this_sym_ = symbols_.intern("$this");
    diagnostics_.clear();
    findings_.clear();
    globals_ = Scope{};
    globals_.is_global = true;
    properties_.clear();
    summaries_.clear();
    included_once_.clear();
    include_stack_.clear();
    analyzed_closures_.clear();
    constructing_classes_.clear();
    call_depth_ = 0;
    eval_depth_ = 0;
    stats_ = AnalysisStats{};
    include_cpu_seconds_ = 0;
    lower_cpu_seconds_ = 0;
    ir_module_.reset();
    if (options_.engine_backend == EngineBackend::kIr)
        ir_module_ = std::make_unique<ir::Module>();

    AnalysisResult result;
    result.tool = options_.tool_name;
    result.plugin = project.name();
    result.files_total = static_cast<int>(project.files().size());

    // Stage 1 (paper §III.C): inter-procedural parsing of the functions that
    // are not called from the source code of the plugin. Hermetic mode
    // widens this to every declared function (in declaration order) so that
    // which summaries exist — and what they contain — never depends on which
    // caller reached them first.
    if (options_.analyze_uncalled_functions) {
        if (options_.hermetic_summaries) {
            summarize_all_declared();
            if (options_.assume_params_tainted_in_uncalled) summarize_uncalled();
        } else {
            summarize_uncalled();
        }
    }

    // Stage 2: inter-procedural analysis starting from each file's "main
    // function", following the program flow (calls, includes) from there.
    // With capture_entry_files on, each walk runs inside an entry capture
    // frame (keyed "file:<name>" — a name no function key can collide with)
    // and a seeded run replays reusable entry artifacts instead of walking.
    const bool entry_exchange = options_.capture_entry_files &&
                                options_.hermetic_summaries &&
                                (exchange_.seeds || exchange_.capture);
    std::set<std::string> failed_files;
    for (const std::shared_ptr<const php::ParsedFile>& file_ptr : project.files()) {
        const php::ParsedFile& file = *file_ptr;
        if (observer_) observer_->on_file_begin(file);
        if (file.parse_failed) {
            failed_files.insert(file.source->name());
            if (observer_) observer_->on_file_end(file, /*failed=*/true);
            continue;
        }
        if (options_.fail_on_oop_file && file_uses_oop(file)) {
            diagnostics_.add(Severity::kFatal, {file.source->name(), 1},
                             "cannot analyze file: object-oriented constructs "
                             "are not supported by this tool");
            failed_files.insert(file.source->name());
            if (observer_) observer_->on_file_end(file, /*failed=*/true);
            continue;
        }
        const std::string entry_key = "file:" + file.source->name();
        current_file_failed_ = false;
        if (entry_exchange && apply_entry_seed(entry_key)) {
            // apply_entry_seed replayed the walk's diagnostics and failure
            // state (a deterministic include-depth abort seeds like any
            // other walk).
            if (current_file_failed_) failed_files.insert(file.source->name());
            if (observer_) observer_->on_file_end(file, current_file_failed_);
            continue;
        }
        const bool capture_entry = entry_exchange && exchange_.capture;
        if (capture_entry) {
            CaptureFrame frame;
            frame.key = entry_key;
            frame.entry = true;
            frame.diag_mark = diagnostics_.diagnostics().size();
            capture_stack_.push_back(std::move(frame));
            note_dep(SummaryDep::Kind::kFile, file.source->name(),
                     file.source->name());
        }
        analyze_entry_file(file);
        if (capture_entry) finish_capture(entry_key, FunctionSummary{});
        if (current_file_failed_) failed_files.insert(file.source->name());
        if (observer_) observer_->on_file_end(file, current_file_failed_);
    }

    // Stage 3: any function still without a summary (reached only through
    // dynamic calls) is analyzed for 100% code coverage.
    if (options_.analyze_uncalled_functions) {
        for (const php::FunctionRef& ref : project.all_functions()) {
            if (!ref.decl) continue;
            const std::string key = lowered_key(ref);
            const FunctionSummary* s = summaries_.find(key);
            if (!s || !s->analyzed) summarize(ref);
        }
    }

    stats_.uncalled_functions =
        static_cast<int>(project.uncalled_functions().size());
    stats_.functions_summarized = static_cast<int>(summaries_.analyzed_names().size());
    result.stats = stats_;

    deduplicate(findings_);
    result.findings = std::move(findings_);
    result.include_cpu_seconds = include_cpu_seconds_;
    result.lower_cpu_seconds = lower_cpu_seconds_;
    result.files_failed = static_cast<int>(failed_files.size());
    result.error_messages =
        diagnostics_.count(Severity::kError) + diagnostics_.count(Severity::kFatal);
    result.diagnostics = diagnostics_.diagnostics();
    findings_.clear();
    exchange_ = SummaryExchange{};  // seed/capture pointers die with the call
    return result;
}

AnalysisResult Engine::analyze_differential(const php::Project& project,
                                            const SummaryExchange& exchange) {
    // The IR run goes first and is seed-only: it must see the same warm
    // state as the AST run, but only the AST run may produce the captures
    // (and observer events) the caller consumes — otherwise a differential
    // run would double-report or overwrite artifacts.
    Engine ir_engine(
        kb_, options_.to_builder().engine_backend(EngineBackend::kIr).build());
    SummaryExchange seed_only;
    seed_only.seeds = exchange.seeds;
    const obs::CounterDelta ir_delta;
    const AnalysisResult ir_result = ir_engine.analyze(project, seed_only);
    // Roll the IR sub-run's counter increments back out of the thread's
    // block, keeping only the ir_* group: the caller's counters must stay
    // consistent with the (AST) result it receives — findings_xss equal to
    // the XSS findings in it, sink_checks describing one run's work — while
    // still surfacing the IR telemetry only this sub-run can produce.
    obs::Counters rollback = ir_delta.take();
    rollback.ir_bodies_lowered = 0;
    rollback.ir_insts_lowered = 0;
    rollback.ir_blocks_lowered = 0;
    rollback.ir_body_runs = 0;
    rollback.ir_fallbacks = 0;
    rollback.ir_mismatches = 0;
    obs::tls() = obs::tls() - rollback;

    Engine ast_engine(
        kb_, options_.to_builder().engine_backend(EngineBackend::kAst).build());
    ast_engine.set_observer(observer_);
    AnalysisResult result = ast_engine.analyze(project, exchange);
    result.lower_cpu_seconds = ir_result.lower_cpu_seconds;

    if (result_signature(ir_result) != result_signature(result)) {
        ++obs::tls().ir_mismatches;
        Diagnostic diag;
        diag.severity = Severity::kError;
        diag.location = SourceLocation{project.name(), 0};
        diag.message = std::string(kBackendMismatchMarker);
        diag.message += ": IR findings are not byte-identical to the AST "
                        "oracle for plugin ";
        diag.message += project.name();
        result.diagnostics.push_back(std::move(diag));
        ++result.error_messages;
    }
    return result;
}

void Engine::summarize_uncalled() {
    for (const php::FunctionRef& ref : project_->uncalled_functions()) {
        if (!ref.decl) continue;
        FunctionSummary& summary = summarize(ref);
        if (!options_.assume_params_tainted_in_uncalled) continue;
        // The CMS can call these directly with attacker-controlled
        // arguments; report their parameter-derived sink flows.
        for (const ParamSinkFlow& psf : summary.param_sinks) {
            TaintValue value;
            value.active = VulnSet::of(psf.vuln);
            value.vector = InputVector::kFunction;
            value.via_oop = psf.via_oop;
            value.add_step(psf.location,
                           "parameter of uncalled function " + ref.qualified_name());
            report(psf.vuln, psf.location, psf.sink_name, psf.variable, value);
        }
    }
}

void Engine::summarize_all_declared() {
    // Hermetic stage 1' (service mode): summarize every declared function
    // context-free before any entry file runs. Cold and warm runs therefore
    // visit summaries in the same (declaration) order, and each summary is a
    // pure function of the project content its computation observed — the
    // property the cross-run seed/capture exchange relies on.
    for (const php::FunctionRef& ref : project_->all_functions()) {
        if (!ref.decl) continue;
        summarize(ref);
    }
}

// ---------------------------------------------------------------------------
// Cross-run summary capture
// ---------------------------------------------------------------------------

void Engine::note_dep(SummaryDep::Kind kind, std::string_view name,
                      std::string_view file) {
    if (capture_stack_.empty()) return;
    SummaryDep dep;
    dep.kind = kind;
    dep.name.assign(name);
    dep.file.assign(file);
    capture_stack_.back().artifact.deps.push_back(std::move(dep));
}

void Engine::touch_shared_state() {
    // Cheap no-op outside capture: the loop body never runs.
    for (CaptureFrame& frame : capture_stack_) frame.reusable = false;
}

const TaintValue* Engine::find_shared_slot(Symbol name) {
    const std::string_view text = symbols_.name(name);
    if (!text.empty() && text.front() == '$') return globals_.vars.find(name);
    return properties_.find_slot(text);
}

void Engine::note_shared_read(Symbol name) {
    for (CaptureFrame& frame : capture_stack_) {
        if (!frame.entry) {
            // A summary replay cannot reproduce shared state.
            frame.reusable = false;
            continue;
        }
        // Foreign read: the value came from another computation's write (or
        // the deterministic default). Record what was observed — the seed
        // applies later only while the slot still matches — instead of
        // disqualifying outright. Only the first touch matters: within one
        // walk nothing else runs, so the pre-walk value is stable.
        if (frame.slots_written.contains(name) ||
            frame.foreign_observed.contains(name))
            continue;
        const TaintValue* value = find_shared_slot(name);
        frame.foreign_observed.emplace(name,
                                       value ? value_fingerprint(*value) : 0);
    }
}

void Engine::note_shared_write(Symbol name, bool strong) {
    // Call BEFORE mutating the store: a weak merge observes the prior state
    // like a read, and the observation must capture the pre-write value.
    for (CaptureFrame& frame : capture_stack_) {
        if (!frame.entry) {
            frame.reusable = false;  // summary replay cannot re-execute it
            continue;
        }
        if (!strong && !frame.slots_written.contains(name) &&
            !frame.foreign_observed.contains(name)) {
            const TaintValue* value = find_shared_slot(name);
            frame.foreign_observed.emplace(
                name, value ? value_fingerprint(*value) : 0);
        }
        // Strong or weak, the final value is snapshotted at finish_capture
        // and replayed on seeding (a weak merge's prior-state input is
        // pinned by the observation above).
        frame.slots_written.insert(name);
    }
}

bool Engine::apply_summary_seed(const std::string& key, FunctionSummary& slot) {
    if (!exchange_.seeds) return false;
    if (exchange_.seed_block && exchange_.seed_block->count(key)) return false;
    const auto it = exchange_.seeds->find(key);
    if (it == exchange_.seeds->end()) return false;
    const SummaryArtifact* artifact = it->second;
    slot = artifact->summary;
    slot.analyzed = true;
    slot.in_progress = false;
    // Replay the findings the original computation reported, through the
    // same counter and observer hooks a fresh analysis would hit.
    for (const Finding& finding : artifact->findings) {
        if (finding.kind == VulnKind::kSqli)
            ++obs::tls().findings_sqli;
        else
            ++obs::tls().findings_xss;
        if (observer_) observer_->on_finding(finding);
        findings_.push_back(finding);
    }
    // An enclosing capture inherits everything the seeded summary's original
    // computation observed: the caller's artifact embeds its content.
    if (!capture_stack_.empty()) {
        CaptureFrame& top = capture_stack_.back();
        top.artifact.deps.insert(top.artifact.deps.end(), artifact->deps.begin(),
                                 artifact->deps.end());
    }
    run_artifacts_[key] = artifact;
    ++obs::tls().cache_summary_hits;
    return true;
}

bool Engine::apply_entry_seed(const std::string& key) {
    if (!exchange_.seeds) return false;
    if (exchange_.seed_block && exchange_.seed_block->count(key)) return false;
    const auto it = exchange_.seeds->find(key);
    if (it == exchange_.seeds->end()) return false;
    const SummaryArtifact* artifact = it->second;
    // The walk's cross-entry inputs must be unchanged: every shared slot it
    // observed must still hold a value with the captured fingerprint.
    // Checked against the live stores — state left by whatever mix of
    // seeded and re-walked entries ran before this one — so no mutation may
    // happen before all checks pass.
    for (const auto& [name, expected] : artifact->foreign_reads) {
        const TaintValue* value = find_shared_slot(sym(name));
        if ((value ? value_fingerprint(*value) : 0) != expected) return false;
    }
    // Replay the walk's findings through the same counter and observer
    // hooks a fresh walk would hit, then re-apply its final shared-slot
    // writes (plain globals and persistent property slots) so later entry
    // files observe the state the walk would have left.
    for (const Finding& finding : artifact->findings) {
        if (finding.kind == VulnKind::kSqli)
            ++obs::tls().findings_sqli;
        else
            ++obs::tls().findings_xss;
        if (observer_) observer_->on_finding(finding);
        findings_.push_back(finding);
    }
    for (const auto& [name, value] : artifact->shared_writes) {
        if (!name.empty() && name.front() == '$')
            globals_.vars[sym(name)] = value;
        else
            properties_.slot(name) = value;
    }
    for (const Diagnostic& d : artifact->diagnostics)
        diagnostics_.add(d.severity, d.location, d.message);
    current_file_failed_ = artifact->file_failed;
    run_artifacts_[key] = artifact;
    ++obs::tls().cache_summary_hits;
    return true;
}

void Engine::finish_capture(const std::string& key,
                            const FunctionSummary& summary) {
    CaptureFrame frame = std::move(capture_stack_.back());
    capture_stack_.pop_back();
    frame.artifact.summary = summary;
    if (frame.entry) {
        // Snapshot the final value of every shared slot the walk wrote —
        // plain globals from globals_, property slots from the persistent
        // store; apply_entry_seed replays these. Name-sorted so the
        // artifact's bytes do not depend on this run's interning order.
        frame.artifact.shared_writes.reserve(frame.slots_written.size());
        for (const Symbol name : frame.slots_written) {
            const std::string_view text = symbols_.name(name);
            const TaintValue* value = (!text.empty() && text.front() == '$')
                                          ? globals_.vars.find(name)
                                          : properties_.find_slot(text);
            frame.artifact.shared_writes.emplace_back(
                std::string(text), value ? *value : TaintValue::clean());
        }
        std::sort(frame.artifact.shared_writes.begin(),
                  frame.artifact.shared_writes.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    if (frame.entry) {
        // The walk's observed cross-entry inputs become the seed-time
        // validity check (apply_entry_seed). Name-sorted like the writes.
        frame.artifact.foreign_reads.reserve(frame.foreign_observed.size());
        for (const auto& [name, sig] : frame.foreign_observed)
            frame.artifact.foreign_reads.emplace_back(
                std::string(symbols_.name(name)), sig);
        std::sort(frame.artifact.foreign_reads.begin(),
                  frame.artifact.foreign_reads.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    if (frame.entry) {
        // The walk's diagnostic stream and failure state replay on seeding
        // (a deterministic abort is as replayable as a clean walk).
        const auto& all = diagnostics_.diagnostics();
        frame.artifact.diagnostics.assign(all.begin() + frame.diag_mark,
                                          all.end());
        frame.artifact.file_failed = current_file_failed_;
    }
    // A function body cut short by a failing file would yield a truncated
    // summary; never offer it for reuse. Entry artifacts instead record the
    // failure and stay seedable.
    frame.artifact.reusable =
        frame.reusable && (frame.entry || !current_file_failed_);
    std::sort(frame.artifact.deps.begin(), frame.artifact.deps.end());
    frame.artifact.deps.erase(std::unique(frame.artifact.deps.begin(),
                                          frame.artifact.deps.end()),
                              frame.artifact.deps.end());
    if (!capture_stack_.empty()) {
        // The caller transitively depends on everything this callee observed.
        CaptureFrame& parent = capture_stack_.back();
        parent.artifact.deps.insert(parent.artifact.deps.end(),
                                    frame.artifact.deps.begin(),
                                    frame.artifact.deps.end());
        if (!frame.artifact.reusable) parent.reusable = false;
    }
    const auto [it, inserted] =
        exchange_.capture->insert_or_assign(key, std::move(frame.artifact));
    run_artifacts_[key] = &it->second;
    (void)inserted;
}

bool Engine::file_uses_oop(const php::ParsedFile& file) const {
    bool uses = false;
    auto expr_visitor = [&](const php::Expr& e) {
        switch (e.kind) {
            case NodeKind::kMethodCall:
            case NodeKind::kStaticCall:
            case NodeKind::kNew:
            case NodeKind::kPropertyAccess:
            case NodeKind::kStaticPropertyAccess:
                uses = true;
                break;
            default:
                break;
        }
    };
    auto stmt_visitor = [&](const php::Stmt& s) {
        if (s.kind == NodeKind::kClassDecl) uses = true;
    };
    for (const php::StmtPtr& stmt : file.unit.statements) {
        if (!stmt) continue;
        php::walk_stmt(*stmt, expr_visitor, stmt_visitor);
        if (uses) return true;
    }
    return false;
}

void Engine::analyze_entry_file(const php::ParsedFile& file) {
    Scope scope;
    scope.is_global = true;
    scope.file = file.source->name();
    include_stack_.clear();
    include_stack_.push_back(&file);
    included_once_.clear();
    included_once_.insert(file.source->name());
    run_body(file.unit.statements, scope);
    // The file-level scope dies here, but `global $x` statements alias into
    // globals_, which persists across entry files: taint written to a plain
    // global by one entry is visible to every later entry in the run (the
    // entry-capture machinery tracks those reads/writes for exactly that
    // reason).
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Engine::run_body(const ArenaVector<php::StmtPtr>& stmts, Scope& scope) {
    if (!ir_module_) {
        exec_stmts(stmts, scope);
        return;
    }
    const ir::Body* body = ir_module_->find(stmts);
    if (!body) {
        const double lower_start = thread_cpu_seconds();
        body = &ir_module_->lower(kb_, options_, symbols_, stmts);
        lower_cpu_seconds_ += thread_cpu_seconds() - lower_start;
    }
    // The IR stream carries no truncation guard (lowered ops cannot bail
    // mid-expression); it is only allowed to run when no lowered node could
    // have reached the evaluator's depth limit. Bodies entered too deep run
    // on the AST path, whose truncation diagnostics are the semantics.
    if (eval_depth_ + body->max_depth <= kMaxEvalDepth) {
        run_ir_body(*body, scope);
    } else {
        ++obs::tls().ir_fallbacks;
        exec_stmts(stmts, scope);
    }
}

void Engine::exec_stmts(const ArenaVector<php::StmtPtr>& stmts, Scope& scope) {
    for (const php::StmtPtr& stmt : stmts) {
        if (current_file_failed_) return;
        if (stmt) exec_stmt(*stmt, scope);
    }
}

void Engine::exec_stmt(const php::Stmt& stmt, Scope& scope) {
    switch (stmt.kind) {
        case NodeKind::kExprStmt:
            if (const auto& n = static_cast<const php::ExprStmt&>(stmt); n.expr)
                eval(*n.expr, scope);
            break;
        case NodeKind::kEchoStmt: {
            const auto& n = static_cast<const php::EchoStmt&>(stmt);
            for (const php::ExprPtr& arg : n.args) {
                if (!arg) continue;
                const TaintValue value = eval(*arg, scope);
                check_echo_arg(n, *arg, value, scope);
            }
            break;
        }
        case NodeKind::kBlock:
            exec_stmts(static_cast<const php::Block&>(stmt).statements, scope);
            break;
        case NodeKind::kIfStmt: {
            // Paper §III.C: conditional jumps do not change the data flow;
            // the blocks of code are parsed normally (sequentially).
            const auto& n = static_cast<const php::IfStmt&>(stmt);
            if (n.cond) eval(*n.cond, scope);
            if (n.then_branch) exec_stmt(*n.then_branch, scope);
            if (n.else_branch) exec_stmt(*n.else_branch, scope);
            break;
        }
        case NodeKind::kWhileStmt: {
            const auto& n = static_cast<const php::WhileStmt&>(stmt);
            for (int i = 0; i < std::max(1, options_.loop_iterations); ++i) {
                if (n.cond) eval(*n.cond, scope);
                if (n.body) exec_stmt(*n.body, scope);
            }
            break;
        }
        case NodeKind::kDoWhileStmt: {
            const auto& n = static_cast<const php::DoWhileStmt&>(stmt);
            for (int i = 0; i < std::max(1, options_.loop_iterations); ++i) {
                if (n.body) exec_stmt(*n.body, scope);
                if (n.cond) eval(*n.cond, scope);
            }
            break;
        }
        case NodeKind::kForStmt: {
            const auto& n = static_cast<const php::ForStmt&>(stmt);
            for (const php::ExprPtr& e : n.init)
                if (e) eval(*e, scope);
            for (int i = 0; i < std::max(1, options_.loop_iterations); ++i) {
                for (const php::ExprPtr& e : n.cond)
                    if (e) eval(*e, scope);
                if (n.body) exec_stmt(*n.body, scope);
                for (const php::ExprPtr& e : n.update)
                    if (e) eval(*e, scope);
            }
            break;
        }
        case NodeKind::kForeachStmt: {
            const auto& n = static_cast<const php::ForeachStmt&>(stmt);
            TaintValue iterable = foreach_prepare(
                n, n.iterable ? eval(*n.iterable, scope) : TaintValue::clean(),
                scope);
            for (int i = 0; i < std::max(1, options_.loop_iterations); ++i) {
                if (n.key_var) assign_to(*n.key_var, iterable, scope);
                if (n.value_var) assign_to(*n.value_var, iterable, scope);
                if (n.body) exec_stmt(*n.body, scope);
            }
            break;
        }
        case NodeKind::kSwitchStmt: {
            const auto& n = static_cast<const php::SwitchStmt&>(stmt);
            if (n.subject) eval(*n.subject, scope);
            for (const php::SwitchCase& c : n.cases) {
                if (c.match) eval(*c.match, scope);
                exec_stmts(c.body, scope);
            }
            break;
        }
        case NodeKind::kBreakStmt:
        case NodeKind::kContinueStmt:
        case NodeKind::kInlineHtmlStmt:
        case NodeKind::kFunctionDecl:  // indexed during model construction
        case NodeKind::kUseStmt:
            break;
        case NodeKind::kReturnStmt: {
            const auto& n = static_cast<const php::ReturnStmt&>(stmt);
            const TaintValue value =
                n.value ? eval(*n.value, scope) : TaintValue::clean();
            finish_return(value, scope);
            break;
        }
        case NodeKind::kGlobalStmt:
            exec_global_decl(static_cast<const php::GlobalStmt&>(stmt), scope);
            break;
        case NodeKind::kStaticVarStmt: {
            const auto& n = static_cast<const php::StaticVarStmt&>(stmt);
            for (const auto& [name, init] : n.vars) {
                if (!init) continue;
                TaintValue value = eval(*init, scope);
                scope.vars[sym(name)] = std::move(value);
            }
            break;
        }
        case NodeKind::kUnsetStmt:
            exec_unset(static_cast<const php::UnsetStmt&>(stmt), scope);
            break;
        case NodeKind::kClassDecl: {
            const auto& n = static_cast<const php::ClassDecl&>(stmt);
            Scope* outer = &scope;
            for (const php::PropertyDecl& prop : n.properties) {
                if (!prop.default_value) continue;
                TaintValue value = eval(*prop.default_value, *outer);
                // Defaults merge into the persistent store (weak write).
                note_shared_write(slot_sym(n.name, prop.is_static, prop.name),
                                  /*strong=*/false);
                if (prop.is_static)
                    properties_.static_slot(n.name, prop.name).merge(value);
                else
                    properties_.class_slot(n.name, prop.name).merge(value);
            }
            break;
        }
        case NodeKind::kTryStmt: {
            const auto& n = static_cast<const php::TryStmt&>(stmt);
            exec_stmts(n.body, scope);
            for (const php::CatchClause& c : n.catches) {
                bind_catch_var(c, scope);
                exec_stmts(c.body, scope);
            }
            exec_stmts(n.finally_body, scope);
            break;
        }
        case NodeKind::kThrowStmt:
            if (const auto& n = static_cast<const php::ThrowStmt&>(stmt); n.value)
                eval(*n.value, scope);
            break;
        case NodeKind::kNamespaceStmt:
            exec_stmts(static_cast<const php::NamespaceStmt&>(stmt).body, scope);
            break;
        case NodeKind::kConstStmt: {
            const auto& n = static_cast<const php::ConstStmt&>(stmt);
            for (const auto& [name, value] : n.constants)
                if (value) eval(*value, scope);
            break;
        }
        default:
            break;
    }
}

void Engine::check_echo_arg(const php::EchoStmt& echo, const php::Expr& arg,
                            const TaintValue& value, Scope& scope) {
    check_sink(kXssOnly, value, loc_of(arg, scope),
               echo.from_open_tag ? "<?=" : "echo", to_php_source(arg), scope,
               value.via_oop);
}

TaintValue Engine::foreach_prepare(const php::ForeachStmt& stmt,
                                   TaintValue iterable, Scope& scope) {
    if (iterable.tainted_any())
        iterable.add_step(loc_of(stmt, scope), "iterated by foreach");
    return iterable;
}

void Engine::finish_return(const TaintValue& value, Scope& scope) {
    if (!scope.summary) return;
    // Split the value into parameter-dependent flows and base taint.
    for (const ParamFlow& pf : value.param_flows) {
        bool merged = false;
        for (ParamFlow& existing : scope.summary->param_to_return) {
            if (existing.param == pf.param) {
                existing.kinds |= pf.kinds;
                merged = true;
            }
        }
        if (!merged) scope.summary->param_to_return.push_back(pf);
    }
    TaintValue base = value;
    base.param_flows.clear();
    scope.summary->return_base.merge(base);
}

void Engine::exec_global_decl(const php::GlobalStmt& stmt, Scope& scope) {
    for (const std::string_view name : stmt.names)
        scope.global_aliases.insert(sym(name));
}

void Engine::exec_unset(const php::UnsetStmt& stmt, Scope& scope) {
    // Paper: unsetting destroys the variable; it becomes untainted and
    // non-vulnerable.
    for (const php::ExprPtr& var : stmt.vars) {
        if (!var) continue;
        if (var->kind == NodeKind::kVariable) {
            const auto& v = static_cast<const php::Variable&>(*var);
            const Symbol name_sym = sym(v.name);
            if (scope.global_aliases.contains(name_sym) || scope.is_global) {
                // Destroying the variable is a strong write of the clean
                // state.
                note_shared_write(name_sym, /*strong=*/true);
                global_slot(name_sym).reset();
            }
            if (!scope.is_global) scope.vars[name_sym].reset();
        } else if (var->kind == NodeKind::kPropertyAccess) {
            // Weak store: resetting a property of one instance must not
            // clear the merged class slot; drop the path slot.
            const auto& p = static_cast<const php::PropertyAccess&>(*var);
            if (p.object && p.object->kind == NodeKind::kVariable &&
                !p.property.empty()) {
                const auto& base = static_cast<const php::Variable&>(*p.object);
                scope.vars.erase(path_sym(base.name, p.property));
            }
        }
        // unset($a['k']) leaves the whole-array taint untouched.
    }
}

void Engine::bind_catch_var(const php::CatchClause& clause, Scope& scope) {
    if (!clause.var.empty()) scope.vars[sym(clause.var)] = TaintValue::clean();
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TaintValue Engine::eval(const php::Expr& expr, Scope& scope) {
    if (eval_depth_ >= kMaxEvalDepth) {
        diagnostics_.add(Severity::kWarning, loc_of(expr, scope),
                         "expression nesting exceeds " +
                             std::to_string(kMaxEvalDepth) +
                             " levels; taint evaluation truncated");
        // Entry frames capture the walk's diagnostics and replay them on
        // seeding; a function-summary seed replays only findings, so a
        // warning emitted during summarization would be dropped — don't
        // reuse function frames that saw one.
        for (CaptureFrame& frame : capture_stack_)
            if (!frame.entry) frame.reusable = false;
        return TaintValue::clean();
    }
    const EvalDepthScope depth_scope(eval_depth_);
    switch (expr.kind) {
        case NodeKind::kLiteral:
        case NodeKind::kClassConstAccess:
            return TaintValue::clean();
        case NodeKind::kInterpString: {
            const auto& n = static_cast<const php::InterpString&>(expr);
            TaintValue out;
            for (const php::ExprPtr& part : n.parts)
                if (part) out.merge(eval(*part, scope));
            return out;
        }
        case NodeKind::kVariable:
            return eval_variable(static_cast<const php::Variable&>(expr), scope);
        case NodeKind::kArrayAccess:
            return eval_array_access(static_cast<const php::ArrayAccess&>(expr), scope);
        case NodeKind::kPropertyAccess:
            return eval_property_access(static_cast<const php::PropertyAccess&>(expr),
                                        scope);
        case NodeKind::kStaticPropertyAccess:
            if (!options_.oop_support) return TaintValue::clean();
            return read_static_property(
                static_cast<const php::StaticPropertyAccess&>(expr), scope);
        case NodeKind::kFunctionCall:
            return eval_function_call(static_cast<const php::FunctionCall&>(expr), scope);
        case NodeKind::kMethodCall:
            return eval_method_call(static_cast<const php::MethodCall&>(expr), scope);
        case NodeKind::kStaticCall:
            return eval_static_call(static_cast<const php::StaticCall&>(expr), scope);
        case NodeKind::kNew:
            return eval_new(static_cast<const php::New&>(expr), scope);
        case NodeKind::kAssign:
            return eval_assign(static_cast<const php::Assign&>(expr), scope);
        case NodeKind::kBinary: {
            // The parser builds N-term operator chains left-deep, so
            // recursing on lhs costs one frame per term — a 2000-part
            // concatenation must not consume 2000 stack frames (or the
            // eval-depth budget). Walk the left spine iteratively and fold
            // operands in source order instead.
            std::vector<const php::Binary*> spine;
            const php::Expr* leftmost = &expr;
            while (leftmost->kind == NodeKind::kBinary) {
                const auto& b = static_cast<const php::Binary&>(*leftmost);
                spine.push_back(&b);
                if (!b.lhs) break;
                leftmost = b.lhs;
            }
            TaintValue acc = leftmost->kind == NodeKind::kBinary
                                 ? TaintValue::clean()
                                 : eval(*leftmost, scope);
            for (auto it = spine.rbegin(); it != spine.rend(); ++it) {
                const php::Binary& b = **it;
                TaintValue rhs = b.rhs ? eval(*b.rhs, scope) : TaintValue::clean();
                // String concatenation and null-coalescing keep taint;
                // numeric, comparison and logical operators produce
                // harmless values.
                if (b.op == php::BinaryOp::kConcat ||
                    b.op == php::BinaryOp::kCoalesce) {
                    acc.merge(rhs);
                } else {
                    acc = TaintValue::clean();
                }
            }
            return acc;
        }
        case NodeKind::kUnary: {
            const auto& n = static_cast<const php::Unary&>(expr);
            TaintValue v = n.operand ? eval(*n.operand, scope) : TaintValue::clean();
            // Error suppression (@) passes the value through untouched.
            if (n.op == php::UnaryOp::kSuppress) return v;
            return TaintValue::clean();
        }
        case NodeKind::kCast: {
            const auto& n = static_cast<const php::Cast&>(expr);
            TaintValue v = n.operand ? eval(*n.operand, scope) : TaintValue::clean();
            return apply_cast(n, std::move(v), scope);
        }
        case NodeKind::kTernary: {
            const auto& n = static_cast<const php::Ternary&>(expr);
            TaintValue cond = n.cond ? eval(*n.cond, scope) : TaintValue::clean();
            TaintValue out;
            if (n.then_expr) {
                out = eval(*n.then_expr, scope);
            } else {
                out = cond;  // elvis `?:` yields the condition value
            }
            if (n.else_expr) out.merge(eval(*n.else_expr, scope));
            return out;
        }
        case NodeKind::kArrayLiteral: {
            const auto& n = static_cast<const php::ArrayLiteral&>(expr);
            TaintValue out;
            for (const php::ArrayItem& item : n.items) {
                if (item.key) out.merge(eval(*item.key, scope));
                if (item.value) out.merge(eval(*item.value, scope));
            }
            return out;
        }
        case NodeKind::kIssetExpr: {
            const auto& n = static_cast<const php::IssetExpr&>(expr);
            for (const php::ExprPtr& v : n.vars)
                if (v) eval(*v, scope);
            return TaintValue::clean();
        }
        case NodeKind::kEmptyExpr: {
            if (const auto& n = static_cast<const php::EmptyExpr&>(expr); n.operand)
                eval(*n.operand, scope);
            return TaintValue::clean();
        }
        case NodeKind::kIncDec: {
            if (const auto& n = static_cast<const php::IncDec&>(expr); n.operand)
                eval(*n.operand, scope);
            return TaintValue::clean();
        }
        case NodeKind::kClosure:
            return make_closure_value(static_cast<const php::Closure&>(expr),
                                      scope);
        case NodeKind::kIncludeExpr:
            return eval_include(static_cast<const php::IncludeExpr&>(expr), scope);
        case NodeKind::kListExpr:
            return TaintValue::clean();
        case NodeKind::kInstanceOf: {
            if (const auto& n = static_cast<const php::InstanceOf&>(expr); n.object)
                eval(*n.object, scope);
            return TaintValue::clean();
        }
        case NodeKind::kPrintExpr: {
            const auto& n = static_cast<const php::PrintExpr&>(expr);
            if (n.operand) {
                const TaintValue value = eval(*n.operand, scope);
                check_sink(kXssOnly, value, loc_of(expr, scope), "print",
                           to_php_source(*n.operand), scope, value.via_oop);
            }
            return TaintValue::clean();
        }
        case NodeKind::kExitExpr: {
            const auto& n = static_cast<const php::ExitExpr&>(expr);
            if (n.operand) {
                const TaintValue value = eval(*n.operand, scope);
                check_sink(kXssOnly, value, loc_of(expr, scope), "exit",
                           to_php_source(*n.operand), scope, value.via_oop);
            }
            return TaintValue::clean();
        }
        default:
            return TaintValue::clean();
    }
}

TaintValue Engine::eval_variable(const php::Variable& var, Scope& scope) {
    const std::string_view name = var.name;
    ++obs::tls().scope_lookups;

    if (name == "$this") {
        TaintValue v;
        if (scope.current_class) v.object_class = ascii_lower(scope.current_class->name);
        return v;
    }

    if (const SuperglobalInfo* sg = kb_.superglobal(name))
        return superglobal_source(*sg, loc_of(var, scope), name, nullptr);

    const Symbol name_sym = sym(name);
    const bool is_global_var =
        scope.is_global || scope.global_aliases.contains(name_sym);
    if (is_global_var) {
        TaintValue v = read_global(name, loc_of(var, scope));
        if (v.object_class.empty() && options_.track_object_types) {
            if (const std::string* cls = kb_.known_global_class(name))
                v.object_class = *cls;
        }
        if (!v.tainted_any() && v.object_class.empty() &&
            kb_.model_register_globals && scope.is_global &&
            !globals_.vars.contains(name_sym)) {
            // register_globals=1 era: any unassigned global can be supplied
            // from the request (Pixy's signature detection class).
            std::string what = "register_globals variable ";
            what += name;
            TaintValue src = TaintValue::source(
                kBothVulns, InputVector::kGet, loc_of(var, scope), std::move(what));
            globals_.vars[name_sym] = src;
            return src;
        }
        return v;
    }

    if (const TaintValue* found = scope.vars.find(resolve_alias(name_sym, scope)))
        return *found;
    if (scope.extract_taint.tainted_any() || scope.extract_taint.depends_on_params()) {
        TaintValue injected = scope.extract_taint;
        std::string step = "variable ";
        step += name;
        step += " injectable via extract()";
        injected.add_step(loc_of(var, scope), std::move(step));
        return injected;
    }
    return TaintValue::clean();
}

TaintValue Engine::eval_array_access(const php::ArrayAccess& access, Scope& scope) {
    if (!access.base) return TaintValue::clean();

    if (access.base->kind == NodeKind::kVariable) {
        const auto& base = static_cast<const php::Variable&>(*access.base);
        if (const SuperglobalInfo* sg = kb_.superglobal(base.name)) {
            if (access.index) eval(*access.index, scope);
            return superglobal_source(*sg, loc_of(access, scope), base.name,
                                      access.index);
        }
        if (base.name == "$GLOBALS" && access.index &&
            access.index->kind == NodeKind::kLiteral) {
            const auto& lit = static_cast<const php::Literal&>(*access.index);
            std::string gname = "$";
            gname += lit.value;
            return read_global(gname, loc_of(access, scope));
        }
    }

    TaintValue v = eval(*access.base, scope);
    if (access.index) eval(*access.index, scope);
    // Whole-array taint granularity: reading an element yields the array's
    // merged taint.
    return v;
}

TaintValue Engine::eval_property_access(const php::PropertyAccess& access,
                                        Scope& scope) {
    if (!access.object) return TaintValue::clean();
    if (!options_.oop_support) {
        eval(*access.object, scope);
        return TaintValue::clean();  // OOP constructs are opaque to this tool
    }

    TaintValue object = eval(*access.object, scope);
    if (access.property_expr) eval(*access.property_expr, scope);
    if (access.property.empty()) return TaintValue::clean();
    return finish_property_read(access, object, scope);
}

TaintValue Engine::finish_property_read(const php::PropertyAccess& access,
                                        const TaintValue& object, Scope& scope) {
    TaintValue out;
    // A property of a tainted value (e.g. a row object fetched from the
    // database) carries the value's taint — the paper's mail-subscribe-list
    // example ($row->sml_name from $wpdb->get_results).
    out.merge(object);
    out.object_class.clear();

    // Path-keyed slot: "$obj->prop" tracked like a variable.
    if (access.object->kind == NodeKind::kVariable) {
        const auto& base = static_cast<const php::Variable&>(*access.object);
        if (const TaintValue* slot =
                scope.vars.find(path_sym(base.name, access.property)))
            out.merge(*slot);
    }

    // Class-level slot when the receiver class is known.
    if (!object.object_class.empty()) {
        note_shared_read(
            slot_sym(object.object_class, /*is_static=*/false, access.property));
        if (const TaintValue* slot =
                properties_.find_class_slot(object.object_class, access.property))
            out.merge(*slot);
    }

    if (out.tainted_any() || out.depends_on_params()) {
        out.via_oop = true;
        out.add_step(loc_of(access, scope),
                     "read property " + to_php_source(access));
    }
    return out;
}

TaintValue Engine::read_static_property(const php::StaticPropertyAccess& access,
                                        Scope& scope) {
    const std::string cls =
        resolve_class_name(access.class_name, scope.current_class, *project_);
    if (cls.empty()) return TaintValue::clean();
    note_shared_read(slot_sym(cls, /*is_static=*/true, access.property));
    if (const TaintValue* slot = properties_.find_static_slot(cls, access.property)) {
        TaintValue out = *slot;
        if (out.tainted_any()) out.via_oop = true;
        return out;
    }
    return TaintValue::clean();
}

TaintValue Engine::superglobal_source(const SuperglobalInfo& sg,
                                      SourceLocation loc, std::string_view name,
                                      const php::Expr* index) {
    ++stats_.sources_seen;
    ++obs::tls().sources_seen;
    return TaintValue::source(sg.taint, sg.vector, std::move(loc),
                              superglobal_display(name, index));
}

TaintValue Engine::apply_cast(const php::Cast& cast, TaintValue value,
                              Scope& scope) {
    // Numeric/bool casts are sanitizers for both vulnerability kinds.
    if (cast.type == "int" || cast.type == "integer" || cast.type == "float" ||
        cast.type == "double" || cast.type == "real" || cast.type == "bool" ||
        cast.type == "boolean" || cast.type == "unset") {
        std::string label = "(";
        label += cast.type;
        label += ") cast";
        value.apply_sanitizer(kBothVulns, loc_of(cast, scope), label);
    }
    return value;
}

TaintValue Engine::make_closure_value(const php::Closure& closure, Scope& scope) {
    if (options_.analyze_closures) eval_closure_body(closure, scope);
    TaintValue out;
    out.object_class = "closure";
    return out;
}

void Engine::bind_ref_alias(const php::Assign& assign, Scope& scope) {
    const auto& target = static_cast<const php::Variable&>(*assign.target);
    const auto& source = static_cast<const php::Variable&>(*assign.value);
    const Symbol canonical = resolve_alias(sym(source.name), scope);
    const Symbol target_sym = sym(target.name);
    if (canonical != target_sym) {
        scope.ref_aliases[target_sym] = canonical;
        scope.vars.erase(target_sym);
    }
}

Symbol Engine::resolve_alias(Symbol name, const Scope& scope) const {
    Symbol current = name;
    for (int depth = 0; depth < 8; ++depth) {
        const Symbol* next = scope.ref_aliases.find(current);
        if (!next) return current;
        current = *next;
    }
    return current;
}

TaintValue Engine::eval_assign(const php::Assign& assign, Scope& scope) {
    if (!assign.target || !assign.value) return TaintValue::clean();

    // Reference assignment $a =& $b: both names share one slot from now on.
    if (assign.by_ref && assign.target->kind == NodeKind::kVariable &&
        assign.value->kind == NodeKind::kVariable) {
        bind_ref_alias(assign, scope);
        return eval(*assign.value, scope);
    }

    TaintValue value = eval(*assign.value, scope);

    switch (assign.op) {
        case php::AssignOp::kAssign:
            break;
        case php::AssignOp::kConcat:
        case php::AssignOp::kCoalesce: {
            TaintValue current = eval(*assign.target, scope);
            value.merge(current);
            break;
        }
        default: {
            // Arithmetic compound assignment produces a number.
            eval(*assign.target, scope);
            value = TaintValue::clean();
            break;
        }
    }

    assign_to(*assign.target, value, scope);
    return value;
}

void Engine::assign_to(const php::Expr& target, TaintValue value, Scope& scope,
                       bool weak) {
    switch (target.kind) {
        case NodeKind::kVariable: {
            const auto& var = static_cast<const php::Variable&>(target);
            if (kb_.superglobal(var.name)) return;  // writing into $_GET: ignore
            if (value.tainted_any() || value.depends_on_params()) {
                std::string step = "assigned to ";
                step += var.name;
                value.add_step(loc_of(target, scope), std::move(step));
            }
            const Symbol name_sym = sym(var.name);
            const bool is_global_var =
                scope.is_global || scope.global_aliases.contains(name_sym);
            if (is_global_var) note_shared_write(name_sym, /*strong=*/!weak);
            TaintValue& slot = is_global_var
                                   ? global_slot(name_sym)
                                   : scope.vars[resolve_alias(name_sym, scope)];
            if (weak)
                slot.merge(value);
            else
                slot = std::move(value);
            stats_.variables_tracked =
                std::max(stats_.variables_tracked,
                         static_cast<int>(scope.vars.size() + globals_.vars.size()));
            break;
        }
        case NodeKind::kArrayAccess: {
            const auto& access = static_cast<const php::ArrayAccess&>(target);
            if (!access.base) return;
            if (access.index) eval(*access.index, scope);
            if (access.base->kind == NodeKind::kVariable) {
                const auto& base = static_cast<const php::Variable&>(*access.base);
                if (base.name == "$GLOBALS" && access.index &&
                    access.index->kind == NodeKind::kLiteral) {
                    const auto& lit = static_cast<const php::Literal&>(*access.index);
                    std::string gname = "$";
                    gname += lit.value;
                    note_shared_write(sym(gname), /*strong=*/false);
                    global_slot(gname).merge(value);
                    return;
                }
            }
            // Element writes are weak: the array keeps its previous taint.
            assign_to(*access.base, std::move(value), scope, /*weak=*/true);
            break;
        }
        case NodeKind::kPropertyAccess: {
            const auto& access = static_cast<const php::PropertyAccess&>(target);
            if (!access.object) return;
            if (!options_.oop_support) {
                eval(*access.object, scope);
                return;
            }
            TaintValue object = eval(*access.object, scope);
            if (access.property.empty()) return;
            if (value.tainted_any())
                value.add_step(loc_of(target, scope),
                               "assigned to property " + to_php_source(access));
            value.via_oop = value.via_oop || value.tainted_any();
            if (access.object->kind == NodeKind::kVariable) {
                const auto& base = static_cast<const php::Variable&>(*access.object);
                TaintValue& slot =
                    scope.vars[path_sym(base.name, access.property)];
                if (weak)
                    slot.merge(value);
                else
                    slot = value;
            }
            if (!object.object_class.empty()) {
                // Class-level store is always weak (merged over instances).
                note_shared_write(slot_sym(object.object_class,
                                           /*is_static=*/false, access.property),
                                  /*strong=*/false);
                properties_.class_slot(object.object_class, access.property)
                    .merge(value);
            }
            break;
        }
        case NodeKind::kStaticPropertyAccess: {
            if (!options_.oop_support) return;
            const auto& access = static_cast<const php::StaticPropertyAccess&>(target);
            const std::string cls =
                resolve_class_name(access.class_name, scope.current_class, *project_);
            if (cls.empty()) return;
            value.via_oop = value.via_oop || value.tainted_any();
            note_shared_write(slot_sym(cls, /*is_static=*/true, access.property),
                              /*strong=*/!weak);
            TaintValue& slot = properties_.static_slot(cls, access.property);
            if (weak)
                slot.merge(value);
            else
                slot = std::move(value);
            break;
        }
        case NodeKind::kListExpr: {
            const auto& list = static_cast<const php::ListExpr&>(target);
            for (const php::ExprPtr& element : list.elements)
                if (element) assign_to(*element, value, scope, weak);
            break;
        }
        case NodeKind::kArrayLiteral: {
            // PHP 7.1 short list syntax: [$a, $b] = ...
            const auto& arr = static_cast<const php::ArrayLiteral&>(target);
            for (const php::ArrayItem& item : arr.items)
                if (item.value) assign_to(*item.value, value, scope, weak);
            break;
        }
        default:
            break;
    }
}

TaintValue Engine::read_global(std::string_view name, SourceLocation loc) {
    (void)loc;
    note_shared_read(sym(name));
    if (const TaintValue* found = globals_.vars.find(sym(name))) return *found;
    TaintValue v;
    if (const std::string* cls = kb_.known_global_class(name)) {
        if (options_.track_object_types && options_.oop_support) v.object_class = *cls;
    }
    return v;
}

// Callers must report the access through note_shared_write (or
// note_shared_read for read-modify uses) before taking the slot — the
// strong/weak distinction only the call site knows decides whether an
// entry capture stays reusable.
TaintValue& Engine::global_slot(std::string_view name) {
    return globals_.vars[sym(name)];
}

TaintValue& Engine::global_slot(Symbol name) {
    return globals_.vars[name];
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

std::vector<TaintValue> Engine::eval_args(const ArenaVector<php::Argument>& args,
                                          Scope& scope) {
    std::vector<TaintValue> values;
    values.reserve(args.size());
    for (const php::Argument& arg : args)
        values.push_back(arg.value ? eval(*arg.value, scope) : TaintValue::clean());
    return values;
}

TaintValue Engine::eval_function_call(const php::FunctionCall& call, Scope& scope) {
    // Dynamic call through an expression: evaluate everything; the result
    // conservatively carries the arguments' taint.
    if (call.name.empty()) {
        if (call.callee) eval(*call.callee, scope);
        std::vector<TaintValue> args = eval_args(call.args, scope);
        TaintValue out;
        for (TaintValue& a : args) out.merge(a);
        return out;
    }

    std::vector<TaintValue> args = eval_args(call.args, scope);
    return dispatch_function_call(call, args, scope);
}

TaintValue Engine::dispatch_function_call(const php::FunctionCall& call,
                                          std::vector<TaintValue>& args,
                                          Scope& scope) {
    const SourceLocation loc = loc_of(call, scope);

    // extract($arr) defines a variable for every array key: any name read
    // later in this scope may carry the array's taint.
    if (iequals(call.name, "extract") && !args.empty()) {
        scope.extract_taint.merge(args[0]);
        return TaintValue::clean();
    }

    // Generator yield: the yielded value reaches whoever iterates the
    // generator — fold it into the enclosing function's return flow.
    if (call.name == "__yield") {
        if (scope.summary) {
            for (const TaintValue& arg : args) {
                for (const ParamFlow& pf : arg.param_flows) {
                    bool merged = false;
                    for (ParamFlow& existing : scope.summary->param_to_return) {
                        if (existing.param == pf.param) {
                            existing.kinds |= pf.kinds;
                            merged = true;
                        }
                    }
                    if (!merged) scope.summary->param_to_return.push_back(pf);
                }
                TaintValue base = arg;
                base.param_flows.clear();
                scope.summary->return_base.merge(base);
            }
        }
        return TaintValue::clean();
    }

    // User-defined functions take priority (PHP forbids redefining
    // built-ins, and plugins guard declarations with function_exists).
    if (const php::FunctionRef* ref = project_->find_function(call.name)) {
        note_dep(SummaryDep::Kind::kFunction, ascii_lower(call.name), ref->file);
        return apply_user_function(*ref, args, loc, scope, call.name, &call.args);
    }
    // Record the failed project lookup too: declaring this name later must
    // invalidate summaries that resolved it to a built-in (or to nothing).
    note_dep(SummaryDep::Kind::kFunction, ascii_lower(call.name), {});

    if (const FunctionInfo* info = kb_.function(call.name))
        return apply_builtin(*info, call.name, call.args, args, loc, scope,
                             /*via_oop=*/false);

    // Unknown built-in: propagate argument taint through the result.
    TaintValue out;
    for (TaintValue& a : args) out.merge(a);
    return out;
}

TaintValue Engine::eval_method_call(const php::MethodCall& call, Scope& scope) {
    if (!call.object) return TaintValue::clean();
    if (!options_.oop_support) {
        // OOP-blind tool: evaluate operands for completeness, but the call
        // itself is opaque — no sink/source/sanitizer matching, clean result.
        eval(*call.object, scope);
        eval_args(call.args, scope);
        return TaintValue::clean();
    }

    TaintValue object = eval(*call.object, scope);
    if (call.method_expr) eval(*call.method_expr, scope);
    std::vector<TaintValue> args = eval_args(call.args, scope);
    return dispatch_method_call(call, object, args, scope);
}

TaintValue Engine::dispatch_method_call(const php::MethodCall& call,
                                        const TaintValue& object,
                                        std::vector<TaintValue>& args,
                                        Scope& scope) {
    const SourceLocation loc = loc_of(call, scope);

    if (call.method.empty()) {  // dynamic method name
        TaintValue out = object;
        for (TaintValue& a : args) out.merge(a);
        out.object_class.clear();
        return out;
    }

    const std::string& cls = object.object_class;

    // Lookup order (paper §III.E: configured CMS methods are matched by
    // name; plugin-defined methods are located inside their class):
    //   1. configured method with a class-exact entry,
    //   2. plugin-defined method resolved through the class hierarchy,
    //   3. configured method by name alone (the original tool has no type
    //      inference — $wpdb->get_results matches even when the receiver
    //      class was not tracked),
    //   4. plugin-defined method by unique name.
    const FunctionInfo* exact =
        cls.empty() ? nullptr : kb_.method(cls, call.method);
    // kb_.method falls back to the wildcard internally; only accept the
    // class-exact match at this step.
    if (exact && kb_.method("", call.method) == exact) exact = nullptr;
    if (exact) {
        std::string display = cls;
        display += "::";
        display += call.method;
        return apply_builtin(*exact, display, call.args, args, loc, scope,
                             /*via_oop=*/true);
    }

    const php::FunctionRef* ref =
        cls.empty() ? nullptr : project_->find_method(cls, call.method);
    if (!cls.empty())
        note_dep(SummaryDep::Kind::kMethod, cls + "::" + ascii_lower(call.method),
                 ref ? ref->file : std::string_view());
    if (!ref) {
        if (const FunctionInfo* wildcard = kb_.method("", call.method))
            return apply_builtin(*wildcard, call.method, call.args, args, loc,
                                 scope, /*via_oop=*/true);
        ref = project_->find_method_any(call.method);
        note_dep(SummaryDep::Kind::kMethodAny, ascii_lower(call.method),
                 ref ? ref->file : std::string_view());
    }
    if (ref) {
        TaintValue out = apply_user_function(*ref, args, loc, scope,
                                             ref->qualified_name(), &call.args);
        if (out.tainted_any()) out.via_oop = true;
        return out;
    }

    // Unknown method on unknown class: propagate receiver + argument taint.
    TaintValue out = object;
    out.object_class.clear();
    for (TaintValue& a : args) out.merge(a);
    if (out.tainted_any()) out.via_oop = true;
    return out;
}

TaintValue Engine::eval_static_call(const php::StaticCall& call, Scope& scope) {
    std::vector<TaintValue> args = eval_args(call.args, scope);
    if (!options_.oop_support) return TaintValue::clean();
    return dispatch_static_call(call, args, scope);
}

TaintValue Engine::dispatch_static_call(const php::StaticCall& call,
                                        std::vector<TaintValue>& args,
                                        Scope& scope) {
    const SourceLocation loc = loc_of(call, scope);
    const std::string cls =
        resolve_class_name(call.class_name, scope.current_class, *project_);

    if (const FunctionInfo* info = kb_.method(cls, call.method)) {
        std::string display = cls;
        display += "::";
        display += call.method;
        return apply_builtin(*info, display, call.args, args, loc, scope,
                             /*via_oop=*/true);
    }

    const php::FunctionRef* ref = project_->find_method(cls, call.method);
    if (!cls.empty())
        note_dep(SummaryDep::Kind::kMethod, cls + "::" + ascii_lower(call.method),
                 ref ? ref->file : std::string_view());
    if (ref) {
        TaintValue out = apply_user_function(*ref, args, loc, scope,
                                             ref->qualified_name(), &call.args);
        if (out.tainted_any()) out.via_oop = true;
        return out;
    }

    TaintValue out;
    for (TaintValue& a : args) out.merge(a);
    if (out.tainted_any()) out.via_oop = true;
    return out;
}

TaintValue Engine::eval_new(const php::New& expr, Scope& scope) {
    if (expr.class_expr) eval(*expr.class_expr, scope);
    std::vector<TaintValue> args = eval_args(expr.args, scope);
    if (!options_.oop_support) return TaintValue::clean();
    return dispatch_new(expr, args, scope);
}

TaintValue Engine::dispatch_new(const php::New& expr,
                                std::vector<TaintValue>& args, Scope& scope) {
    TaintValue out;
    if (expr.class_name.empty()) return out;
    const std::string cls =
        resolve_class_name(expr.class_name, scope.current_class, *project_);
    if (options_.track_object_types) out.object_class = cls;

    const php::ClassDecl* decl = project_->find_class(cls);
    note_dep(SummaryDep::Kind::kClass, cls,
             decl ? project_->file_of_class(cls) : std::string());
    // A property default can itself `new` this class (directly or through a
    // cycle of classes); evaluating defaults re-entrantly would never
    // terminate, so construction of a class already being constructed skips
    // initialization.
    if (decl && constructing_classes_.insert(cls).second) {
        // Initialize property defaults (lazily, merged — weak store).
        for (const php::PropertyDecl& prop : decl->properties) {
            if (!prop.default_value) continue;
            TaintValue dv = eval(*prop.default_value, scope);
            note_shared_write(slot_sym(cls, prop.is_static, prop.name),
                              /*strong=*/false);
            if (prop.is_static)
                properties_.static_slot(cls, prop.name).merge(dv);
            else
                properties_.class_slot(cls, prop.name).merge(dv);
        }
        const php::FunctionRef* ctor = project_->find_method(cls, "__construct");
        note_dep(SummaryDep::Kind::kMethod, cls + "::__construct",
                 ctor ? ctor->file : std::string_view());
        if (ctor)
            apply_user_function(*ctor, args, loc_of(expr, scope), scope,
                                cls + "::__construct");
        constructing_classes_.erase(cls);
    }
    return out;
}

TaintValue Engine::apply_builtin(const FunctionInfo& info, std::string_view name,
                                 const ArenaVector<php::Argument>& arg_exprs,
                                 std::vector<TaintValue>& args, SourceLocation loc,
                                 Scope& scope, bool via_oop) {
    // Sink role: check the sensitive argument positions.
    if (info.is_sink()) {
        std::vector<int> positions = info.sink_args;
        if (positions.empty())
            for (size_t i = 0; i < args.size(); ++i)
                positions.push_back(static_cast<int>(i));
        for (int pos : positions) {
            if (pos < 0 || static_cast<size_t>(pos) >= args.size()) continue;
            const std::string variable =
                arg_exprs[pos].value ? to_php_source(*arg_exprs[pos].value) : "";
            check_sink(info.sink_kinds, args[pos], loc, name, variable, scope,
                       via_oop || args[pos].via_oop);
        }
    }

    // By-reference flows (preg_match match array, parse_str, ...).
    for (const auto& [from, to] : info.ref_flows) {
        if (from < 0 || static_cast<size_t>(from) >= args.size()) continue;
        if (to < 0 || static_cast<size_t>(to) >= arg_exprs.size()) continue;
        if (!arg_exprs[to].value) continue;
        TaintValue flowed = args[from];
        if (flowed.tainted_any()) {
            std::string step = "written by ";
            step += name;
            step += " into by-ref argument";
            flowed.add_step(loc, std::move(step));
        }
        assign_to(*arg_exprs[to].value, std::move(flowed), scope);
    }

    // Result value.
    if (info.is_source) {
        ++stats_.sources_seen;
        ++obs::tls().sources_seen;
        std::string what(name);
        what += "()";
        TaintValue out = TaintValue::source(info.source_taint, info.source_vector,
                                            loc, std::move(what));
        out.via_oop = via_oop;
        out.object_class = info.returns_class;
        return out;
    }
    if (!info.returns_class.empty()) {
        TaintValue out;
        out.object_class = info.returns_class;
        return out;
    }
    if (info.is_sanitizer()) {
        TaintValue out = args.empty() ? TaintValue::clean() : args[0];
        out.apply_sanitizer(info.sanitizes, loc, name);
        return out;
    }
    if (info.is_revert()) {
        TaintValue out = args.empty() ? TaintValue::clean() : args[0];
        out.apply_revert(info.reverts, loc, name);
        return out;
    }
    switch (info.ret) {
        case FunctionInfo::Return::kSafe:
            return TaintValue::clean();
        case FunctionInfo::Return::kTainted: {
            std::string what(name);
            what += "()";
            TaintValue out = TaintValue::source(kBothVulns, InputVector::kFunction,
                                                loc, std::move(what));
            out.via_oop = via_oop;
            return out;
        }
        case FunctionInfo::Return::kPropagate:
        default: {
            TaintValue out;
            for (TaintValue& a : args) out.merge(a);
            out.via_oop = out.via_oop || (via_oop && out.tainted_any());
            return out;
        }
    }
}

TaintValue Engine::apply_user_function(const php::FunctionRef& ref,
                                       const std::vector<TaintValue>& args,
                                       SourceLocation loc, Scope& scope,
                                       std::string_view display_name,
                                       const ArenaVector<php::Argument>* arg_exprs) {
    if (call_depth_ >= options_.max_call_depth) {
        TaintValue out;
        for (const TaintValue& a : args) out.merge(a);
        return out;
    }

    FunctionSummary& summary = summarize(ref, &args);
    if (summary.in_progress) {
        // Recursive call (paper: parsed only once to avoid endless loops).
        TaintValue out;
        for (const TaintValue& a : args) out.merge(a);
        return out;
    }

    // Parameter-to-sink flows recorded inside the callee.
    for (const ParamSinkFlow& psf : summary.param_sinks) {
        if (psf.param < 0 || static_cast<size_t>(psf.param) >= args.size()) continue;
        const TaintValue& arg = args[psf.param];
        if (arg.tainted(psf.vuln) && psf.kinds.contains(psf.vuln)) {
            TaintValue value = arg;
            std::string step = "passed to ";
            step += display_name;
            step += "() argument #";
            step += std::to_string(psf.param + 1);
            value.add_step(loc, std::move(step));
            value.add_step(psf.location, "reaches sink " + psf.sink_name);
            value.via_oop = value.via_oop || psf.via_oop;
            report(psf.vuln, psf.location, psf.sink_name, psf.variable, value);
        }
        if (scope.summary) {
            // Transitive: our own parameters may feed this callee's sink.
            for (const ParamFlow& pf : arg.param_flows) {
                if (!pf.kinds.contains(psf.vuln)) continue;
                ParamSinkFlow up = psf;
                up.param = pf.param;
                up.kinds = VulnSet::of(psf.vuln);
                scope.summary->param_sinks.push_back(up);
            }
        }
    }

    // By-reference parameter write-back (function f(&$x) { $x = ... }).
    if (arg_exprs) {
        for (const FunctionSummary::ParamOut& po : summary.param_outputs) {
            if (po.param < 0 ||
                static_cast<size_t>(po.param) >= arg_exprs->size())
                continue;
            const php::Argument& argument = (*arg_exprs)[po.param];
            if (!argument.value) continue;
            TaintValue written = po.value;
            // Resolve flows from other parameters through the caller's args.
            for (const ParamFlow& pf : po.value.param_flows) {
                if (pf.param < 0 || static_cast<size_t>(pf.param) >= args.size())
                    continue;
                TaintValue filtered = args[pf.param];
                filtered.active &= pf.kinds;
                filtered.latent &= pf.kinds;
                filtered.param_flows.clear();
                written.merge(filtered);
            }
            written.param_flows.clear();
            if (written.tainted_any()) {
                std::string step = "written back by ";
                step += display_name;
                step += "() through by-ref parameter";
                written.add_step(loc, std::move(step));
                assign_to(*argument.value, std::move(written), scope);
            }
        }
    }

    // Return value: internal taint plus filtered per-parameter flows.
    TaintValue out = summary.return_base;
    if (out.tainted_any()) {
        std::string step = "returned from ";
        step += display_name;
        step += "()";
        out.add_step(loc, std::move(step));
    }
    for (const ParamFlow& pf : summary.param_to_return) {
        if (pf.param < 0 || static_cast<size_t>(pf.param) >= args.size()) continue;
        TaintValue filtered = args[pf.param];
        filtered.active &= pf.kinds;
        filtered.latent &= pf.kinds;
        for (ParamFlow& nested : filtered.param_flows) nested.kinds &= pf.kinds;
        filtered.param_flows.erase(
            std::remove_if(filtered.param_flows.begin(), filtered.param_flows.end(),
                           [](const ParamFlow& n) { return n.kinds.empty(); }),
            filtered.param_flows.end());
        if (filtered.active.any() || filtered.latent.any() ||
            !filtered.param_flows.empty()) {
            std::string step = "through ";
            step += display_name;
            step += "()";
            filtered.add_step(loc, std::move(step));
            out.merge(filtered);
        }
    }
    return out;
}

FunctionSummary& Engine::summarize(const php::FunctionRef& ref,
                                   const std::vector<TaintValue>* first_call_args) {
    const std::string key = lowered_key(ref);
    FunctionSummary& summary = summaries_.slot(key);
    if (summary.analyzed || summary.in_progress) {
        ++obs::tls().summaries_reused;
        // A capture in progress embeds the reused summary's content, so it
        // absorbs that summary's dependency record too (or, if the record is
        // unknown, gives up on reuse — conservative, should not happen).
        if (summary.analyzed && !capture_stack_.empty()) {
            const auto it = run_artifacts_.find(key);
            if (it != run_artifacts_.end()) {
                CaptureFrame& top = capture_stack_.back();
                top.artifact.deps.insert(top.artifact.deps.end(),
                                         it->second->deps.begin(),
                                         it->second->deps.end());
                if (!it->second->reusable) top.reusable = false;
            } else {
                capture_stack_.back().reusable = false;
            }
        }
        return summary;
    }
    if (apply_summary_seed(key, summary)) {
        if (observer_) observer_->on_function_summary(ref, summary);
        return summary;
    }

    const bool capturing = exchange_.capture != nullptr;
    if (capturing) {
        ++obs::tls().cache_summary_misses;
        CaptureFrame frame;
        frame.key = key;
        // Starting under an already-failing file is not a state a replay
        // can reproduce.
        frame.reusable = !current_file_failed_;
        capture_stack_.push_back(std::move(frame));
        if (!ref.file.empty()) note_dep(SummaryDep::Kind::kFile, ref.file, ref.file);
    }

    if (!ref.decl || ref.decl->is_abstract) {
        summary.analyzed = true;
        if (capturing) finish_capture(key, summary);
        return summary;
    }
    ++obs::tls().summaries_computed;

    summary.in_progress = true;
    ++call_depth_;

    Scope fn_scope;
    fn_scope.file = ref.file;
    fn_scope.current_class = ref.owner;
    fn_scope.summary = &summary;

    for (size_t i = 0; i < ref.decl->params.size(); ++i) {
        const php::Param& param = ref.decl->params[i];
        TaintValue v;
        v.add_param_flow(static_cast<int>(i), kBothVulns);
        std::string step = "parameter ";
        step += param.name;
        step += " of ";
        step += ref.qualified_name();
        v.add_step({std::string(ref.file), ref.decl->line}, std::move(step));
        if (!param.type_hint.empty() && options_.track_object_types)
            v.object_class = ascii_lower(param.type_hint);
        // First-call context (paper §III.C): the body is analyzed with the
        // arguments of the call that triggered it, so taint written into
        // properties and globals materializes. Hermetic mode drops this —
        // a summary must not depend on which caller reached it first.
        if (!options_.hermetic_summaries && first_call_args &&
            i < first_call_args->size())
            v.merge((*first_call_args)[i]);
        fn_scope.vars[sym(param.name)] = std::move(v);
    }
    if (ref.owner) {
        TaintValue self;
        self.object_class = ascii_lower(ref.owner->name);
        fn_scope.vars[this_sym_] = std::move(self);
    }

    run_body(ref.decl->body, fn_scope);

    // Capture the final taint of by-reference parameters for write-back at
    // call sites.
    for (size_t i = 0; i < ref.decl->params.size(); ++i) {
        const php::Param& param = ref.decl->params[i];
        if (!param.by_ref) continue;
        const TaintValue* final_value = fn_scope.vars.find(sym(param.name));
        if (!final_value) continue;
        FunctionSummary::ParamOut out;
        out.param = static_cast<int>(i);
        out.value = *final_value;
        summary.param_outputs.push_back(std::move(out));
    }

    --call_depth_;
    summary.in_progress = false;
    summary.analyzed = true;
    if (capturing) finish_capture(key, summary);
    if (observer_) observer_->on_function_summary(ref, summary);
    return summary;
}

TaintValue Engine::lookup_var(std::string_view name, Scope& scope) {
    const Symbol name_sym = sym(name);
    const bool is_global_var =
        scope.is_global || scope.global_aliases.contains(name_sym);
    if (is_global_var) return read_global(name, SourceLocation{});
    const TaintValue* found = scope.vars.find(name_sym);
    return found ? *found : TaintValue::clean();
}

void Engine::eval_closure_body(const php::Closure& closure, Scope& scope) {
    // Closure dedup (analyzed_closures_) is run-wide: whether THIS walk or
    // an earlier entry's walk analyzes a closure shared through an include
    // is an ordering fact a seeded replay would shift, so an entry frame
    // that even reaches a closure is not reusable. Function frames need no
    // extra handling here: a closure shared across bodies is only reachable
    // through an include, which already disqualifies them in
    // finish_include.
    for (CaptureFrame& frame : capture_stack_)
        if (frame.entry) frame.reusable = false;
    if (!analyzed_closures_.insert(&closure).second) return;
    Scope body_scope;
    body_scope.file = scope.file;
    body_scope.current_class = scope.current_class;
    body_scope.summary = scope.summary;  // propagate param deps of the enclosing fn
    for (const auto& [name, by_ref] : closure.uses)
        body_scope.vars[sym(name)] = lookup_var(name, scope);
    if (closure.is_arrow) {
        // Arrow functions capture the whole enclosing scope by value.
        body_scope.vars = scope.vars;
        if (scope.is_global) {
            touch_shared_state();
            body_scope.vars = globals_.vars;
        }
    }
    if (const TaintValue* self = scope.vars.find(this_sym_))
        body_scope.vars[this_sym_] = *self;
    run_body(closure.body, body_scope);
}

TaintValue Engine::eval_include(const php::IncludeExpr& inc, Scope& scope) {
    if (!inc.path) return TaintValue::clean();
    eval(*inc.path, scope);
    return finish_include(inc, scope);
}

TaintValue Engine::finish_include(const php::IncludeExpr& inc, Scope& scope) {
    const std::string hint = static_path_hint(*inc.path);
    const php::ParsedFile* resolved = project_->resolve_include(hint);
    if (!hint.empty())
        note_dep(SummaryDep::Kind::kInclude, hint,
                 resolved ? resolved->source->name() : std::string());
    if (!resolved || resolved->parse_failed) return TaintValue::clean();
    ++obs::tls().includes_resolved;
    // From here on the include interacts with run-wide include state
    // (included_once_, the include stack) and may execute the target file
    // against the live global scope — none of which a seeded replay of a
    // summarized body can reproduce. An entry-file frame, by contrast, owns
    // the include state (reset per entry) and captures the included file's
    // effects — its findings land in the frame, its global writes are
    // tracked, and the kInclude dep above pins the content — so it stays
    // reusable.
    for (CaptureFrame& frame : capture_stack_)
        if (!frame.entry) frame.reusable = false;

    // Cycle / repetition guards.
    for (const php::ParsedFile* active : include_stack_)
        if (active == resolved) return TaintValue::clean();
    const bool once = inc.include_kind == php::IncludeKind::kIncludeOnce ||
                      inc.include_kind == php::IncludeKind::kRequireOnce;
    if (once && included_once_.count(resolved->source->name()))
        return TaintValue::clean();
    included_once_.insert(resolved->source->name());

    if (static_cast<int>(include_stack_.size()) >= options_.max_include_depth) {
        // Paper §V.E: phpSAFE failed on files "that had many includes and
        // required a lot of memory" — modeled as an include-depth abort.
        const std::string entry = include_stack_.empty()
                                      ? scope.file
                                      : include_stack_.front()->source->name();
        diagnostics_.add(Severity::kFatal, {entry, inc.line},
                         "include chain too deep; aborting analysis of this file");
        current_file_failed_ = true;
        return TaintValue::clean();
    }

    // Stage attribution: only the outermost include edge starts the clock,
    // so nested includes are not double counted.
    const bool outermost = include_stack_.size() <= 1;
    const double include_start = outermost ? thread_cpu_seconds() : 0.0;
    include_stack_.push_back(resolved);
    ++stats_.includes_followed;
    ++obs::tls().includes_followed;
    const std::string saved_file = scope.file;
    scope.file = resolved->source->name();
    run_body(resolved->unit.statements, scope);
    scope.file = saved_file;
    include_stack_.pop_back();
    if (outermost) include_cpu_seconds_ += thread_cpu_seconds() - include_start;
    return TaintValue::clean();
}

// ---------------------------------------------------------------------------
// Sinks and findings
// ---------------------------------------------------------------------------

void Engine::check_sink(VulnSet sink_kinds, const TaintValue& value,
                        SourceLocation loc, std::string_view sink_name,
                        const std::string& variable, Scope& scope, bool via_oop) {
    ++stats_.sink_checks;
    ++obs::tls().sink_checks;
    for (int i = 0; i < kVulnKindCount; ++i) {
        const auto kind = static_cast<VulnKind>(i);
        if (!sink_kinds.contains(kind)) continue;
        if (value.tainted(kind)) {
            TaintValue reported = value;
            reported.via_oop = reported.via_oop || via_oop;
            report(kind, loc, sink_name, variable, reported);
        }
        if (scope.summary) {
            for (const ParamFlow& pf : value.param_flows) {
                if (!pf.kinds.contains(kind)) continue;
                ParamSinkFlow psf;
                psf.param = pf.param;
                psf.kinds = VulnSet::of(kind);
                psf.vuln = kind;
                psf.location = loc;
                psf.sink_name = sink_name;
                psf.variable = variable;
                psf.via_oop = via_oop || value.via_oop;
                scope.summary->param_sinks.push_back(psf);
            }
        }
    }
}

void Engine::report(VulnKind kind, SourceLocation loc, std::string_view sink_name,
                    const std::string& variable, const TaintValue& value) {
    Finding f;
    f.kind = kind;
    f.location = std::move(loc);
    f.sink = sink_name;
    f.variable = variable;
    f.vector = value.vector;
    f.via_oop = value.via_oop;
    // The COW trace is materialized into a flat vector only here, at the
    // moment a finding is actually reported.
    f.trace = value.trace.steps();
    std::string last = "reaches sink ";
    last += sink_name;
    f.trace.push_back(TaintStep{f.location, std::move(last)});
    if (kind == VulnKind::kSqli)
        ++obs::tls().findings_sqli;
    else
        ++obs::tls().findings_xss;
    if (observer_) observer_->on_finding(f);
    // A finding discovered while a summary is being captured belongs to that
    // summary's artifact: a later run that seeds the artifact skips this
    // body, so the artifact must replay the finding verbatim.
    if (!capture_stack_.empty())
        capture_stack_.back().artifact.findings.push_back(f);
    findings_.push_back(std::move(f));
}

}  // namespace phpsafe
