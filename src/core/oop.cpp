#include "core/oop.h"

#include "util/strings.h"

namespace phpsafe {

TaintValue& PropertyStore::class_slot(std::string_view class_name,
                                      std::string_view prop) {
    return slots_[ascii_lower(class_name) + "::" + std::string(prop)];
}

const TaintValue* PropertyStore::find_class_slot(std::string_view class_name,
                                                 std::string_view prop) const {
    const auto it = slots_.find(ascii_lower(class_name) + "::" + std::string(prop));
    return it == slots_.end() ? nullptr : &it->second;
}

TaintValue& PropertyStore::static_slot(std::string_view class_name,
                                       std::string_view prop) {
    return slots_[ascii_lower(class_name) + "::$" + std::string(prop)];
}

const TaintValue* PropertyStore::find_static_slot(std::string_view class_name,
                                                  std::string_view prop) const {
    const auto it = slots_.find(ascii_lower(class_name) + "::$" + std::string(prop));
    return it == slots_.end() ? nullptr : &it->second;
}

TaintValue& PropertyStore::slot(std::string_view key) {
    return slots_[std::string(key)];
}

const TaintValue* PropertyStore::find_slot(std::string_view key) const {
    const auto it = slots_.find(std::string(key));
    return it == slots_.end() ? nullptr : &it->second;
}

void PropertyStore::clear() { slots_.clear(); }

std::string resolve_class_name(std::string_view name,
                               const php::ClassDecl* current_class,
                               const php::Project& project) {
    if (iequals(name, "self") || iequals(name, "static")) {
        return current_class ? ascii_lower(current_class->name) : std::string();
    }
    if (iequals(name, "parent")) {
        if (!current_class || current_class->parent.empty()) return {};
        return ascii_lower(current_class->parent);
    }
    (void)project;
    return ascii_lower(name);
}

std::string find_property_owner(std::string_view class_name, std::string_view prop,
                                const php::Project& project) {
    std::string cls = ascii_lower(class_name);
    for (int depth = 0; depth < 16; ++depth) {
        const php::ClassDecl* decl = project.find_class(cls);
        if (!decl) return {};
        for (const php::PropertyDecl& p : decl->properties)
            if (p.name == prop) return cls;
        if (decl->parent.empty()) return {};
        cls = ascii_lower(decl->parent);
    }
    return {};
}

}  // namespace phpsafe
