// The single public entry point for running an analysis (the API the
// ISSUE-7 redesign introduces): configure once — knowledge base + options —
// then scan(project) as many times as needed. Everything the old helpers
// exposed piecemeal (Engine construction, observer wiring, CPU clocking,
// counter deltas, backend selection) happens behind one call, and a
// ScanResult carries the complete outcome.
//
// An Analyzer is immutable after construction and therefore shareable:
// scan() is const and creates a fresh single-use Engine per call, so one
// Analyzer may serve many threads concurrently (each scan's counters and
// timings are per-thread). The engine remains available for embedders that
// need observer-level surgery, but tools/, bench/ and tests construct
// Analyzers.
#pragma once

#include <memory>

#include "config/knowledge.h"
#include "core/engine.h"
#include "core/finding.h"
#include "core/summaries.h"
#include "php/project.h"

namespace phpsafe {

/// Outcome of one Analyzer::scan: the AnalysisResult (findings, stats,
/// diagnostics, counters, cpu_seconds all filled) plus scan-level metadata.
struct ScanResult {
    AnalysisResult result;
    /// Backend that produced result (kDifferential reports the AST result).
    EngineBackend backend = EngineBackend::kAst;
    /// True when a kDifferential scan found the IR result not byte-identical
    /// to the AST oracle (a kBackendMismatchMarker diagnostic is attached).
    bool differential_mismatch = false;
};

class Analyzer {
public:
    /// The out-of-the-box phpSAFE configuration: generic PHP knowledge base
    /// with the WordPress profile, AnalysisOptions::phpsafe().
    Analyzer();

    /// Takes ownership of `kb`. `options` defaults to the phpSAFE preset.
    explicit Analyzer(KnowledgeBase kb,
                      AnalysisOptions options = AnalysisOptions::phpsafe());

    /// Non-owning variant: `kb` must outlive the Analyzer. Use when many
    /// analyzers share one heavyweight knowledge base.
    static Analyzer borrowing(const KnowledgeBase& kb,
                              AnalysisOptions options = AnalysisOptions::phpsafe());

    const KnowledgeBase& kb() const noexcept { return *kb_; }
    const AnalysisOptions& options() const noexcept { return options_; }

    /// Analyzes a project with this Analyzer's options.
    ScanResult scan(const php::Project& project) const;

    /// Analyzes with per-scan options (e.g. a backend or loop-iteration
    /// override built with options().to_builder()).
    ScanResult scan(const php::Project& project,
                    const AnalysisOptions& options) const;

    /// Full-control variant: per-scan options, cross-run summary exchange
    /// (see core/summaries.h) and an optional observer for the run.
    ScanResult scan(const php::Project& project, const AnalysisOptions& options,
                    const SummaryExchange& exchange,
                    Engine::Observer* observer = nullptr) const;

private:
    Analyzer(std::shared_ptr<const KnowledgeBase> kb, AnalysisOptions options);

    std::shared_ptr<const KnowledgeBase> kb_;
    AnalysisOptions options_;
};

}  // namespace phpsafe
