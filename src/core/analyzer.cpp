#include "core/analyzer.h"

#include <string>
#include <utility>

#include "obs/counters.h"
#include "util/timing.h"

namespace phpsafe {

Analyzer::Analyzer(std::shared_ptr<const KnowledgeBase> kb,
                   AnalysisOptions options)
    : kb_(std::move(kb)), options_(std::move(options)) {}

Analyzer::Analyzer()
    : Analyzer(
          [] {
              KnowledgeBase kb = make_generic_php_kb();
              add_wordpress_profile(kb);
              return kb;
          }(),
          AnalysisOptions::phpsafe()) {}

Analyzer::Analyzer(KnowledgeBase kb, AnalysisOptions options)
    : Analyzer(std::make_shared<const KnowledgeBase>(std::move(kb)),
               std::move(options)) {}

Analyzer Analyzer::borrowing(const KnowledgeBase& kb, AnalysisOptions options) {
    // Aliasing shared_ptr with an empty control block: no ownership, no
    // atomic traffic — the caller guarantees the lifetime.
    return Analyzer(
        std::shared_ptr<const KnowledgeBase>(std::shared_ptr<const void>(), &kb),
        std::move(options));
}

ScanResult Analyzer::scan(const php::Project& project) const {
    return scan(project, options_, SummaryExchange{});
}

ScanResult Analyzer::scan(const php::Project& project,
                          const AnalysisOptions& options) const {
    return scan(project, options, SummaryExchange{});
}

ScanResult Analyzer::scan(const php::Project& project,
                          const AnalysisOptions& options,
                          const SummaryExchange& exchange,
                          Engine::Observer* observer) const {
    Engine engine(*kb_, options);
    engine.set_observer(observer);
    // Per-thread CPU clock and counter delta: correct even when many scans
    // execute concurrently on a worker pool (a process-wide clock would
    // absorb the other workers' CPU time).
    const obs::CounterDelta delta;
    const double start = thread_cpu_seconds();
    ScanResult scan_result;
    scan_result.result = engine.analyze(project, exchange);
    scan_result.result.cpu_seconds = thread_cpu_seconds() - start;
    scan_result.result.counters = delta.take();
    scan_result.backend = options.engine_backend;
    if (options.engine_backend == EngineBackend::kDifferential) {
        for (const Diagnostic& diag : scan_result.result.diagnostics)
            if (diag.message.find(kBackendMismatchMarker) != std::string::npos)
                scan_result.differential_mismatch = true;
    }
    return scan_result;
}

}  // namespace phpsafe
