// Flat, arena-backed dataflow IR for taint propagation (ROADMAP: "lower
// the taint engine onto a flat IR"). Each body — an entry file, a function
// body, a closure body, an included file — is compiled ONCE per run into a
// linear instruction stream:
//
//   - expressions are linearized into ops over dense integer value ids
//     (an op's result lives in the slot with its own instruction index),
//   - control flow is flattened the way the paper's semantics already
//     dictate (§III.C: branches are processed sequentially in the same
//     environment; loops run a fixed trip count), leaving only two jump
//     forms: bounded loop back-edges and failed-file statement gates,
//   - basic blocks with explicit def/use sets over interned symbol ids are
//     derived per body — the structural facts the block-level summary and
//     scheduling work builds on.
//
// Taint propagation then runs as a linear walk over the stream
// (Engine::run_ir_body in core/ir_taint.cpp) instead of recursive AST
// evaluation in Engine::eval. Findings are byte-identical to the AST
// backend: every op's side effects are performed by the same Engine
// dispatch/finish helpers the recursive evaluator calls, in the same order
// and at the same eval-depth, and bodies that could hit the evaluator's
// nesting-truncation guard are not executed on the IR path at all
// (Engine::run_body falls back to the AST for them).
//
// Lowering needs only the knowledge base, the options and the run's symbol
// table — never engine state — so it is testable in isolation
// (tests/ir_test.cpp lowers bodies directly and inspects the stream).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "config/knowledge.h"
#include "php/ast.h"
#include "util/arena.h"
#include "util/interner.h"

namespace phpsafe {

struct AnalysisOptions;

namespace ir {

/// "No operand / no value" marker for Inst::a/b/c.
inline constexpr uint32_t kNoValue = 0xFFFFFFFFu;

enum class Op : uint8_t {
    // -- value producers -----------------------------------------------------
    kClean,          ///< result := clean (literals, opaque constructs)
    kCopy,           ///< result := values[a] (@-suppression, element reads)
    kVarRead,        ///< node: Variable → Engine::eval_variable
    kSgArrayRead,    ///< node: ArrayAccess with a superglobal base
    kGlobalsRead,    ///< node: ArrayAccess "$GLOBALS['name']"
    kPropRead,       ///< node: PropertyAccess; a = object value
    kStaticPropRead, ///< node: StaticPropertyAccess
    kMerge,          ///< result := merge of values[pool[b .. b+c)]
    kBinFold,        ///< result := values[a] ∪ values[b] (kKeepTaint) | clean
    kCast,           ///< node: Cast; a = operand value (sanitizing casts)
    kTernary,        ///< result := values[a], merged with values[b] if set
    kRefBind,        ///< node: Assign; $a =& $b alias binding (no value)
    kAssignFinish,   ///< node: Assign; a = value, b = target rvalue | kNoValue
    kCallFunc,       ///< node: FunctionCall; args = values[pool[b .. b+c)]
    kCallMethod,     ///< node: MethodCall; a = object, args in pool
    kCallStatic,     ///< node: StaticCall; args in pool
    kNewObj,         ///< node: New; args in pool
    kClosure,        ///< node: Closure → closure-body analysis + value
    kInclude,        ///< node: IncludeExpr; path value ops precede
    kForeachPrep,    ///< node: ForeachStmt; a = iterable value | kNoValue
    // -- sinks / effects -----------------------------------------------------
    kEchoSink,       ///< node: EchoStmt; a = value, b = argument index
    kPrintSink,      ///< node: PrintExpr; a = value (result := clean)
    kExitSink,       ///< node: ExitExpr; a = value (result := clean)
    kBindTarget,     ///< node: lvalue Expr; a = value (foreach bindings)
    kReturn,         ///< node: ReturnStmt; a = value | kNoValue
    kGlobalDecl,     ///< node: GlobalStmt
    kStaticBind,     ///< node: StaticVarStmt; a = value, b = var index
    kUnset,          ///< node: UnsetStmt
    kCatchBind,      ///< node: TryStmt; b = catch clause index
    kEscapeStmt,     ///< node: Stmt → Engine::exec_stmt (rare kinds)
    // -- control -------------------------------------------------------------
    kStmtGate,       ///< jump to c when the current file has failed
    kLoopBegin,      ///< b = trip count (max(1, loop_iterations))
    kLoopEnd         ///< b = ip of the first body instruction (back edge)
};

/// Inst flags (per-op meaning).
inline constexpr uint8_t kKeepTaint = 1;    ///< kBinFold: concat/coalesce
inline constexpr uint8_t kMergeTarget = 1;  ///< kAssignFinish: .= / ??=
inline constexpr uint8_t kCleanValue = 2;   ///< kAssignFinish: arithmetic

/// One instruction. 24 bytes; the stream is cache-resident for typical
/// bodies. `depth` is the node's expression-nesting level — the executor
/// keeps Engine::eval_depth_ at entry + depth so shared helpers (which may
/// recurse back into eval, e.g. assign_to on compound lvalues) observe
/// exactly the recursion depth the AST path would have had.
struct Inst {
    Op op = Op::kClean;
    uint8_t flags = 0;
    uint16_t depth = 0;
    uint32_t a = kNoValue;  ///< primary operand value id (or symbol)
    uint32_t b = kNoValue;  ///< pool offset / index / secondary operand
    uint32_t c = kNoValue;  ///< pool count / jump target / symbol
    const php::Node* node = nullptr;
};

/// Half-open instruction range with its def/use facts (symbol ranges into
/// Body::facts). Block boundaries sit at the only places control transfers:
/// loop edges and failed-file gates.
struct Block {
    uint32_t first = 0;
    uint32_t count = 0;
    uint32_t uses_first = 0;
    uint32_t uses_count = 0;
    uint32_t defs_first = 0;
    uint32_t defs_count = 0;
};

/// One lowered body. All arrays live in the owning Module's arena; a Body
/// is immutable after lowering and valid for the run.
struct Body {
    const Inst* insts = nullptr;
    uint32_t inst_count = 0;
    const uint32_t* pool = nullptr;  ///< operand id lists (args, parts)
    uint32_t pool_count = 0;
    const Block* blocks = nullptr;
    uint32_t block_count = 0;
    const Symbol* facts = nullptr;   ///< def/use symbol pool for blocks
    uint32_t fact_count = 0;
    /// Deepest expression nesting of any lowered node. A body executes on
    /// the IR path only when entry_depth + max_depth clears the evaluator's
    /// truncation guard, which is what makes the guard unreachable (and the
    /// two backends byte-identical) on every lowered op.
    uint16_t max_depth = 0;
};

/// Per-run lowering cache: statement list address → lowered Body. The AST
/// is arena-pinned by the project for the whole run, so the list address is
/// a stable identity. Not thread-safe; an Engine (and thus a Module) is
/// single-threaded by contract.
class Module {
public:
    Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    /// The already-lowered body for `stmts`, or null.
    const Body* find(const ArenaVector<php::StmtPtr>& stmts) const {
        const auto it = bodies_.find(static_cast<const void*>(&stmts));
        return it == bodies_.end() ? nullptr : it->second;
    }

    /// Lowers `stmts` (idempotent: returns the cached body when present).
    /// `symbols` is the engine run's interner — def/use facts must use the
    /// same symbol ids the scopes key their maps with.
    const Body& lower(const KnowledgeBase& kb, const AnalysisOptions& options,
                      SymbolTable& symbols,
                      const ArenaVector<php::StmtPtr>& stmts);

    size_t body_count() const noexcept { return bodies_.size(); }

private:
    Arena arena_;
    std::map<const void*, const Body*> bodies_;
};

}  // namespace ir
}  // namespace phpsafe
