#include "core/finding.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace phpsafe {

std::string Finding::dedup_key() const {
    return to_string(kind) + "|" + location.file + "|" +
           std::to_string(location.line) + "|" + variable;
}

std::string to_string(const Finding& finding) {
    std::ostringstream os;
    os << to_string(finding.kind) << " at " << to_string(finding.location)
       << " sink=" << finding.sink << " var=" << finding.variable
       << " vector=" << to_string(finding.vector);
    if (finding.via_oop) os << " [oop]";
    return os.str();
}

int AnalysisResult::count(VulnKind kind) const noexcept {
    return static_cast<int>(std::count_if(
        findings.begin(), findings.end(),
        [kind](const Finding& f) { return f.kind == kind; }));
}

void deduplicate(std::vector<Finding>& findings) {
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                         if (a.location.file != b.location.file)
                             return a.location.file < b.location.file;
                         if (a.location.line != b.location.line)
                             return a.location.line < b.location.line;
                         return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                     });
    std::set<std::string> seen;
    std::vector<Finding> unique;
    unique.reserve(findings.size());
    for (Finding& f : findings) {
        if (seen.insert(f.dedup_key()).second) unique.push_back(std::move(f));
    }
    findings = std::move(unique);
}

}  // namespace phpsafe
