#include "core/finding.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace phpsafe {

std::string Finding::dedup_key() const {
    return to_string(kind) + "|" + location.file + "|" +
           std::to_string(location.line) + "|" + variable;
}

std::string to_string(Confidence confidence) {
    switch (confidence) {
        case Confidence::kUnchecked: return "unchecked";
        case Confidence::kValidated: return "validated";
        case Confidence::kUnvalidated: return "unvalidated";
        case Confidence::kInconclusive: return "inconclusive";
    }
    return "?";
}

std::string to_string(const Finding& finding) {
    std::ostringstream os;
    os << to_string(finding.kind) << " at " << to_string(finding.location)
       << " sink=" << finding.sink << " var=" << finding.variable
       << " vector=" << to_string(finding.vector);
    if (finding.via_oop) os << " [oop]";
    return os.str();
}

int AnalysisResult::count(VulnKind kind) const noexcept {
    return static_cast<int>(std::count_if(
        findings.begin(), findings.end(),
        [kind](const Finding& f) { return f.kind == kind; }));
}

namespace {

/// Total order over findings: every field participates, so the sorted
/// sequence is independent of insertion order. The incremental service
/// replays cached findings in seed order rather than discovery order; a
/// mere (file, line, kind) sort would let stable_sort preserve that replay
/// order among ties and deduplicate() could then keep a different
/// representative than a cold run — breaking the warm == cold byte-identity
/// guarantee (tests/determinism_test.cpp).
bool finding_less(const Finding& a, const Finding& b) {
    if (a.location.file != b.location.file) return a.location.file < b.location.file;
    if (a.location.line != b.location.line) return a.location.line < b.location.line;
    if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    if (a.variable != b.variable) return a.variable < b.variable;
    if (a.sink != b.sink) return a.sink < b.sink;
    if (a.vector != b.vector)
        return static_cast<int>(a.vector) < static_cast<int>(b.vector);
    if (a.via_oop != b.via_oop) return a.via_oop < b.via_oop;
    if (a.trace.size() != b.trace.size()) return a.trace.size() < b.trace.size();
    for (size_t i = 0; i < a.trace.size(); ++i) {
        const TaintStep& sa = a.trace[i];
        const TaintStep& sb = b.trace[i];
        if (sa.location.file != sb.location.file)
            return sa.location.file < sb.location.file;
        if (sa.location.line != sb.location.line)
            return sa.location.line < sb.location.line;
        if (sa.description != sb.description) return sa.description < sb.description;
    }
    return false;
}

}  // namespace

std::string result_signature(const AnalysisResult& result) {
    std::ostringstream os;
    os << "tool=" << result.tool << " plugin=" << result.plugin
       << " files_failed=" << result.files_failed
       << " error_messages=" << result.error_messages << '\n';
    for (const Finding& f : result.findings) {
        os << to_string(f) << '\n';
        for (const TaintStep& step : f.trace)
            os << "  " << to_string(step.location) << ' ' << step.description
               << '\n';
    }
    for (const Diagnostic& d : result.diagnostics)
        os << to_string(d.severity) << ' ' << to_string(d.location) << ' '
           << d.message << '\n';
    return os.str();
}

void deduplicate(std::vector<Finding>& findings) {
    std::stable_sort(findings.begin(), findings.end(), finding_less);
    std::set<std::string> seen;
    std::vector<Finding> unique;
    unique.reserve(findings.size());
    for (Finding& f : findings) {
        if (seen.insert(f.dedup_key()).second) unique.push_back(std::move(f));
    }
    findings = std::move(unique);
}

}  // namespace phpsafe
