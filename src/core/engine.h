// The phpSAFE analysis engine (paper §III): flow-sensitive, inter- and
// intra-procedural taint analysis over the AST, with function summaries
// ("a function is parsed only once; the summary is reused"), OOP member
// resolution, include following, analysis of functions never called from
// plugin code, and configurable feature degradation so the RIPS-like and
// Pixy-like baselines can run on the same substrate.
//
// Statement processing follows the paper's semantics: conditionals and
// loops "do not change the data flow — the blocks of code are parsed
// normally", i.e. branches are processed sequentially in the same
// environment; unset() marks a variable untainted; assignment recomputes
// the variable's classification from the right-hand side.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "config/knowledge.h"
#include "core/finding.h"
#include "core/oop.h"
#include "core/summaries.h"
#include "core/taint.h"
#include "php/project.h"
#include "util/flat_map.h"
#include "util/interner.h"

namespace phpsafe {

namespace ir {
struct Body;
class Module;
}  // namespace ir

/// Which execution substrate runs taint propagation.
///
///   kAst          — recursive evaluation over the AST (the original
///                   engine; the semantic oracle).
///   kIr           — each body is lowered once into the flat dataflow IR
///                   (core/ir.h) and executed as a linear instruction
///                   stream over dense value slots. Findings are
///                   byte-identical to kAst; bodies the lowering cannot
///                   prove truncation-free fall back to the AST path.
///   kDifferential — runs both, returns the AST result, and raises an
///                   error diagnostic (kBackendMismatchMarker) when the IR
///                   result is not byte-identical. The fuzz battery and the
///                   differential test suite run in this mode.
enum class EngineBackend { kAst, kIr, kDifferential };

std::string_view to_string(EngineBackend backend) noexcept;
/// Parses "ast" | "ir" | "differential"; false (out untouched) otherwise.
bool backend_from_string(std::string_view text, EngineBackend& out) noexcept;
/// Process-wide default: EngineBackend::kAst unless the PHPSAFE_BACKEND
/// environment variable selects another backend (read once, cached). An
/// unparseable value warns on stderr once and falls back to kAst.
EngineBackend default_engine_backend();

/// Substring present in the diagnostic raised by a kDifferential run whose
/// two backends disagreed — the marker the fuzz no-crash oracle greps for.
inline constexpr std::string_view kBackendMismatchMarker =
    "engine backend mismatch";

struct AnalysisOptions {
    std::string tool_name = "phpSAFE";

    /// Resolve OOP constructs (methods, properties, `new`, `$this`). When
    /// off (RIPS-like), method calls are opaque and never match configured
    /// sources/sinks — the paper's explanation for why RIPS and Pixy miss
    /// every vulnerability that flows through WordPress objects.
    bool oop_support = true;

    /// Abort a file when it contains OOP constructs (Pixy predates PHP 5
    /// OOP; the paper reports it failed on 32 files and raised errors).
    bool fail_on_oop_file = false;

    /// Analyze functions never called from plugin code (paper §III.C; the
    /// paper observes Pixy lacks this ability).
    bool analyze_uncalled_functions = true;

    /// When analyzing an uncalled function, also report parameter-derived
    /// sink flows as findings (the CMS may pass attacker data in).
    bool assume_params_tainted_in_uncalled = false;

    /// Number of times loop bodies are processed (1 = paper-faithful single
    /// pass; 2 catches loop-carried flows — used by the ablation bench).
    int loop_iterations = 1;

    /// Include-chain depth limit; exceeding it aborts the file with a fatal
    /// diagnostic (models the paper's report that phpSAFE failed to analyze
    /// files "with many includes requiring a lot of memory").
    int max_include_depth = 8;

    /// Call-depth guard for deeply nested user-function chains.
    int max_call_depth = 48;

    /// Track object classes through `new` / known globals; required for
    /// class-specific method configuration ($wpdb).
    bool track_object_types = true;

    /// Analyze closure bodies at their creation point (treats hooks
    /// registered as anonymous functions as reachable).
    bool analyze_closures = true;

    /// Hermetic summaries (the incremental service's mode): every declared
    /// function is summarized context-free, in declaration order, before any
    /// entry file runs, and first-call argument context is ignored. This
    /// makes a summary a pure function of the project content reachable from
    /// it — the property that lets the service reuse summaries across runs —
    /// at the cost of the paper's "context of the first call" side-effect
    /// materialization. Requires analyze_uncalled_functions to change stage
    /// order; without it the flag only disables call-context sensitivity.
    bool hermetic_summaries = false;

    /// Capture/seed each entry file's top-level walk (its "main function",
    /// paper §III.C) as an artifact alongside the function summaries, keyed
    /// "file:<name>". An entry artifact is reusable only when the walk
    /// observed nothing another entry file could change: a plain-global
    /// read must be preceded by the entry's own strong write of that name
    /// (the final written values are stored in the artifact and replayed on
    /// seeding, so later entry files see the same global state a fresh walk
    /// would have left), and any persistent-store touch — properties,
    /// statics, closure dedup — disqualifies it. Off by default; only the
    /// validation pipeline's fix-verification rescans opt in, so service
    /// cache contents and counters are unaffected. Requires
    /// hermetic_summaries (stage-1' ordering is what makes the walk a pure
    /// function of file content + replayed globals).
    bool capture_entry_files = false;

    /// Taint-propagation substrate (see EngineBackend). Defaults to the
    /// process default (kAst unless PHPSAFE_BACKEND overrides), so the
    /// whole test suite can be flipped onto the IR path from the
    /// environment without touching call sites.
    EngineBackend engine_backend = default_engine_backend();

    /// Stable key of every field that changes analysis semantics. Two
    /// engines with equal fingerprints produce identical results on equal
    /// input — the analysis-preset component of the service's cache keys.
    /// The backend participates: kIr and kAst are byte-identical by
    /// construction, but a cache key must never assert that equivalence.
    std::string fingerprint() const;

    /// Fluent construction (see Builder below). `AnalysisOptions` values
    /// are treated as immutable once an Engine/Analyzer holds them; the
    /// builder is the supported way to derive a modified copy.
    class Builder;
    static Builder builder();
    Builder to_builder() const;

    // -- named presets (paper §IV.B.3 tool envelopes) -------------------------
    // The single source of truth for each tool's capability envelope;
    // baselines, benches, and tests all start from these instead of wiring
    // individual flags by hand.

    /// phpSAFE: OOP-aware, analyzes uncalled functions, include-depth
    /// limited (paper §V.E: failed on very deep include chains).
    static AnalysisOptions phpsafe();

    /// RIPS-like: strong procedural analysis, no OOP member resolution;
    /// robust on all files (the paper reports RIPS completed every file).
    static AnalysisOptions rips_like();

    /// Pixy-like: predates PHP 5 OOP (files using OOP fail), no analysis of
    /// functions never called from plugin code.
    static AnalysisOptions pixy_like();
};

/// Immutable-style builder over AnalysisOptions: each setter returns the
/// builder, build() yields the finished value. Start from defaults
/// (AnalysisOptions::builder()), from a preset
/// (AnalysisOptions::phpsafe().to_builder()) or from any existing options
/// value.
class AnalysisOptions::Builder {
public:
    Builder() = default;
    explicit Builder(AnalysisOptions base) : options_(std::move(base)) {}

    Builder& tool_name(std::string v) { options_.tool_name = std::move(v); return *this; }
    Builder& oop_support(bool v) { options_.oop_support = v; return *this; }
    Builder& fail_on_oop_file(bool v) { options_.fail_on_oop_file = v; return *this; }
    Builder& analyze_uncalled_functions(bool v) { options_.analyze_uncalled_functions = v; return *this; }
    Builder& assume_params_tainted_in_uncalled(bool v) { options_.assume_params_tainted_in_uncalled = v; return *this; }
    Builder& loop_iterations(int v) { options_.loop_iterations = v; return *this; }
    Builder& max_include_depth(int v) { options_.max_include_depth = v; return *this; }
    Builder& max_call_depth(int v) { options_.max_call_depth = v; return *this; }
    Builder& track_object_types(bool v) { options_.track_object_types = v; return *this; }
    Builder& analyze_closures(bool v) { options_.analyze_closures = v; return *this; }
    Builder& hermetic_summaries(bool v) { options_.hermetic_summaries = v; return *this; }
    Builder& capture_entry_files(bool v) { options_.capture_entry_files = v; return *this; }
    Builder& engine_backend(EngineBackend v) { options_.engine_backend = v; return *this; }

    AnalysisOptions build() const { return options_; }

private:
    AnalysisOptions options_;
};

inline AnalysisOptions::Builder AnalysisOptions::builder() { return Builder(); }
inline AnalysisOptions::Builder AnalysisOptions::to_builder() const {
    return Builder(*this);
}

class Engine {
public:
    /// Instrumentation hook interface — the supported way to watch a run
    /// from outside (the obs tracer, progress UIs, and tests all plug in
    /// here instead of patching private engine code). Callbacks fire on the
    /// thread running analyze(), in deterministic order for a fixed
    /// (project, options) pair. The default implementations do nothing, so
    /// an Engine without an observer pays one null check per event.
    class Observer {
    public:
        virtual ~Observer() = default;
        /// The engine starts flow analysis of an entry file. Fired for
        /// every project file, including ones that immediately fail.
        virtual void on_file_begin(const php::ParsedFile&) {}
        /// The entry file is done; `failed` is true when it counts toward
        /// AnalysisResult::files_failed (parse failure, unsupported OOP,
        /// include-depth abort).
        virtual void on_file_end(const php::ParsedFile&, bool /*failed*/) {}
        /// A function summary was computed (its body was just analyzed).
        virtual void on_function_summary(const php::FunctionRef&,
                                         const FunctionSummary&) {}
        /// A finding was reported (before deduplication).
        virtual void on_finding(const Finding&) {}
    };

    Engine(const KnowledgeBase& kb, AnalysisOptions options = {});
    ~Engine();

    /// Analyzes a whole plugin. Repeatable: all run state is reset.
    AnalysisResult analyze(const php::Project& project);

    /// Analyze with cross-run summary exchange (see core/summaries.h).
    /// Seeded summaries are installed instead of analyzing their bodies and
    /// their recorded findings are replayed; computed summaries are captured
    /// with their dependency records. Findings are identical to an
    /// exchange-free run for any valid seed set — tests/determinism_test.cpp
    /// and tests/service_test.cpp prove it.
    AnalysisResult analyze(const php::Project& project,
                           const SummaryExchange& exchange);

    const AnalysisOptions& options() const noexcept { return options_; }

    /// Installs an observer for subsequent analyze() calls (null detaches).
    /// Not owned; must outlive the runs it observes.
    void set_observer(Observer* observer) noexcept { observer_ = observer; }
    Observer* observer() const noexcept { return observer_; }

private:
    /// Scopes key their variable maps by interned Symbols (see
    /// util/interner.h): one hash + flat probe per lookup instead of the
    /// seed's O(log n) string-comparing std::map walk.
    struct Scope {
        SymbolMap<TaintValue> vars;
        SymbolSet global_aliases;  ///< names bound by `global`
        /// Reference aliases ($a =& $b): alias name → canonical name. The
        /// paper runs Pixy with "-A" to enable exactly this handling.
        SymbolMap<Symbol> ref_aliases;
        /// Set after extract($tainted): reads of variables never assigned
        /// in this scope yield this taint (extract() can define any name).
        TaintValue extract_taint;
        const php::ClassDecl* current_class = nullptr;
        FunctionSummary* summary = nullptr;  ///< set while summarizing a body
        bool is_global = false;
        std::string file;
    };

    // -- drivers -------------------------------------------------------------
    /// kDifferential driver: runs the IR and AST backends on the same input
    /// and compares their result signatures (core/finding.h).
    AnalysisResult analyze_differential(const php::Project& project,
                                        const SummaryExchange& exchange);
    void analyze_entry_file(const php::ParsedFile& file);
    void summarize_uncalled();
    void summarize_all_declared();
    bool file_uses_oop(const php::ParsedFile& file) const;

    // -- body execution seam ---------------------------------------------------
    /// Every body entry point (entry files, function bodies, closures,
    /// included files) runs through here. The AST backend recurses through
    /// exec_stmts; the IR backend lowers the body once (cached per run) and
    /// executes the flat instruction stream — falling back to the AST path
    /// for bodies whose static expression depth could hit the eval()
    /// truncation guard, where only the recursive evaluator reproduces the
    /// truncation diagnostics byte-for-byte.
    void run_body(const ArenaVector<php::StmtPtr>& stmts, Scope& scope);
    /// The IR interpreter (core/ir_taint.cpp): linear walk over the body's
    /// instruction stream with dense per-instruction TaintValue slots.
    void run_ir_body(const ir::Body& body, Scope& scope);

    // -- cross-run summary capture ---------------------------------------------
    /// Records a project observation on every active capture (no-op when the
    /// capture stack is empty — the default-mode cost is one empty() check).
    void note_dep(SummaryDep::Kind kind, std::string_view name,
                  std::string_view file);
    /// Marks every active capture non-reusable: the summarization touched
    /// state a seed replay cannot reproduce and the shared-slot machinery
    /// below cannot pin (truncation diagnostics, whole-scope captures).
    void touch_shared_state();
    /// Records a read of a shared slot — a plain global ("$x"), a
    /// class-level property ("cls::prop") or a static property
    /// ("cls::$prop"), all interned into one keyspace (variables carry the
    /// '$' sigil, class names cannot). Function frames die (a summary
    /// replay cannot reproduce shared state); an entry frame records the
    /// observed value's signature unless it wrote the slot first, and the
    /// artifact seeds later only while the slot still matches.
    void note_shared_read(Symbol name);
    /// Records a write to a shared slot. Function frames die as above; an
    /// entry frame tracks the write (the final value is captured and
    /// replayed on seeding), a weak write to a slot it does not own also
    /// observing the prior state like a read (the merge consumes it).
    void note_shared_write(Symbol name, bool strong);
    /// The current value of a shared slot by interned key, or null when the
    /// slot is absent from its store.
    const TaintValue* find_shared_slot(Symbol name);
    /// Installs a seeded artifact for `key`; true when a seed was applied.
    bool apply_summary_seed(const std::string& key, FunctionSummary& slot);
    /// Replays a seeded entry-file artifact (findings + final shared-slot
    /// writes); true when a seed was applied and the walk can be skipped.
    bool apply_entry_seed(const std::string& key);
    /// Pops the innermost capture frame and stores its artifact.
    void finish_capture(const std::string& key, const FunctionSummary& summary);

    // -- statements ----------------------------------------------------------
    void exec_stmts(const ArenaVector<php::StmtPtr>& stmts, Scope& scope);
    void exec_stmt(const php::Stmt& stmt, Scope& scope);

    // -- expressions ---------------------------------------------------------
    TaintValue eval(const php::Expr& expr, Scope& scope);
    TaintValue eval_variable(const php::Variable& var, Scope& scope);
    TaintValue eval_array_access(const php::ArrayAccess& access, Scope& scope);
    TaintValue eval_property_access(const php::PropertyAccess& access, Scope& scope);
    TaintValue eval_function_call(const php::FunctionCall& call, Scope& scope);
    TaintValue eval_method_call(const php::MethodCall& call, Scope& scope);
    TaintValue eval_static_call(const php::StaticCall& call, Scope& scope);
    TaintValue eval_new(const php::New& expr, Scope& scope);
    TaintValue eval_assign(const php::Assign& assign, Scope& scope);
    TaintValue eval_include(const php::IncludeExpr& inc, Scope& scope);
    void eval_closure_body(const php::Closure& closure, Scope& scope);

    // -- dispatch/finish helpers ----------------------------------------------
    // The operand-free second halves of the eval_* methods above. Both
    // backends call exactly these (the AST path after recursively
    // evaluating operands, the IR path after reading operand value slots),
    // which is what makes IR findings byte-identical to AST findings.
    TaintValue dispatch_function_call(const php::FunctionCall& call,
                                      std::vector<TaintValue>& args, Scope& scope);
    TaintValue dispatch_method_call(const php::MethodCall& call,
                                    const TaintValue& object,
                                    std::vector<TaintValue>& args, Scope& scope);
    TaintValue dispatch_static_call(const php::StaticCall& call,
                                    std::vector<TaintValue>& args, Scope& scope);
    TaintValue dispatch_new(const php::New& expr, std::vector<TaintValue>& args,
                            Scope& scope);
    /// $a =& $b alias binding — everything in eval_assign's by-ref branch
    /// before the value is (re)evaluated.
    void bind_ref_alias(const php::Assign& assign, Scope& scope);
    TaintValue finish_property_read(const php::PropertyAccess& access,
                                    const TaintValue& object, Scope& scope);
    TaintValue read_static_property(const php::StaticPropertyAccess& access,
                                    Scope& scope);
    /// Taint introduction for a superglobal read ($_GET or $_GET['k']).
    TaintValue superglobal_source(const SuperglobalInfo& sg, SourceLocation loc,
                                  std::string_view name, const php::Expr* index);
    TaintValue apply_cast(const php::Cast& cast, TaintValue value, Scope& scope);
    /// Folds a return (or __yield) value into the enclosing summary.
    void finish_return(const TaintValue& value, Scope& scope);
    TaintValue make_closure_value(const php::Closure& closure, Scope& scope);
    /// Everything eval_include does after evaluating the path expression.
    TaintValue finish_include(const php::IncludeExpr& inc, Scope& scope);
    void check_echo_arg(const php::EchoStmt& echo, const php::Expr& arg,
                        const TaintValue& value, Scope& scope);
    /// Adds the foreach trace step to the iterable's value.
    TaintValue foreach_prepare(const php::ForeachStmt& stmt, TaintValue iterable,
                               Scope& scope);
    void exec_global_decl(const php::GlobalStmt& stmt, Scope& scope);
    void exec_unset(const php::UnsetStmt& stmt, Scope& scope);
    void bind_catch_var(const php::CatchClause& clause, Scope& scope);

    // -- calls ---------------------------------------------------------------
    std::vector<TaintValue> eval_args(const ArenaVector<php::Argument>& args,
                                      Scope& scope);
    TaintValue apply_builtin(const FunctionInfo& info, std::string_view name,
                             const ArenaVector<php::Argument>& arg_exprs,
                             std::vector<TaintValue>& args, SourceLocation loc,
                             Scope& scope, bool via_oop);
    TaintValue apply_user_function(const php::FunctionRef& ref,
                                   const std::vector<TaintValue>& args,
                                   SourceLocation loc, Scope& scope,
                                   std::string_view display_name,
                                   const ArenaVector<php::Argument>* arg_exprs =
                                       nullptr);
    /// Computes the function's summary on first use. When `first_call_args`
    /// is provided (a real call site), parameters carry the caller's actual
    /// taint in addition to the symbolic parameter markers — the paper's
    /// "analyzed the first time it is called, taking into account the
    /// context of the call" — so side effects on properties and globals are
    /// materialized with real taint.
    FunctionSummary& summarize(const php::FunctionRef& ref,
                               const std::vector<TaintValue>* first_call_args = nullptr);

    /// Variable lookup honoring global scope (used by closure capture).
    TaintValue lookup_var(std::string_view name, Scope& scope);

    /// Interns a (case-sensitive) variable or path name for this run.
    Symbol sym(std::string_view name) { return symbols_.intern(name); }

    /// Interns the "$obj->prop" path slot for a property access without a
    /// per-call allocation (the composite is built into a reused buffer).
    Symbol path_sym(std::string_view base, std::string_view prop) {
        path_buf_.clear();
        path_buf_ += base;
        path_buf_ += "->";
        path_buf_ += prop;
        return symbols_.intern(path_buf_);
    }

    /// Interns the shared-slot key of a class-level ("cls::prop") or static
    /// ("cls::$prop") property — byte-identical to the PropertyStore's own
    /// key, class lowercased, so every call site maps one store slot to one
    /// symbol. One keyspace with plain globals: variable names carry the
    /// '$' sigil, class names cannot, so the forms never collide.
    Symbol slot_sym(std::string_view cls, bool is_static, std::string_view prop) {
        path_buf_.clear();
        for (const char c : cls)
            path_buf_ += (c >= 'A' && c <= 'Z') ? static_cast<char>(c + 32) : c;
        path_buf_ += is_static ? "::$" : "::";
        path_buf_ += prop;
        return symbols_.intern(path_buf_);
    }

    /// Resolves $a =& $b reference aliases to the canonical variable symbol.
    Symbol resolve_alias(Symbol name, const Scope& scope) const;

    // -- lvalues / stores ------------------------------------------------------
    void assign_to(const php::Expr& target, TaintValue value, Scope& scope,
                   bool weak = false);
    TaintValue read_global(std::string_view name, SourceLocation loc);
    TaintValue& global_slot(std::string_view name);
    TaintValue& global_slot(Symbol name);

    // -- sinks / findings -----------------------------------------------------
    void check_sink(VulnSet sink_kinds, const TaintValue& value,
                    SourceLocation loc, std::string_view sink_name,
                    const std::string& variable, Scope& scope, bool via_oop);
    void report(VulnKind kind, SourceLocation loc, std::string_view sink_name,
                const std::string& variable, const TaintValue& value);

    SourceLocation loc_of(const php::Node& node, const Scope& scope) const {
        return {scope.file, node.line};
    }

    // -- configuration ---------------------------------------------------------
    const KnowledgeBase& kb_;
    AnalysisOptions options_;
    Observer* observer_ = nullptr;

    // -- per-run state -----------------------------------------------------------
    const php::Project* project_ = nullptr;
    SymbolTable symbols_;
    Symbol this_sym_;     ///< interned "$this" (re-interned per run)
    std::string path_buf_;  ///< scratch for path_sym() composite keys
    DiagnosticSink diagnostics_;
    std::vector<Finding> findings_;
    Scope globals_;
    PropertyStore properties_;
    SummaryStore summaries_;
    std::set<std::string> included_once_;
    std::vector<const php::ParsedFile*> include_stack_;
    std::set<const php::Closure*> analyzed_closures_;
    /// Classes whose `new` is currently being evaluated. A property default
    /// may itself `new` the same class (directly or via a cycle), which
    /// would re-enter default initialization forever; re-entrant
    /// construction is skipped instead.
    std::set<std::string> constructing_classes_;
    int call_depth_ = 0;
    /// Expression-nesting depth across eval(). The parser bounds nesting per
    /// file, but engine stack frames are far larger than parser ones
    /// (sanitizer builds especially), so eval() truncates well before the
    /// process stack is at risk.
    int eval_depth_ = 0;
    bool current_file_failed_ = false;
    AnalysisStats stats_;
    double include_cpu_seconds_ = 0;  ///< CPU spent executing included files
    double lower_cpu_seconds_ = 0;    ///< CPU spent lowering bodies to IR
    /// Per-run lowering cache (IR/differential backends only): statement
    /// list → flat body, arena-backed, built on first execution.
    std::unique_ptr<ir::Module> ir_module_;

    // -- cross-run summary exchange state ---------------------------------------
    /// One frame per summarize() call currently on the stack while capture is
    /// active. The innermost frame records findings and dependency
    /// observations; when it pops, both propagate to the enclosing frame (a
    /// caller transitively depends on everything its callees observed).
    struct CaptureFrame {
        std::string key;              ///< lowercased qualified name
        SummaryArtifact artifact;     ///< deps + findings accumulate here
        bool reusable = true;
        bool entry = false;           ///< entry-file frame (stack bottom)
        /// Entry frames: diagnostics_ size at frame push — everything the
        /// sink accumulates past this mark was emitted by the walk and is
        /// captured into the artifact for replay.
        size_t diag_mark = 0;
        /// Shared slots this entry wrote (see note_shared_read for the
        /// keyspace); reads of these slots stay self-contained.
        std::set<Symbol> slots_written;
        /// Shared slots read (or weak-merged) before any own write, with
        /// the value_fingerprint observed at first touch (0 = absent slot).
        /// Becomes the artifact's seed-time validity check.
        std::map<Symbol, uint64_t> foreign_observed;
    };
    SummaryExchange exchange_;
    std::vector<CaptureFrame> capture_stack_;
    /// Every summary this run installed (computed or seeded), so a later
    /// reuse of it can absorb its dependency record into the active frame.
    std::map<std::string, const SummaryArtifact*> run_artifacts_;
};

}  // namespace phpsafe
