#include "core/summaries.h"

namespace phpsafe {

FunctionSummary& SummaryStore::slot(const std::string& qualified_lower) {
    return summaries_[qualified_lower];
}

const FunctionSummary* SummaryStore::find(const std::string& qualified_lower) const {
    const auto it = summaries_.find(qualified_lower);
    return it == summaries_.end() ? nullptr : &it->second;
}

void SummaryStore::clear() { summaries_.clear(); }

std::vector<std::string> SummaryStore::analyzed_names() const {
    std::vector<std::string> names;
    names.reserve(summaries_.size());
    for (const auto& [name, summary] : summaries_)
        if (summary.analyzed) names.push_back(name);
    return names;
}

}  // namespace phpsafe
