// Taint propagation over the flat dataflow IR (core/ir.h): a linear walk
// of the instruction stream with dense per-instruction TaintValue slots,
// replacing the recursive descent of Engine::eval for lowered bodies.
//
// Byte-identity with the AST backend is structural, not incidental: every
// op's semantics consist of reading already-computed operand slots and then
// invoking the same Engine dispatch/finish helper the recursive evaluator
// calls, at the same eval_depth_ (entry + inst.depth). The only control
// transfers are bounded loop back-edges and failed-file statement gates —
// the exact two places Engine::exec_stmts's control flow can deviate from
// straight-line order.
#include "core/engine.h"
#include "core/ir.h"
#include "obs/counters.h"

namespace phpsafe {

using php::NodeKind;

void Engine::run_ir_body(const ir::Body& body, Scope& scope) {
    ++obs::tls().ir_body_runs;
    std::vector<TaintValue> values(body.inst_count);
    std::vector<uint32_t> loop_trips;  // remaining trips, innermost last
    std::vector<TaintValue> args;      // scratch operand list for call ops

    const int entry_depth = eval_depth_;
    const auto pool_args = [&](const ir::Inst& inst) -> std::vector<TaintValue>& {
        args.clear();
        args.reserve(inst.c);
        for (uint32_t i = 0; i < inst.c; ++i)
            args.push_back(values[body.pool[inst.b + i]]);
        return args;
    };

    for (uint32_t ip = 0; ip < body.inst_count; ++ip) {
        const ir::Inst& inst = body.insts[ip];
        eval_depth_ = entry_depth + inst.depth;
        switch (inst.op) {
            case ir::Op::kClean:
                break;  // slots default to clean
            case ir::Op::kCopy:
                values[ip] = values[inst.a];
                break;
            case ir::Op::kVarRead:
                values[ip] = eval_variable(
                    static_cast<const php::Variable&>(*inst.node), scope);
                break;
            case ir::Op::kSgArrayRead: {
                const auto& access =
                    static_cast<const php::ArrayAccess&>(*inst.node);
                const auto& base =
                    static_cast<const php::Variable&>(*access.base);
                const SuperglobalInfo* sg = kb_.superglobal(base.name);
                values[ip] = superglobal_source(*sg, loc_of(access, scope),
                                                base.name, access.index);
                break;
            }
            case ir::Op::kGlobalsRead: {
                const auto& access =
                    static_cast<const php::ArrayAccess&>(*inst.node);
                const auto& lit =
                    static_cast<const php::Literal&>(*access.index);
                std::string gname = "$";
                gname += lit.value;
                values[ip] = read_global(gname, loc_of(access, scope));
                break;
            }
            case ir::Op::kPropRead:
                values[ip] = finish_property_read(
                    static_cast<const php::PropertyAccess&>(*inst.node),
                    values[inst.a], scope);
                break;
            case ir::Op::kStaticPropRead:
                values[ip] = read_static_property(
                    static_cast<const php::StaticPropertyAccess&>(*inst.node),
                    scope);
                break;
            case ir::Op::kMerge: {
                TaintValue out;
                for (uint32_t i = 0; i < inst.c; ++i)
                    out.merge(values[body.pool[inst.b + i]]);
                values[ip] = std::move(out);
                break;
            }
            case ir::Op::kBinFold:
                if (inst.flags & ir::kKeepTaint) {
                    TaintValue out = values[inst.a];
                    out.merge(values[inst.b]);
                    values[ip] = std::move(out);
                }
                // else: the fold yields a harmless value — slot stays clean.
                break;
            case ir::Op::kCast:
                values[ip] =
                    apply_cast(static_cast<const php::Cast&>(*inst.node),
                               values[inst.a], scope);
                break;
            case ir::Op::kTernary: {
                TaintValue out = values[inst.a];
                if (inst.b != ir::kNoValue) out.merge(values[inst.b]);
                values[ip] = std::move(out);
                break;
            }
            case ir::Op::kRefBind:
                bind_ref_alias(static_cast<const php::Assign&>(*inst.node),
                               scope);
                break;
            case ir::Op::kAssignFinish: {
                const auto& assign =
                    static_cast<const php::Assign&>(*inst.node);
                TaintValue value = values[inst.a];
                if (inst.flags & ir::kMergeTarget)
                    value.merge(values[inst.b]);
                else if (inst.flags & ir::kCleanValue)
                    value = TaintValue::clean();
                assign_to(*assign.target, value, scope);
                values[ip] = std::move(value);
                break;
            }
            case ir::Op::kCallFunc:
                values[ip] = dispatch_function_call(
                    static_cast<const php::FunctionCall&>(*inst.node),
                    pool_args(inst), scope);
                break;
            case ir::Op::kCallMethod: {
                // Read the receiver before pool_args clobbers the scratch
                // vector (inst.a indexes values, so a reference stays valid).
                const TaintValue& object = values[inst.a];
                values[ip] = dispatch_method_call(
                    static_cast<const php::MethodCall&>(*inst.node), object,
                    pool_args(inst), scope);
                break;
            }
            case ir::Op::kCallStatic:
                values[ip] = dispatch_static_call(
                    static_cast<const php::StaticCall&>(*inst.node),
                    pool_args(inst), scope);
                break;
            case ir::Op::kNewObj:
                values[ip] =
                    dispatch_new(static_cast<const php::New&>(*inst.node),
                                 pool_args(inst), scope);
                break;
            case ir::Op::kClosure:
                values[ip] = make_closure_value(
                    static_cast<const php::Closure&>(*inst.node), scope);
                break;
            case ir::Op::kInclude:
                values[ip] = finish_include(
                    static_cast<const php::IncludeExpr&>(*inst.node), scope);
                break;
            case ir::Op::kForeachPrep:
                values[ip] = foreach_prepare(
                    static_cast<const php::ForeachStmt&>(*inst.node),
                    inst.a != ir::kNoValue ? values[inst.a]
                                           : TaintValue::clean(),
                    scope);
                break;
            case ir::Op::kEchoSink: {
                const auto& echo =
                    static_cast<const php::EchoStmt&>(*inst.node);
                check_echo_arg(echo, *echo.args[inst.b], values[inst.a], scope);
                break;
            }
            case ir::Op::kPrintSink: {
                const auto& n = static_cast<const php::PrintExpr&>(*inst.node);
                const TaintValue& value = values[inst.a];
                check_sink(kXssOnly, value, loc_of(n, scope), "print",
                           to_php_source(*n.operand), scope, value.via_oop);
                break;
            }
            case ir::Op::kExitSink: {
                const auto& n = static_cast<const php::ExitExpr&>(*inst.node);
                const TaintValue& value = values[inst.a];
                check_sink(kXssOnly, value, loc_of(n, scope), "exit",
                           to_php_source(*n.operand), scope, value.via_oop);
                break;
            }
            case ir::Op::kBindTarget:
                assign_to(*static_cast<const php::Expr*>(inst.node),
                          values[inst.a], scope);
                break;
            case ir::Op::kReturn:
                finish_return(inst.a != ir::kNoValue ? values[inst.a]
                                                     : TaintValue::clean(),
                              scope);
                break;
            case ir::Op::kGlobalDecl:
                exec_global_decl(static_cast<const php::GlobalStmt&>(*inst.node),
                                 scope);
                break;
            case ir::Op::kStaticBind: {
                const auto& n =
                    static_cast<const php::StaticVarStmt&>(*inst.node);
                const auto& [name, init] = n.vars[inst.b];
                (void)init;
                scope.vars[sym(name)] = values[inst.a];
                break;
            }
            case ir::Op::kUnset:
                exec_unset(static_cast<const php::UnsetStmt&>(*inst.node),
                           scope);
                break;
            case ir::Op::kCatchBind:
                bind_catch_var(static_cast<const php::TryStmt&>(*inst.node)
                                   .catches[inst.b],
                               scope);
                break;
            case ir::Op::kEscapeStmt:
                exec_stmt(*static_cast<const php::Stmt*>(inst.node), scope);
                break;
            case ir::Op::kStmtGate:
                if (current_file_failed_) ip = inst.c - 1;  // ++ lands on target
                break;
            case ir::Op::kLoopBegin:
                loop_trips.push_back(inst.b);
                break;
            case ir::Op::kLoopEnd:
                if (--loop_trips.back() > 0)
                    ip = inst.b - 1;  // ++ lands on the first body inst
                else
                    loop_trips.pop_back();
                break;
        }
    }
    eval_depth_ = entry_depth;
}

}  // namespace phpsafe
