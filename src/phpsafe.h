// Umbrella header: the whole public phpSAFE API in one include. Embedders
// and the examples/ programs write `#include "phpsafe.h"` and get the full
// pipeline — PHP front end, taint engine, baseline tool set, corpus
// generator, evaluation driver, report/export, and the observability
// subsystem (obs::Counters, obs::Tracer, Engine::Observer).
//
// Internal headers (core/oop.h, util/flat_map.h, ...) are deliberately not
// re-exported; they are implementation detail and reachable directly when
// genuinely needed.
#pragma once

// Front end: lexing/parsing PHP into the project model.
#include "php/parser.h"
#include "php/project.h"

// Knowledge base: sources, sinks, sanitizers, CMS profiles.
#include "config/knowledge.h"

// Analysis: the Analyzer facade (the one entry point — scan(project) →
// ScanResult), taint engine, options/presets, findings, observer hooks.
#include "core/analyzer.h"
#include "core/engine.h"
#include "core/finding.h"
#include "core/taint.h"

// The paper's tool set (phpSAFE / RIPS-like / Pixy-like) and run_tool.
#include "baselines/analyzers.h"

// Long-lived analysis service: request queue, content-addressed cache.
#include "service/cache.h"
#include "service/service.h"

// Synthetic plugin corpus (paper §IV.A).
#include "corpus/generator.h"

// Evaluation driver, metrics, report rendering and exporters.
#include "report/evaluation.h"
#include "report/export.h"
#include "report/matching.h"
#include "report/metrics.h"
#include "report/render.h"

// Observability: stage counters, span tracing, JSON writing.
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/timing.h"
