// Pattern library for the synthetic plugin corpus. Each family is a code
// template modeled on the idioms the paper reports in real WordPress
// plugins — including its three worked examples (mail-subscribe-list's
// $wpdb->get_results rows echoed unescaped, wp-symposium's $_POST echo,
// wp-photo-album-plus's stripslashes-reverted DB value, qtranslate's
// fgets echo). Vulnerable families carry ground truth; safe families are
// true negatives that specific capability envelopes misjudge (FP bait).
#pragma once

#include <string>
#include <vector>

#include "config/knowledge.h"

namespace phpsafe::corpus {

enum class Family {
    // --- vulnerable: procedural, generic PHP (detectable by all/most tools)
    kXssGetEcho,          ///< $_GET → echo (wp-symposium style)
    kXssPostEcho,         ///< $_POST → echo
    kXssCookieEcho,       ///< $_COOKIE → echo
    kXssRequestPrint,     ///< $_REQUEST → print
    kXssGetViaFunction,   ///< GET → user function → echo (inter-procedural)
    kXssDbProcedural,     ///< mysql_fetch_assoc row → echo
    kXssFileSource,       ///< fgets → echo (qtranslate style)
    kXssUncalledFn,       ///< $_GET → echo inside a function never called
    kXssDeepInclude,      ///< behind a too-deep include chain (phpSAFE fails)
    kXssPrintfGet,        ///< $_GET → printf (callable sink)
    kXssPregMatchFlow,    ///< GET → preg_match capture array → echo
    kXssExitMessage,      ///< GET → die($msg) (language-construct sink)

    // --- vulnerable: OOP / WordPress (phpSAFE-only territory)
    kXssWpdbRows,         ///< $wpdb->get_results rows → echo (mail-subscribe-list)
    kXssWpdbVar,          ///< $wpdb->get_var → echo
    kXssWpdbRevert,       ///< prepared stmt + stripslashes (wp-photo-album-plus)
    kXssOopProperty,      ///< taint through an object property across methods
    kXssWpOption,         ///< get_option → echo (WP profile, procedural)
    kXssWpPostmeta,       ///< get_post_meta → echo
    kSqliWpdbQuery,       ///< $_GET → $wpdb->query (SQLi)
    kSqliWpdbGetResults,  ///< $_POST → $wpdb->get_results (SQLi)
    kSqliMysqliOop,       ///< $_POST → (new mysqli)->query (SQLi, OOP)

    // --- vulnerable: tool-specific detection classes
    kXssRegisterGlobals,  ///< unassigned global echoed (Pixy-only TP class)
    kXssWrongContextSanitizer,  ///< esc_attr in URL context (real; phpSAFE trusts it)

    // --- safe (true negatives / FP bait)
    kSafeSanitizedEcho,    ///< htmlspecialchars → echo (TN for everyone)
    kSafeEscHtml,          ///< esc_html → echo (FP for tools without WP profile)
    kSafeGuardExit,        ///< is_numeric guard + exit (FP for all: exit not modeled)
    kSafeWhitelistTernary, ///< in_array whitelist ternary (FP for all)
    kSafeIssetEcho,        ///< isset($x) echo $x (FP only under register_globals)
    kSafeIntval,           ///< intval → echo (TN)
    kSafePrepare,          ///< $wpdb->prepare (SQLi TN)
    kSafeSprintfD,         ///< sprintf('%d', ...) (FP for all)
    kSafeJsonEncode,       ///< json_encode output (FP for 2007-era tools)
    kSafeCast,             ///< (int) cast (TN)
    kSafeSqliGuard,        ///< ctype_digit guard + die, then query (SQLi FP bait)
};

constexpr Family kAllFamilies[] = {
    Family::kXssGetEcho, Family::kXssPostEcho, Family::kXssCookieEcho,
    Family::kXssRequestPrint, Family::kXssGetViaFunction, Family::kXssDbProcedural,
    Family::kXssFileSource, Family::kXssUncalledFn, Family::kXssDeepInclude,
    Family::kXssPrintfGet, Family::kXssPregMatchFlow, Family::kXssExitMessage,
    Family::kXssWpdbRows, Family::kXssWpdbVar, Family::kXssWpdbRevert,
    Family::kXssOopProperty, Family::kXssWpOption, Family::kXssWpPostmeta,
    Family::kSqliWpdbQuery, Family::kSqliWpdbGetResults, Family::kSqliMysqliOop,
    Family::kXssRegisterGlobals, Family::kXssWrongContextSanitizer,
    Family::kSafeSanitizedEcho, Family::kSafeEscHtml, Family::kSafeGuardExit,
    Family::kSafeWhitelistTernary, Family::kSafeIssetEcho, Family::kSafeIntval,
    Family::kSafePrepare, Family::kSafeSprintfD, Family::kSafeJsonEncode,
    Family::kSafeCast,
    Family::kSafeSqliGuard,
};

std::string to_string(Family family);

struct FamilyTraits {
    bool vulnerable = false;
    VulnKind kind = VulnKind::kXss;
    InputVector vector = InputVector::kUnknown;
    bool via_oop = false;        ///< the flow passes through OOP constructs
    bool requires_oop_file = false;  ///< snippet contains OOP syntax
    bool easy_exploit = false;   ///< GET/POST/COOKIE manipulation (paper §V.D)
};

FamilyTraits traits(Family family);

/// A generated code fragment plus the offsets of its seeded sinks.
struct Snippet {
    std::vector<std::string> lines;           ///< without trailing newline
    std::vector<int> sink_line_offsets;       ///< 0-based index into `lines`
    /// Free functions the snippet defines; echoed for uniqueness checking.
    std::vector<std::string> declared_functions;
};

/// Emits one instance of a family. `tag` makes identifiers unique across
/// the corpus ("p3_17"); `variant` selects cosmetic variation so instances
/// are not byte-identical.
Snippet emit(Family family, const std::string& tag, int variant);

/// Benign filler: helper functions, option tables, HTML templates. `weight`
/// scales the amount of code (roughly `weight` lines).
Snippet emit_filler(const std::string& tag, int variant, int weight);

}  // namespace phpsafe::corpus
