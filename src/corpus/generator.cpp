#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/strings.h"

namespace phpsafe::corpus {

namespace {

/// Per-family instance budgets at scale 1.0, calibrated so the population
/// statistics match the paper's evaluation (Table I/II shape; see
/// EXPERIMENTS.md for the calibration notes).
struct BudgetRow {
    Family family;
    int v2012;
    int v2014;
    /// Share of 2012 instances that survive unfixed into 2014 (§V.D).
    double carry;
    /// Percentage of instances placed in OOP-free files that the Pixy
    /// baseline can parse (only meaningful for OOP-free families).
    int pixy_visible_pct_2012;
    int pixy_visible_pct_2014;
};

constexpr BudgetRow kBudgets[] = {
    // Calibration (see EXPERIMENTS.md): the 2012/2014 counts solve the
    // paper's Table I identities —
    //   phpSAFE = parseable-generic + OOP + WP-function classes,
    //   RIPS    = parseable-generic + deep-include + wrong-context classes,
    //   Pixy    = register_globals + Pixy-visible share of generic,
    //   union   = 394 (2012) / 586 (2014).
    // family                              2012 2014 carry  vis12 vis14
    {Family::kXssGetEcho,                     8,  12, 0.70,   31,   4},
    {Family::kXssPostEcho,                    7,  10, 0.70,   31,   4},
    {Family::kXssPrintfGet,                   4,   6, 0.70,   31,   4},
    {Family::kXssExitMessage,                 3,   4, 0.70,   31,   4},
    {Family::kXssCookieEcho,                  8,  16, 0.70,   31,   4},
    {Family::kXssRequestPrint,                8,  16, 0.70,   31,   4},
    {Family::kXssGetViaFunction,              8,  10, 0.70,   31,   4},
    {Family::kXssDbProcedural,               17,  30, 0.70,   31,   4},
    {Family::kXssFileSource,                 12,   6, 0.50,   31,   4},
    {Family::kXssUncalledFn,                  3,   3, 0.70,    0,   0},
    {Family::kXssPregMatchFlow,               2,   2, 0.70,    0,   0},
    {Family::kXssDeepInclude,                40, 150, 0.00,    0,   0},
    {Family::kXssWpdbRows,                   60,  70, 0.70,    0,   0},
    {Family::kXssWpdbVar,                    40,  50, 0.70,    0,   0},
    {Family::kXssWpdbRevert,                 26,  30, 0.70,    0,   0},
    {Family::kXssOopProperty,                17,  20, 0.70,    0,   0},
    {Family::kXssWpOption,                   54,  60, 0.70,    0,   0},
    {Family::kXssWpPostmeta,                 30,  33, 0.70,    0,   0},
    {Family::kSqliWpdbQuery,                  4,   5, 0.80,    0,   0},
    {Family::kSqliMysqliOop,                  1,   1, 1.00,    0,   0},
    {Family::kSqliWpdbGetResults,             3,   3, 0.67,    0,   0},
    {Family::kXssRegisterGlobals,            25,  10, 0.40,  100, 100},
    {Family::kXssWrongContextSanitizer,      14,  39, 0.70,   30,  15},
    // Safe / FP-bait families (no ground-truth entries).
    {Family::kSafeSanitizedEcho,             20,  30, 0.62,   60,  60},
    {Family::kSafeEscHtml,                   16,  22, 0.62,   60,  60},
    {Family::kSafeGuardExit,                 25,  24, 0.62,   60,  60},
    {Family::kSafeWhitelistTernary,          20,  18, 0.62,   60,  60},
    {Family::kSafeIssetEcho,                120, 156, 0.62,  100, 100},
    {Family::kSafeJsonEncode,                10,   4, 0.40,  100, 100},
    {Family::kSafeIntval,                    15,  20, 0.62,   60,  60},
    {Family::kSafePrepare,                   10,  12, 0.62,    0,   0},
    {Family::kSafeSprintfD,                  16,  15, 0.62,   60,  60},
    {Family::kSafeCast,                      12,  15, 0.62,   60,  60},
    {Family::kSafeSqliGuard,                  2,   5, 0.62,    0,   0},
};

int scaled(int base, double scale) {
    if (base <= 0) return 0;
    return std::max(1, static_cast<int>(std::lround(base * scale)));
}

const BudgetRow* find_budget(Family family) {
    for (const BudgetRow& row : kBudgets)
        if (row.family == family) return &row;
    return nullptr;
}

/// Which plugins carry deep-include chains in each version.
bool has_chain(int plugin_index, const std::string& version) {
    if (version == "2012") return plugin_index == 0;
    return plugin_index <= 2;
}

enum class SlotKind { kOop, kProc, kClean, kChainEntry, kChainLink, kChainTail };

struct SnippetPlacement {
    Family family;
    int ordinal = 0;       ///< global ordinal within the family
    std::string id;        ///< stable vulnerability id
    std::string tag;       ///< identifier suffix baked into the code
    bool carried = false;
};

struct FileSlot {
    std::string name;
    SlotKind kind = SlotKind::kProc;
    int plugin = 0;
    int chain_index = 0;  ///< for chain files
    std::vector<SnippetPlacement> placements;
};

struct VersionPlan {
    std::vector<FileSlot> slots;
};

/// File layout per plugin; the 2014 versions grow (paper: 266 files/89.5
/// KLOC in 2012 → 356 files/180.8 KLOC in 2014).
std::vector<std::pair<const char*, SlotKind>> file_layout(bool oop,
                                                          const std::string& version) {
    std::vector<std::pair<const char*, SlotKind>> files;
    if (oop) {
        files = {{"main.php", SlotKind::kOop},
                 {"admin/admin.php", SlotKind::kOop},
                 {"includes/model.php", SlotKind::kOop},
                 {"includes/helpers.php", SlotKind::kProc},
                 {"templates/render.php", SlotKind::kProc},
                 {"includes/utils.php", SlotKind::kClean}};
        if (version == "2014") {
            files.push_back({"admin/ajax.php", SlotKind::kOop});
            files.push_back({"includes/shortcodes.php", SlotKind::kProc});
            files.push_back({"includes/legacy.php", SlotKind::kClean});
            files.push_back({"includes/widgets.php", SlotKind::kOop});
        }
    } else {
        files = {{"main.php", SlotKind::kProc},
                 {"includes/helpers.php", SlotKind::kProc},
                 {"includes/utils.php", SlotKind::kClean},
                 {"includes/forms.php", SlotKind::kClean}};
        if (version == "2014") {
            files.push_back({"admin/ajax.php", SlotKind::kProc});
            files.push_back({"includes/widgets.php", SlotKind::kProc});
            files.push_back({"includes/legacy.php", SlotKind::kClean});
        }
    }
    return files;
}

constexpr int kChainLength = 9;  ///< chain-0 .. chain-8

class Planner {
public:
    Planner(const CorpusOptions& options, const std::string& version)
        : options_(options), version_(version) {
        // Build slots for every plugin.
        for (int p = 0; p < options.num_plugins; ++p) {
            const bool oop = p < options.num_oop_plugins;
            for (const auto& [name, kind] : file_layout(oop, version)) {
                FileSlot slot;
                slot.name = name;
                slot.kind = kind;
                slot.plugin = p;
                slots_.push_back(std::move(slot));
            }
            if (has_chain(p, version)) {
                for (int c = 0; c < kChainLength; ++c) {
                    FileSlot slot;
                    slot.name = "deep/chain-" + std::to_string(c) + ".php";
                    slot.kind = c == 0 ? SlotKind::kChainEntry
                              : c + 1 == kChainLength ? SlotKind::kChainTail
                                                      : SlotKind::kChainLink;
                    slot.plugin = p;
                    slot.chain_index = c;
                    slots_.push_back(std::move(slot));
                }
            }
        }
    }

    void place(const SnippetPlacement& placement, bool wants_clean, bool wants_oop,
               bool wants_chain) {
        FileSlot* slot = nullptr;
        if (wants_chain) {
            slot = next_slot(SlotKind::kChainEntry, chain_cursor_);
        } else if (wants_oop) {
            slot = next_slot(SlotKind::kOop, oop_cursor_);
        } else if (wants_clean) {
            slot = next_slot(SlotKind::kClean, clean_cursor_);
        } else {
            slot = next_slot(SlotKind::kProc, proc_cursor_);
        }
        if (!slot) slot = &slots_.front();
        slot->placements.push_back(placement);
    }

    std::vector<FileSlot>& slots() { return slots_; }

private:
    FileSlot* next_slot(SlotKind kind, size_t& cursor) {
        for (size_t step = 0; step < slots_.size(); ++step) {
            FileSlot& candidate = slots_[(cursor + step) % slots_.size()];
            if (candidate.kind == kind) {
                cursor = (cursor + step + 1) % slots_.size();
                return &candidate;
            }
        }
        return nullptr;
    }

    const CorpusOptions& options_;
    std::string version_;
    std::vector<FileSlot> slots_;
    size_t oop_cursor_ = 0;
    size_t proc_cursor_ = 0;
    size_t clean_cursor_ = 0;
    size_t chain_cursor_ = 0;
};

/// Composes the final text of one file slot, appending ground truth with
/// resolved 1-based line numbers.
std::string compose_file(const FileSlot& slot, const std::string& plugin_name,
                         const std::string& version, int filler_per_snippet,
                         int& filler_counter, std::vector<SeededVuln>* truth,
                         int* line_count) {
    std::vector<std::string> lines;
    lines.push_back("<?php");
    lines.push_back("/* " + plugin_name + " (" + version + ") — " + slot.name + " */");

    // OOP compatibility probe: marks the file as containing OOP constructs
    // (clean slots stay parseable by pre-OOP tools).
    if (slot.kind != SlotKind::kClean) {
        lines.push_back("$compat_probe_" + std::to_string(filler_counter) +
                        " = new stdClass();");
    }

    // Chain files include the next link before anything else.
    if (slot.kind == SlotKind::kChainEntry || slot.kind == SlotKind::kChainLink) {
        lines.push_back("require_once dirname(__FILE__) . '/chain-" +
                        std::to_string(slot.chain_index + 1) + ".php';");
    }

    auto add_filler = [&](int weight) {
        if (weight <= 0) return;
        Snippet filler = emit_filler(
            "c" + std::to_string(filler_counter), filler_counter, weight);
        ++filler_counter;
        lines.push_back("");
        for (std::string& l : filler.lines) lines.push_back(std::move(l));
    };

    for (const SnippetPlacement& placement : slot.placements) {
        add_filler(filler_per_snippet);
        lines.push_back("");
        Snippet snippet = emit(placement.family, placement.tag,
                               placement.ordinal + slot.plugin * 7);
        const int base = static_cast<int>(lines.size());  // 0-based index of next line
        for (std::string& l : snippet.lines) lines.push_back(std::move(l));
        const FamilyTraits t = traits(placement.family);
        if (t.vulnerable && truth) {
            for (int offset : snippet.sink_line_offsets) {
                SeededVuln vuln;
                vuln.id = placement.id;
                vuln.family = placement.family;
                vuln.kind = t.kind;
                vuln.file = slot.name;
                vuln.line = base + offset + 1;  // 1-based
                vuln.vector = t.vector;
                vuln.via_oop = t.via_oop;
                vuln.easy_exploit = t.easy_exploit;
                vuln.carried_over = placement.carried;
                truth->push_back(std::move(vuln));
            }
        }
    }
    add_filler(filler_per_snippet);

    if (line_count) *line_count = static_cast<int>(lines.size());
    std::string text;
    for (const std::string& l : lines) {
        text += l;
        text += '\n';
    }
    return text;
}

}  // namespace

std::map<Family, int> family_budget(const std::string& version, double scale) {
    std::map<Family, int> budget;
    for (const BudgetRow& row : kBudgets)
        budget[row.family] = scaled(version == "2012" ? row.v2012 : row.v2014, scale);
    return budget;
}

double carry_ratio(Family family) {
    const BudgetRow* row = find_budget(family);
    return row ? row->carry : 0.0;
}

std::vector<SeededVuln> Corpus::all_truth(const std::string& version) const {
    std::vector<SeededVuln> all;
    for (const GeneratedPlugin& plugin : plugins) {
        const PluginVersionSource& src = version == "2012" ? plugin.v2012 : plugin.v2014;
        all.insert(all.end(), src.truth.begin(), src.truth.end());
    }
    return all;
}

int Corpus::total_lines(const std::string& version) const {
    int total = 0;
    for (const GeneratedPlugin& plugin : plugins)
        total += (version == "2012" ? plugin.v2012 : plugin.v2014).total_lines;
    return total;
}

int Corpus::total_files(const std::string& version) const {
    int total = 0;
    for (const GeneratedPlugin& plugin : plugins)
        total += static_cast<int>(
            (version == "2012" ? plugin.v2012 : plugin.v2014).files.size());
    return total;
}

Corpus generate_corpus(const CorpusOptions& options) {
    Corpus corpus;
    corpus.options = options;
    corpus.plugins.resize(options.num_plugins);
    for (int p = 0; p < options.num_plugins; ++p) {
        corpus.plugins[p].name =
            "plugin-" + std::string(p < 10 ? "0" : "") + std::to_string(p);
        corpus.plugins[p].oop = p < options.num_oop_plugins;
    }

    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        Planner planner(options, version);
        const auto budget = family_budget(version, options.scale);
        const auto budget_2012 = family_budget("2012", options.scale);

        for (const BudgetRow& row : kBudgets) {
            const int count = budget.at(row.family);
            const int carried_count =
                version == "2014"
                    ? std::min(count, static_cast<int>(std::lround(
                                          budget_2012.at(row.family) * row.carry)))
                    : 0;
            const int visible_pct = version == "2012" ? row.pixy_visible_pct_2012
                                                      : row.pixy_visible_pct_2014;
            const FamilyTraits t = traits(row.family);
            for (int ordinal = 0; ordinal < count; ++ordinal) {
                SnippetPlacement placement;
                placement.family = row.family;
                placement.ordinal = ordinal;
                // Carried instances keep their 2012 id (same vulnerability,
                // unfixed); instances introduced in 2014 get fresh ids.
                const bool is_new_in_2014 =
                    version == "2014" && ordinal >= carried_count;
                placement.id = to_string(row.family) + "/" +
                               (is_new_in_2014 ? "n" : "") + std::to_string(ordinal);
                placement.tag =
                    "s" + std::to_string(static_cast<int>(row.family)) + "_" +
                    std::to_string(ordinal);
                placement.carried = version == "2014" && ordinal < carried_count;
                const bool wants_clean = !t.requires_oop_file && count > 0 &&
                                         (ordinal * 100 / count) < visible_pct;
                const bool wants_chain = row.family == Family::kXssDeepInclude;
                planner.place(placement, wants_clean, t.requires_oop_file, wants_chain);
            }
        }

        // Compose files. Filler budget is split evenly over snippets.
        int total_snippets = 0;
        for (const FileSlot& slot : planner.slots())
            total_snippets += static_cast<int>(slot.placements.size()) + 1;
        const int filler_budget = scaled(
            version == "2012" ? options.filler_lines_2012 : options.filler_lines_2014,
            options.scale);
        const int filler_per_snippet =
            total_snippets > 0 ? std::max(4, filler_budget / total_snippets) : 8;

        int filler_counter = static_cast<int>(options.seed % 1000);
        for (FileSlot& slot : planner.slots()) {
            GeneratedPlugin& plugin = corpus.plugins[slot.plugin];
            PluginVersionSource& out = version == "2012" ? plugin.v2012 : plugin.v2014;
            out.version = version;
            int line_count = 0;
            std::string text =
                compose_file(slot, plugin.name, version, filler_per_snippet,
                             filler_counter, &out.truth, &line_count);
            out.files.emplace_back(slot.name, std::move(text));
            out.total_lines += line_count;
        }
    }
    return corpus;
}

namespace {

constexpr int kMonorepoLibs = 6;

std::string monorepo_plugin_name(int index) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "plugin-%03d", index);
    return buf;
}

}  // namespace

MonorepoSource generate_monorepo(const MonorepoOptions& options) {
    MonorepoSource repo;
    const int plugins =
        std::max(1, static_cast<int>(std::lround(32 * options.scale)));
    const int parts = std::max(1, options.files_per_plugin - 1);
    const int orphans =
        std::max(2, static_cast<int>(std::lround(4 * options.scale)));

    auto add_file = [&](std::string name, std::vector<std::string> lines) {
        std::string text;
        for (const std::string& l : lines) {
            text += l;
            text += '\n';
        }
        repo.total_lines += static_cast<int>(lines.size());
        repo.files.emplace_back(std::move(name), std::move(text));
    };

    // Shared framework: libraries + the include hub that loads them all.
    for (int k = 0; k < kMonorepoLibs; ++k) {
        const std::string ks = std::to_string(k);
        add_file("framework/lib-" + ks + ".php",
                 {"<?php",
                  "/* framework library " + ks + " — shared by every plugin */",
                  "function fw_helper_" + ks + "($value) {",
                  "    return htmlspecialchars($value);",
                  "}",
                  "function fw_tag_" + ks + "() { return 'fw-" + ks + "'; }"});
    }
    {
        std::vector<std::string> lines = {
            "<?php", "/* framework loader — the include hub */"};
        for (int k = 0; k < kMonorepoLibs; ++k)
            lines.push_back("require_once 'framework/lib-" +
                            std::to_string(k) + ".php';");
        lines.push_back("function fw_boot() { return fw_tag_0(); }");
        add_file("framework/core.php", std::move(lines));
    }
    repo.truth.hub_files = {"framework/core.php"};
    repo.truth.vendor_dirs = {"framework"};

    // A deliberate include cycle (a → b → c → a).
    {
        const char* names[] = {"a", "b", "c"};
        for (int i = 0; i < 3; ++i) {
            const std::string next = names[(i + 1) % 3];
            add_file(std::string("framework/cycle/") + names[i] + ".php",
                     {"<?php",
                      "require_once 'framework/cycle/" + next + ".php';",
                      "function cycle_" + std::string(names[i]) +
                          "() { return 1; }"});
        }
        repo.truth.include_cycles = {{"framework/cycle/a.php",
                                      "framework/cycle/b.php",
                                      "framework/cycle/c.php"}};
    }

    // Planted orphans: subdirectory files nothing includes and nothing
    // uses (unique function names nothing calls).
    for (int n = 0; n < orphans; ++n) {
        const std::string ns = std::to_string(n);
        const std::string name = "framework/unused/orphan-" + ns + ".php";
        add_file(name, {"<?php",
                        "/* experimental helper, never wired up */",
                        "function orphan_probe_" + ns + "() { return " + ns +
                            "; }"});
        repo.truth.orphan_files.push_back(name);
    }

    // Plugins: main.php requires the framework core and every part by its
    // exact repo path; parts call framework helpers (use edges into the
    // vendor dir). Every fourth plugin hides one seeded vulnerability.
    static constexpr Family kSeededFamilies[] = {
        Family::kXssGetEcho, Family::kXssPostEcho, Family::kXssCookieEcho,
        Family::kSqliWpdbQuery};
    std::string plugin0_main;  // backup-file source, captured below
    std::string plugin0_part;
    int vuln_ordinal = 0;
    for (int p = 0; p < plugins; ++p) {
        const std::string pname = monorepo_plugin_name(p);
        std::vector<std::string> main_lines = {
            "<?php", "/* " + pname + " — entry point */",
            "require_once 'framework/core.php';"};
        for (int k = 0; k < parts; ++k) {
            const std::string ks = std::to_string(k);
            const std::string part_name = pname + "/inc/part-" + ks + ".php";
            main_lines.push_back("require_once '" + part_name + "';");

            const std::string fn =
                "p" + std::to_string(p) + "_part" + ks + "_render";
            std::vector<std::string> part_lines = {
                "<?php",
                "function " + fn + "($value) {",
                "    return fw_helper_" + std::to_string(k % kMonorepoLibs) +
                    "($value);",
                "}"};
            if (p % 4 == 2 && k == 1) {
                const Family family =
                    kSeededFamilies[(p / 4) %
                                    (sizeof kSeededFamilies /
                                     sizeof kSeededFamilies[0])];
                const std::string tag = "m" + std::to_string(p);
                Snippet snippet = emit(
                    family, tag,
                    static_cast<int>(options.seed % 97) + p);
                const int base = static_cast<int>(part_lines.size());
                part_lines.push_back("");
                for (std::string& l : snippet.lines)
                    part_lines.push_back(std::move(l));
                const FamilyTraits t = traits(family);
                for (int offset : snippet.sink_line_offsets) {
                    SeededVuln vuln;
                    vuln.id = pname + "/" + to_string(family) + "/" +
                              std::to_string(vuln_ordinal);
                    vuln.family = family;
                    vuln.kind = t.kind;
                    vuln.file = part_name;
                    vuln.line = base + 1 + offset + 1;  // after the blank
                    vuln.vector = t.vector;
                    vuln.via_oop = t.via_oop;
                    vuln.easy_exploit = t.easy_exploit;
                    repo.seeded_vulns.push_back(std::move(vuln));
                }
                ++vuln_ordinal;
            }
            std::string part_text;
            for (const std::string& l : part_lines) {
                part_text += l;
                part_text += '\n';
            }
            if (p == 0 && k == 0) plugin0_part = part_text;
            repo.total_lines += static_cast<int>(part_lines.size());
            repo.files.emplace_back(part_name, std::move(part_text));
        }
        main_lines.push_back("fw_boot();");
        main_lines.push_back(
            "p" + std::to_string(p) + "_part0_render('ready');");
        std::string main_text;
        for (const std::string& l : main_lines) {
            main_text += l;
            main_text += '\n';
        }
        if (p == 0) plugin0_main = main_text;
        repo.total_lines += static_cast<int>(main_lines.size());
        repo.files.emplace_back(pname + "/main.php", std::move(main_text));
    }

    // Shipped backups: byte copies under leftover names — a real
    // plugin-audit finding (servers execute them).
    auto add_text = [&](std::string name, const std::string& text) {
        repo.total_lines +=
            static_cast<int>(std::count(text.begin(), text.end(), '\n'));
        repo.files.emplace_back(std::move(name), text);
    };
    add_text("plugin-000/main.php.bak", plugin0_main);
    add_text("plugin-000/inc/part-0.php~", plugin0_part);
    repo.truth.backup_files = {"plugin-000/inc/part-0.php~",
                               "plugin-000/main.php.bak"};

    std::sort(repo.files.begin(), repo.files.end());
    std::sort(repo.truth.orphan_files.begin(), repo.truth.orphan_files.end());
    return repo;
}

php::Project build_project(const GeneratedPlugin& plugin,
                           const PluginVersionSource& version,
                           DiagnosticSink& sink) {
    php::Project project(plugin.name + "@" + version.version);
    for (const auto& [name, text] : version.files) project.add_file(name, text);
    project.parse_all(sink);
    return project;
}

}  // namespace phpsafe::corpus
