// Synthetic WordPress-plugin corpus generator — the substitute for the
// paper's evaluation dataset (35 real plugins in 2012 and 2014 snapshots,
// which are neither redistributable nor available offline; see DESIGN.md §2).
//
// The generator is fully deterministic: the same options always produce the
// same corpus, byte for byte. Each plugin exists in two versions modeling
// the paper's two-year evolution: the 2014 version is larger, carries over
// a calibrated share of the 2012 vulnerabilities (§V.D "inertia in fixing
// vulnerabilities"), fixes the rest, and introduces new ones. Every seeded
// defect carries ground-truth metadata (kind, sink file/line, input vector,
// whether the flow passes through OOP constructs, whether it is trivially
// exploitable via GET/POST/COOKIE).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "config/knowledge.h"
#include "corpus/patterns.h"
#include "php/project.h"
#include "util/diagnostics.h"

namespace phpsafe::corpus {

struct SeededVuln {
    std::string id;        ///< stable across versions: "plugin-03/xss_wpdb_rows/7"
    Family family;
    VulnKind kind = VulnKind::kXss;
    std::string file;      ///< project-relative path of the sink
    int line = 0;          ///< 1-based sink line
    InputVector vector = InputVector::kUnknown;
    bool via_oop = false;
    bool easy_exploit = false;  ///< GET/POST/COOKIE manipulation (paper §V.D)
    bool carried_over = false;  ///< (2014 only) already present & disclosed in 2012
};

/// One version (2012 or 2014) of one plugin: file contents + ground truth.
struct PluginVersionSource {
    std::string version;  ///< "2012" or "2014"
    std::vector<std::pair<std::string, std::string>> files;  ///< (name, content)
    std::vector<SeededVuln> truth;
    int total_lines = 0;
};

struct GeneratedPlugin {
    std::string name;      ///< "plugin-07"
    bool oop = false;      ///< plugin uses OOP (19 of 35 in the paper)
    PluginVersionSource v2012;
    PluginVersionSource v2014;
};

struct CorpusOptions {
    int num_plugins = 35;
    int num_oop_plugins = 19;
    /// Scales both vulnerability budgets and filler volume; tests use a
    /// small scale, benches the full corpus.
    double scale = 1.0;
    /// Approximate total benign-filler lines per version at scale 1.0
    /// (paper: 89,560 LOC in 2012, 180,801 in 2014).
    int filler_lines_2012 = 70000;
    int filler_lines_2014 = 150000;
    /// Deterministic seed for cosmetic variation.
    unsigned seed = 2015;
};

struct Corpus {
    CorpusOptions options;
    std::vector<GeneratedPlugin> plugins;

    /// All ground-truth vulnerabilities of one version across plugins.
    std::vector<SeededVuln> all_truth(const std::string& version) const;
    int total_lines(const std::string& version) const;
    int total_files(const std::string& version) const;
};

/// Generates the corpus. Deterministic for fixed options.
Corpus generate_corpus(const CorpusOptions& options = {});

/// Parses one plugin version into an analyzable project.
php::Project build_project(const GeneratedPlugin& plugin,
                           const PluginVersionSource& version,
                           DiagnosticSink& sink);

/// Per-family instance budgets for one version; exposed for tests and for
/// the calibration notes in EXPERIMENTS.md.
std::map<Family, int> family_budget(const std::string& version, double scale);

/// Share of a family's 2012 instances that survive (unfixed) into 2014.
double carry_ratio(Family family);

// ---------------------------------------------------------------------------
// Vendored-monorepo corpus — the shape the graph subsystem and watch mode
// are benchmarked against (docs/graph.md): many small plugins sharing one
// framework directory, plus the structural defects a plugin review should
// surface (orphans, an include cycle, shipped backup files).
// ---------------------------------------------------------------------------

struct MonorepoOptions {
    /// Scales the plugin count: plugins = round(32 * scale), so scale 8
    /// crosses 10k files at the default files_per_plugin.
    double scale = 1.0;
    /// Files per plugin: one main.php plus (files_per_plugin - 1) include
    /// parts, every part included from main by its exact repo path.
    int files_per_plugin = 40;
    /// Deterministic seed for cosmetic variation.
    unsigned seed = 2015;
};

/// Structural ground truth of the generated tree, in the vocabulary of
/// graph::ProjectGraph::Analytics. All lists are name-sorted.
struct MonorepoTruth {
    std::vector<std::string> orphan_files;   ///< nothing includes or uses
    std::vector<std::string> backup_files;   ///< *.bak / *~ leftovers
    std::vector<std::vector<std::string>> include_cycles;
    std::vector<std::string> vendor_dirs;    ///< shared framework dirs
    std::vector<std::string> hub_files;      ///< top include fan-in
};

struct MonorepoSource {
    std::vector<std::pair<std::string, std::string>> files;  ///< name-sorted
    MonorepoTruth truth;
    std::vector<SeededVuln> seeded_vulns;  ///< planted findings (file/line)
    int total_lines = 0;
};

/// Generates the monorepo. Deterministic for fixed options: same options,
/// byte-identical tree. Layout:
///   framework/core.php           include hub, required by every plugin
///   framework/lib-K.php          shared helpers, required by core
///   framework/cycle/{a,b,c}.php  a deliberate include cycle
///   framework/unused/orphan-N.php  planted orphans
///   plugin-NNN/main.php          requires core + every part (exact paths)
///   plugin-NNN/inc/part-K.php    helpers calling framework functions;
///                                every fourth plugin hides one seeded vuln
///   plugin-000/main.php.bak, plugin-000/inc/part-0.php~  shipped backups
MonorepoSource generate_monorepo(const MonorepoOptions& options = {});

}  // namespace phpsafe::corpus
