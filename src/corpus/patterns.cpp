#include "corpus/patterns.h"

namespace phpsafe::corpus {

namespace {

const char* kFieldNames[] = {"msg",   "title", "name",  "email", "url",
                             "color", "label", "note",  "text",  "slug",
                             "page",  "tab",   "theme", "lang",  "img_path"};
const char* kTableNames[] = {"sml", "posts_ext", "events", "subscribers",
                             "albums", "forms", "stats", "votes"};
const char* kHtmlWraps[] = {"div", "span", "li", "p", "td", "h2", "strong"};

std::string field(int variant) {
    return kFieldNames[variant % (sizeof(kFieldNames) / sizeof(kFieldNames[0]))];
}
std::string table(int variant) {
    return kTableNames[variant % (sizeof(kTableNames) / sizeof(kTableNames[0]))];
}
std::string wrap(int variant) {
    return kHtmlWraps[variant % (sizeof(kHtmlWraps) / sizeof(kHtmlWraps[0]))];
}

/// Emits one of several structural shapes of the same superglobal→echo
/// flow, so corpus instances are not stylistic clones: direct echo of a
/// concatenation, interpolation into a double-quoted string, a chained
/// intermediate variable, or echo through a propagation built-in.
Snippet superglobal_echo(const std::string& sg, const std::string& tag, int variant) {
    Snippet s;
    const std::string f = field(variant);
    const std::string var = "$" + f + "_" + tag;
    const std::string w = wrap(variant);
    switch (variant % 4) {
        case 0:
            s.lines.push_back(var + " = " + sg + "['" + f + "'];");
            s.lines.push_back("echo '<" + w + " class=\"" + f + "\">' . " + var +
                              " . '</" + w + ">';");
            s.sink_line_offsets.push_back(1);
            break;
        case 1:
            s.lines.push_back(var + " = " + sg + "['" + f + "'];");
            s.lines.push_back("echo \"<" + w + ">{" + var + "}</" + w + ">\";");
            s.sink_line_offsets.push_back(1);
            break;
        case 2:
            s.lines.push_back(var + " = " + sg + "['" + f + "'];");
            s.lines.push_back("$out_" + tag + " = '<" + w + ">';");
            s.lines.push_back("$out_" + tag + " .= " + var + ";");
            s.lines.push_back("$out_" + tag + " .= '</" + w + ">';");
            s.lines.push_back("echo $out_" + tag + ";");
            s.sink_line_offsets.push_back(4);
            break;
        default:
            s.lines.push_back(var + " = trim(" + sg + "['" + f + "']);");
            s.lines.push_back("echo '<" + w + ">' . strtoupper(" + var + ") . '</" +
                              w + ">';");
            s.sink_line_offsets.push_back(1);
            break;
    }
    return s;
}

}  // namespace

std::string to_string(Family family) {
    switch (family) {
        case Family::kXssGetEcho: return "xss_get_echo";
        case Family::kXssPostEcho: return "xss_post_echo";
        case Family::kXssCookieEcho: return "xss_cookie_echo";
        case Family::kXssRequestPrint: return "xss_request_print";
        case Family::kXssGetViaFunction: return "xss_get_via_function";
        case Family::kXssDbProcedural: return "xss_db_procedural";
        case Family::kXssFileSource: return "xss_file_source";
        case Family::kXssUncalledFn: return "xss_uncalled_fn";
        case Family::kXssDeepInclude: return "xss_deep_include";
        case Family::kXssPrintfGet: return "xss_printf_get";
        case Family::kXssPregMatchFlow: return "xss_preg_match_flow";
        case Family::kXssExitMessage: return "xss_exit_message";
        case Family::kXssWpdbRows: return "xss_wpdb_rows";
        case Family::kXssWpdbVar: return "xss_wpdb_var";
        case Family::kXssWpdbRevert: return "xss_wpdb_revert";
        case Family::kXssOopProperty: return "xss_oop_property";
        case Family::kXssWpOption: return "xss_wp_option";
        case Family::kXssWpPostmeta: return "xss_wp_postmeta";
        case Family::kSqliWpdbQuery: return "sqli_wpdb_query";
        case Family::kSqliWpdbGetResults: return "sqli_wpdb_get_results";
        case Family::kSqliMysqliOop: return "sqli_mysqli_oop";
        case Family::kXssRegisterGlobals: return "xss_register_globals";
        case Family::kXssWrongContextSanitizer: return "xss_wrong_context_sanitizer";
        case Family::kSafeSanitizedEcho: return "safe_sanitized_echo";
        case Family::kSafeEscHtml: return "safe_esc_html";
        case Family::kSafeGuardExit: return "safe_guard_exit";
        case Family::kSafeWhitelistTernary: return "safe_whitelist_ternary";
        case Family::kSafeIssetEcho: return "safe_isset_echo";
        case Family::kSafeIntval: return "safe_intval";
        case Family::kSafePrepare: return "safe_prepare";
        case Family::kSafeSprintfD: return "safe_sprintf_d";
        case Family::kSafeJsonEncode: return "safe_json_encode";
        case Family::kSafeCast: return "safe_cast";
        case Family::kSafeSqliGuard: return "safe_sqli_guard";
    }
    return "?";
}

FamilyTraits traits(Family family) {
    FamilyTraits t;
    switch (family) {
        case Family::kXssGetEcho:
        case Family::kXssGetViaFunction:
            t = {true, VulnKind::kXss, InputVector::kGet, false, false, true};
            break;
        case Family::kXssDeepInclude:
            // Stored-XSS in the oversized legacy files phpSAFE cannot finish
            // (paper §V.A: RIPS detected vulnerabilities "in some files of
            // the 2014 versions that phpSAFE was unable to parse").
            t = {true, VulnKind::kXss, InputVector::kDatabase, false, false, false};
            break;
        case Family::kXssPostEcho:
            t = {true, VulnKind::kXss, InputVector::kPost, false, false, true};
            break;
        case Family::kXssPrintfGet:
        case Family::kXssPregMatchFlow:
        case Family::kXssExitMessage:
            t = {true, VulnKind::kXss, InputVector::kGet, false, false, true};
            break;
        case Family::kXssCookieEcho:
            t = {true, VulnKind::kXss, InputVector::kCookie, false, false, true};
            break;
        case Family::kXssRequestPrint:
            t = {true, VulnKind::kXss, InputVector::kRequest, false, false, true};
            break;
        case Family::kXssDbProcedural:
            t = {true, VulnKind::kXss, InputVector::kDatabase, false, false, false};
            break;
        case Family::kXssFileSource:
            t = {true, VulnKind::kXss, InputVector::kFile, false, false, false};
            break;
        case Family::kXssUncalledFn:
            t = {true, VulnKind::kXss, InputVector::kGet, false, false, true};
            break;
        case Family::kXssWpdbRows:
        case Family::kXssWpdbVar:
        case Family::kXssWpdbRevert:
            t = {true, VulnKind::kXss, InputVector::kDatabase, true, true, false};
            break;
        case Family::kXssOopProperty:
            t = {true, VulnKind::kXss, InputVector::kPost, true, true, true};
            break;
        case Family::kXssWpOption:
        case Family::kXssWpPostmeta:
            t = {true, VulnKind::kXss, InputVector::kDatabase, false, false, false};
            break;
        case Family::kSqliWpdbQuery:
            t = {true, VulnKind::kSqli, InputVector::kGet, true, true, true};
            break;
        case Family::kSqliWpdbGetResults:
        case Family::kSqliMysqliOop:
            t = {true, VulnKind::kSqli, InputVector::kPost, true, true, true};
            break;
        case Family::kXssRegisterGlobals:
            t = {true, VulnKind::kXss, InputVector::kGet, false, false, true};
            break;
        case Family::kXssWrongContextSanitizer:
            t = {true, VulnKind::kXss, InputVector::kGet, false, false, true};
            break;
        case Family::kSafePrepare:
        case Family::kSafeSqliGuard:
            t = {false, VulnKind::kSqli, InputVector::kUnknown, true, true, false};
            break;
        case Family::kSafeSanitizedEcho:
        case Family::kSafeEscHtml:
        case Family::kSafeGuardExit:
        case Family::kSafeWhitelistTernary:
        case Family::kSafeIssetEcho:
        case Family::kSafeIntval:
        case Family::kSafeSprintfD:
        case Family::kSafeJsonEncode:
        case Family::kSafeCast:
            t = {false, VulnKind::kXss, InputVector::kUnknown, false, false, false};
            break;
    }
    return t;
}

Snippet emit(Family family, const std::string& tag, int variant) {
    Snippet s;
    const std::string f = field(variant);
    const std::string var = "$" + f + "_" + tag;
    const std::string w = wrap(variant);
    const std::string tbl = table(variant);

    switch (family) {
        case Family::kXssGetEcho:
            return superglobal_echo("$_GET", tag, variant);
        case Family::kXssDeepInclude: {
            s.lines.push_back("$res_" + tag + " = mysql_query(\"SELECT * FROM " +
                              tbl + "_legacy\");");
            s.lines.push_back("$row_" + tag + " = mysql_fetch_assoc($res_" + tag +
                              ");");
            s.lines.push_back("echo '<" + w + ">' . $row_" + tag + "['" + f +
                              "'] . '</" + w + ">';");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kXssPostEcho: {
            // Modeled on the paper's wp-symposium example:
            // 'Created '.$_POST['img_path'].'.'
            s.lines.push_back(var + " = $_POST['" + f + "'];");
            s.lines.push_back("echo 'Created ' . " + var + " . '.';");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kXssCookieEcho:
            return superglobal_echo("$_COOKIE", tag, variant);
        case Family::kXssRequestPrint: {
            s.lines.push_back(var + " = $_REQUEST['" + f + "'];");
            s.lines.push_back("print '<" + w + ">' . " + var + " . '</" + w + ">';");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kXssGetViaFunction: {
            const std::string fn = "render_" + f + "_" + tag;
            s.lines.push_back("function " + fn + "($value) {");
            s.lines.push_back("    echo '<" + w + ">' . $value . '</" + w + ">';");
            s.lines.push_back("}");
            s.lines.push_back(var + " = $_GET['" + f + "'];");
            s.lines.push_back(fn + "(" + var + ");");
            s.sink_line_offsets.push_back(1);
            s.declared_functions.push_back(fn);
            return s;
        }
        case Family::kXssDbProcedural: {
            s.lines.push_back("$res_" + tag + " = mysql_query(\"SELECT * FROM " + tbl +
                              "\");");
            s.lines.push_back("while ($row_" + tag + " = mysql_fetch_assoc($res_" +
                              tag + ")) {");
            s.lines.push_back("    echo '<tr><td>' . $row_" + tag + "['" + f +
                              "'] . '</td></tr>';");
            s.lines.push_back("}");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kXssFileSource: {
            // Modeled on the paper's qtranslate example: fgets → echo.
            s.lines.push_back("$fp_" + tag + " = fopen(dirname(__FILE__) . '/" + f +
                              ".txt', 'r');");
            s.lines.push_back("$res_" + tag + " = fgets($fp_" + tag + ", 128);");
            s.lines.push_back("echo $res_" + tag + ";");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kXssUncalledFn: {
            // Hook target never invoked from plugin code; the CMS calls it.
            const std::string fn = "ajax_" + f + "_" + tag;
            s.lines.push_back("function " + fn + "() {");
            s.lines.push_back("    $q = $_GET['" + f + "'];");
            s.lines.push_back("    echo '<" + w + ">' . $q . '</" + w + ">';");
            s.lines.push_back("}");
            s.sink_line_offsets.push_back(2);
            s.declared_functions.push_back(fn);
            return s;
        }
        case Family::kXssWpdbRows: {
            // The paper's mail-subscribe-list 2.1.1 example.
            s.lines.push_back("global $wpdb;");
            s.lines.push_back("$rows_" + tag +
                              " = $wpdb->get_results(\"SELECT * FROM \" . "
                              "$wpdb->prefix . \"" + tbl + "\");");
            s.lines.push_back("foreach ($rows_" + tag + " as $row_" + tag + ") {");
            s.lines.push_back("    echo '<li>' . $row_" + tag + "->" + f +
                              " . '</li>';");
            s.lines.push_back("}");
            s.sink_line_offsets.push_back(3);
            return s;
        }
        case Family::kXssWpdbVar: {
            s.lines.push_back("global $wpdb;");
            s.lines.push_back(var + " = $wpdb->get_var(\"SELECT " + f + " FROM \" . "
                              "$wpdb->prefix . \"" + tbl + "\" . \" LIMIT 1\");");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kXssWpdbRevert: {
            // The paper's wp-photo-album-plus example: the value is read via
            // a prepared statement but the output is stripslashes()ed raw.
            s.lines.push_back("global $wpdb;");
            s.lines.push_back("$image_" + tag +
                              " = $wpdb->get_var($wpdb->prepare(\"SELECT %s FROM " +
                              tbl + "\", '" + f + "'));");
            s.lines.push_back("echo stripslashes($image_" + tag + ");");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kXssOopProperty: {
            const std::string cls = "Widget_" + tag;
            s.lines.push_back("class " + cls + " {");
            s.lines.push_back("    public $content = '';");
            s.lines.push_back("    public function collect() {");
            s.lines.push_back("        $this->content = $_POST['" + f + "'];");
            s.lines.push_back("    }");
            s.lines.push_back("    public function render() {");
            s.lines.push_back("        echo '<" + w + ">' . $this->content . '</" + w +
                              ">';");
            s.lines.push_back("    }");
            s.lines.push_back("}");
            s.lines.push_back("$widget_" + tag + " = new " + cls + "();");
            s.lines.push_back("$widget_" + tag + "->collect();");
            s.lines.push_back("$widget_" + tag + "->render();");
            s.sink_line_offsets.push_back(6);
            return s;
        }
        case Family::kXssWpOption: {
            s.lines.push_back(var + " = get_option('" + tag + "_" + f + "');");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kXssWpPostmeta: {
            s.lines.push_back(var + " = get_post_meta(get_the_ID(), '" + f +
                              "', true);");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kSqliWpdbQuery: {
            s.lines.push_back("global $wpdb;");
            s.lines.push_back("$id_" + tag + " = $_GET['id'];");
            s.lines.push_back("$wpdb->query(\"DELETE FROM \" . $wpdb->prefix . \"" +
                              tbl + "\" . \" WHERE id = $id_" + tag + "\");");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kSqliWpdbGetResults: {
            s.lines.push_back("global $wpdb;");
            s.lines.push_back(var + " = $_POST['" + f + "'];");
            s.lines.push_back("$found_" + tag +
                              " = $wpdb->get_results(\"SELECT * FROM " + tbl +
                              " WHERE " + f + " = '\" . " + var + " . \"'\");");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kXssRegisterGlobals: {
            // Real under register_globals=1 (Pixy's era); the variable is
            // never assigned, so it can be injected via the request.
            s.lines.push_back("if (!empty($" + f + "_rg_" + tag + ")) {");
            s.lines.push_back("    echo '<link href=\"' . $" + f + "_rg_" + tag +
                              " . '\" rel=\"stylesheet\">';");
            s.lines.push_back("}");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kXssWrongContextSanitizer: {
            // esc_attr() does not neutralize javascript: URLs in href
            // context — a real vulnerability that a tool trusting the
            // sanitizer misses (the paper's "blended attack" discussion).
            s.lines.push_back(var + " = esc_attr($_GET['" + f + "']);");
            s.lines.push_back("echo '<a href=\"' . " + var + " . '\">" + f +
                              "</a>';");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kXssPrintfGet: {
            s.lines.push_back(var + " = $_GET['" + f + "'];");
            s.lines.push_back("printf('<" + w + ">%s</" + w + ">', " + var + ");");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kXssPregMatchFlow: {
            s.lines.push_back(var + " = $_GET['" + f + "'];");
            s.lines.push_back("preg_match('/^(.*)$/', " + var + ", $m_" + tag + ");");
            s.lines.push_back("echo '<" + w + ">' . $m_" + tag + "[1] . '</" + w +
                              ">';");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kXssExitMessage: {
            s.lines.push_back("if (!file_exists(dirname(__FILE__) . '/" + f +
                              ".lock')) {");
            s.lines.push_back("    die('Missing resource: ' . $_GET['" + f +
                              "']);");
            s.lines.push_back("}");
            s.sink_line_offsets.push_back(1);
            return s;
        }
        case Family::kSqliMysqliOop: {
            s.lines.push_back("$db_" + tag +
                              " = new mysqli('localhost', 'u', 'p', 'wp');");
            s.lines.push_back(var + " = $_POST['" + f + "'];");
            s.lines.push_back("$db_" + tag + "->query(\"SELECT * FROM " + tbl +
                              " WHERE " + f + " = '\" . " + var + " . \"'\");");
            s.sink_line_offsets.push_back(2);
            return s;
        }
        case Family::kSafeJsonEncode: {
            s.lines.push_back(var + " = json_encode($_GET['" + f + "']);");
            s.lines.push_back("echo '<script>var cfg = ' . " + var +
                              " . ';</script>';");
            return s;
        }
        case Family::kSafeSanitizedEcho: {
            s.lines.push_back(var + " = htmlspecialchars($_GET['" + f + "']);");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            return s;
        }
        case Family::kSafeEscHtml: {
            s.lines.push_back(var + " = esc_html($_GET['" + f + "']);");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            return s;
        }
        case Family::kSafeGuardExit: {
            s.lines.push_back(var + " = $_GET['" + f + "'];");
            s.lines.push_back("if (!is_numeric(" + var + ")) { exit; }");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            return s;
        }
        case Family::kSafeWhitelistTernary: {
            s.lines.push_back(var + " = in_array($_GET['" + f +
                              "'], array('one', 'two')) ? $_GET['" + f +
                              "'] : 'one';");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            return s;
        }
        case Family::kSafeIssetEcho: {
            s.lines.push_back("if (isset($" + f + "_opt_" + tag + ")) { echo $" + f +
                              "_opt_" + tag + "; }");
            return s;
        }
        case Family::kSafeIntval: {
            s.lines.push_back("echo '<" + w + ">' . intval($_GET['" + f +
                              "']) . '</" + w + ">';");
            return s;
        }
        case Family::kSafePrepare: {
            s.lines.push_back("global $wpdb;");
            s.lines.push_back(var + " = $_POST['" + f + "'];");
            s.lines.push_back("$wpdb->query($wpdb->prepare(\"UPDATE " + tbl +
                              " SET " + f + " = %s\", " + var + "));");
            return s;
        }
        case Family::kSafeSprintfD: {
            s.lines.push_back("echo sprintf('%d of %d', $_GET['" + f +
                              "'], 10);");
            return s;
        }
        case Family::kSafeCast: {
            s.lines.push_back(var + " = (int) $_GET['" + f + "'];");
            s.lines.push_back("echo '<" + w + ">' . " + var + " . '</" + w + ">';");
            return s;
        }
        case Family::kSafeSqliGuard: {
            s.lines.push_back("global $wpdb;");
            s.lines.push_back("$id_" + tag + " = $_POST['id'];");
            s.lines.push_back("if (!ctype_digit($id_" + tag + ")) { die('bad id'); }");
            s.lines.push_back("$wpdb->query(\"DELETE FROM \" . $wpdb->prefix . \"" +
                              tbl + "\" . \" WHERE id = $id_" + tag + "\");");
            return s;
        }
    }
    return s;
}

Snippet emit_filler(const std::string& tag, int variant, int weight) {
    Snippet s;
    const std::string f = field(variant);
    int emitted = 0;
    int block = 0;
    while (emitted < weight) {
        const std::string id = tag + "_f" + std::to_string(block);
        switch ((variant + block) % 4) {
            case 0: {
                s.lines.push_back("function default_settings_" + id + "() {");
                s.lines.push_back("    return array(");
                s.lines.push_back("        '" + f + "_limit' => 10,");
                s.lines.push_back("        '" + f + "_order' => 'ASC',");
                s.lines.push_back("        '" + f + "_cache' => true,");
                s.lines.push_back("    );");
                s.lines.push_back("}");
                s.declared_functions.push_back("default_settings_" + id);
                emitted += 7;
                break;
            }
            case 1: {
                s.lines.push_back("function format_count_" + id + "($count) {");
                s.lines.push_back("    $count = (int) $count;");
                s.lines.push_back("    if ($count < 0) { $count = 0; }");
                s.lines.push_back("    return number_format($count);");
                s.lines.push_back("}");
                s.declared_functions.push_back("format_count_" + id);
                emitted += 5;
                break;
            }
            case 2: {
                s.lines.push_back("$labels_" + id + " = array('one' => 'One', "
                                  "'two' => 'Two', 'three' => 'Three');");
                s.lines.push_back("foreach ($labels_" + id + " as $key_" + id +
                                  " => $val_" + id + ") {");
                s.lines.push_back("    echo '<option value=\"' . $key_" + id +
                                  " . '\">' . $val_" + id + " . '</option>';");
                s.lines.push_back("}");
                emitted += 4;
                break;
            }
            default: {
                s.lines.push_back("// Template for the " + f + " section.");
                s.lines.push_back("function header_markup_" + id + "() {");
                s.lines.push_back("    return '<div class=\"wrap " + f +
                                  "\"><h1>Settings</h1></div>';");
                s.lines.push_back("}");
                s.declared_functions.push_back("header_markup_" + id);
                emitted += 4;
                break;
            }
        }
        ++block;
    }
    return s;
}

}  // namespace phpsafe::corpus
