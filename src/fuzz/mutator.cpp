#include "fuzz/mutator.h"

#include <algorithm>
#include <cctype>

namespace phpsafe::fuzz {

namespace {

/// XSS sanitizers spliced around superglobal reads. Every entry must be a
/// sanitizer in the *generic* knowledge base (so preset monotonicity still
/// holds) AND implemented concretely by dynamic::Interpreter (so the
/// agreement oracle sees the same semantics the static engine assumes).
const std::vector<std::string>& splice_sanitizers() {
    static const std::vector<std::string> fns = {
        "htmlspecialchars", "htmlentities", "strip_tags", "intval"};
    return fns;
}

std::string replace_all(std::string text, const std::string& from,
                        const std::string& to) {
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

/// Joins snippet lines into a PHP file. Line 1 is the open tag, so snippet
/// line `offset` (0-based) lands on file line `offset + 2`.
std::string assemble(const std::vector<std::string>& lines) {
    std::string text = "<?php\n";
    for (const std::string& line : lines) {
        text += line;
        text += '\n';
    }
    return text;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= text.size()) {
        const size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            if (start < text.size()) lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
    std::string text;
    for (const std::string& line : lines) {
        text += line;
        text += '\n';
    }
    return text;
}

bool declares_function(const std::string& text) {
    return text.find("function ") != std::string::npos;
}

}  // namespace

int FuzzCase::total_lines() const {
    int n = 0;
    for (const FuzzFile& f : files)
        n += static_cast<int>(split_lines(f.text).size());
    return n;
}

const std::vector<corpus::Family>& Mutator::agreement_families() {
    using corpus::Family;
    // Constructs both executions model concretely: superglobal reads,
    // echo/print, user-function calls, the generic sanitizer/guard idioms.
    // DB/file-source and WP-profile families are excluded — their dynamic
    // seeding depends on stub conventions, not on the flow under test.
    static const std::vector<Family> families = {
        Family::kXssGetEcho,          Family::kXssPostEcho,
        Family::kXssCookieEcho,       Family::kXssRequestPrint,
        Family::kXssGetViaFunction,   Family::kSafeSanitizedEcho,
        Family::kSafeGuardExit,       Family::kSafeWhitelistTernary,
        Family::kSafeIntval,          Family::kSafeCast,
    };
    return families;
}

const std::vector<corpus::Family>& Mutator::monotonic_families() {
    using corpus::Family;
    // Procedural generic PHP only: no WordPress functions (unknown to the
    // rips preset, which would over-report), no OOP, no deep includes.
    static const std::vector<Family> families = {
        Family::kXssGetEcho,          Family::kXssPostEcho,
        Family::kXssCookieEcho,       Family::kXssRequestPrint,
        Family::kXssGetViaFunction,   Family::kXssDbProcedural,
        Family::kXssFileSource,       Family::kXssUncalledFn,
        Family::kXssPrintfGet,        Family::kXssPregMatchFlow,
        Family::kXssExitMessage,      Family::kSafeSanitizedEcho,
        Family::kSafeGuardExit,       Family::kSafeWhitelistTernary,
        Family::kSafeIntval,          Family::kSafeCast,
        Family::kSafeSprintfD,
    };
    return families;
}

FuzzCase Mutator::seed_case() {
    FuzzCase c;
    c.name = "seed";
    c.files.push_back({"main.php",
                       "<?php\n$q_seed = $_GET['q'];\n"
                       "echo '<b>' . $q_seed . '</b>';\n"});
    c.sinks.push_back({"main.php", 3, VulnKind::kXss, InputVector::kGet});
    c.agreement_eligible = true;
    c.monotonic_eligible = true;
    return c;
}

FuzzCase Mutator::structure_case_for(corpus::Family family, int index,
                                     int variant) {
    const std::string tag = "fz" + std::to_string(index);
    const corpus::Snippet snippet = corpus::emit(family, tag, variant);
    const corpus::FamilyTraits t = corpus::traits(family);

    FuzzCase c;
    c.name = "case-" + std::to_string(index);
    c.files.push_back({"main.php", assemble(snippet.lines)});
    for (const int offset : snippet.sink_line_offsets)
        c.sinks.push_back({"main.php", offset + 2, t.kind, t.vector});
    const auto& agree = agreement_families();
    c.agreement_eligible =
        std::find(agree.begin(), agree.end(), family) != agree.end();
    const auto& mono = monotonic_families();
    c.monotonic_eligible =
        std::find(mono.begin(), mono.end(), family) != mono.end();
    return c;
}

FuzzCase Mutator::structure_case(int index) {
    const int variant = static_cast<int>(rng_.below(4));
    FuzzCase c;
    if (rng_.chance(30)) {
        // Multi-snippet procedural file: monotonicity/no-crash/determinism
        // material. Several sinks per file make per-sink dynamic validation
        // ambiguous (any echoed payload confirms every candidate), so
        // agreement is off.
        const std::string tag = "fz" + std::to_string(index);
        std::vector<std::string> lines;
        bool has_decls = false;
        const size_t count = 2 + rng_.below(2);
        c.name = "case-" + std::to_string(index);
        for (size_t i = 0; i < count; ++i) {
            const corpus::Family family = rng_.pick(monotonic_families());
            const corpus::Snippet snippet =
                corpus::emit(family, tag + "_" + std::to_string(i),
                             static_cast<int>(rng_.below(4)));
            const corpus::FamilyTraits t = corpus::traits(family);
            for (const int offset : snippet.sink_line_offsets)
                c.sinks.push_back({"main.php",
                                   static_cast<int>(lines.size()) + offset + 2,
                                   t.kind, t.vector});
            lines.insert(lines.end(), snippet.lines.begin(),
                         snippet.lines.end());
            has_decls = has_decls || !snippet.declared_functions.empty();
        }
        c.files.push_back({"main.php", assemble(lines)});
        c.monotonic_eligible = true;
        (void)has_decls;
    } else {
        c = structure_case_for(rng_.pick(agreement_families()), index, variant);
        c.name = "case-" + std::to_string(index);
    }
    apply_structure_mutations(c);
    return c;
}

void Mutator::apply_structure_mutations(FuzzCase& c) {
    if (rng_.chance(25)) splice_sanitizer(c);
    if (rng_.chance(30))
        rename_tag(c, "fz", "zz" + std::to_string(tag_counter_++) + "t");
    const bool has_decls = declares_function(c.files.front().text);
    switch (rng_.below(5)) {
        case 0:
            if (!has_decls) wrap_in_function(c);
            break;
        case 1:
            if (!has_decls) wrap_in_method(c);
            break;
        case 2:
            if (!has_decls) wrap_in_closure(c);
            break;
        default: break;  // no wrap
    }
    if (c.files.size() == 1 && rng_.chance(20)) split_include(c);
    if (c.files.size() > 1 && rng_.chance(50))
        std::swap(c.files.front(), c.files.back());
}

void Mutator::splice_sanitizer(FuzzCase& c) {
    FuzzFile& file = c.files[rng_.below(c.files.size())];
    std::string& text = file.text;
    // Collect every superglobal element read: "$_NAME['key']".
    std::vector<std::pair<size_t, size_t>> reads;  // [begin, end)
    for (size_t p = text.find("$_"); p != std::string::npos;
         p = text.find("$_", p + 1)) {
        size_t q = p + 2;
        while (q < text.size() &&
               (std::isupper(static_cast<unsigned char>(text[q])) ||
                text[q] == '_'))
            ++q;
        if (q >= text.size() || text[q] != '[' || q == p + 2) continue;
        const size_t close = text.find(']', q);
        if (close == std::string::npos || text.find('\n', q) < close) continue;
        reads.emplace_back(p, close + 1);
    }
    if (reads.empty()) return;
    const auto [begin, end] = reads[rng_.below(reads.size())];
    const std::string& fn = rng_.pick(splice_sanitizers());
    // Single-line rewrite, so no sink line shifts.
    text = text.substr(0, begin) + fn + "(" + text.substr(begin, end - begin) +
           ")" + text.substr(end);
}

void Mutator::rename_tag(FuzzCase& c, const std::string& from,
                         const std::string& to) {
    for (FuzzFile& file : c.files) file.text = replace_all(file.text, from, to);
}

void Mutator::wrap_in_function(FuzzCase& c) {
    FuzzFile& file = c.files.front();
    std::vector<std::string> lines = split_lines(file.text);
    if (lines.empty() || lines.front() != "<?php") return;
    const std::string fn = "fuzz_entry_" + std::to_string(tag_counter_++);
    std::vector<std::string> wrapped = {"<?php", "function " + fn + "() {"};
    for (size_t i = 1; i < lines.size(); ++i)
        wrapped.push_back("    " + lines[i]);
    wrapped.push_back("}");
    wrapped.push_back(fn + "();");
    file.text = join_lines(wrapped);
    for (SinkSite& site : c.sinks)
        if (site.file == file.name) site.line += 1;
}

void Mutator::wrap_in_method(FuzzCase& c) {
    FuzzFile& file = c.files.front();
    std::vector<std::string> lines = split_lines(file.text);
    if (lines.empty() || lines.front() != "<?php") return;
    const std::string cls = "FuzzCase" + std::to_string(tag_counter_++);
    std::vector<std::string> wrapped = {"<?php", "class " + cls + " {",
                                        "    public function run() {"};
    for (size_t i = 1; i < lines.size(); ++i)
        wrapped.push_back("        " + lines[i]);
    wrapped.push_back("    }");
    wrapped.push_back("}");
    wrapped.push_back("$case = new " + cls + "();");
    wrapped.push_back("$case->run();");
    file.text = join_lines(wrapped);
    for (SinkSite& site : c.sinks)
        if (site.file == file.name) site.line += 2;
    // The rips preset has no OOP member resolution; the subset relation no
    // longer holds by construction.
    c.monotonic_eligible = false;
}

void Mutator::wrap_in_closure(FuzzCase& c) {
    FuzzFile& file = c.files.front();
    std::vector<std::string> lines = split_lines(file.text);
    if (lines.empty() || lines.front() != "<?php") return;
    const std::string var = "$fuzz_cl_" + std::to_string(tag_counter_++);
    std::vector<std::string> wrapped = {"<?php", var + " = function () {"};
    for (size_t i = 1; i < lines.size(); ++i)
        wrapped.push_back("    " + lines[i]);
    wrapped.push_back("};");
    wrapped.push_back(var + "();");
    file.text = join_lines(wrapped);
    for (SinkSite& site : c.sinks)
        if (site.file == file.name) site.line += 1;
    // Calls through closure-valued variables are opaque to the static
    // engine and the presets differ on closure bodies: only the no-crash
    // and determinism oracles stay sound.
    c.agreement_eligible = false;
    c.monotonic_eligible = false;
}

void Mutator::split_include(FuzzCase& c) {
    const std::string inc = "inc_" + std::to_string(tag_counter_++) + ".php";
    FuzzFile body = c.files.front();
    const std::string main_name = body.name;
    body.name = inc;
    FuzzFile main{main_name, "<?php\ninclude '" + inc + "';\n"};
    c.files.clear();
    c.files.push_back(main);
    c.files.push_back(body);
    // The moved file keeps its line numbers; candidate sinks now live (and
    // are validated) in the include target, which stays self-contained.
    for (SinkSite& site : c.sinks)
        if (site.file == main_name) site.file = inc;
}

FuzzCase Mutator::byte_case(const FuzzCase& base, int index) {
    static const std::vector<std::string> dictionary = {
        "<?php", "?>",   "'",         "\"",       "<<<EOT", "EOT;",
        "/*",    "*/",   "${",        "}",        "((((",   "))))",
        "\\",    "echo", "$_GET['x']", "function", "include 'main.php';",
        std::string(1, '\0'), "\xff", "\xc3\xa9"};

    FuzzCase c;
    c.name = "byte-" + std::to_string(index);
    c.files = base.files;
    c.byte_level = true;

    std::string& text = c.files[rng_.below(c.files.size())].text;
    const size_t ops = 1 + rng_.below(8);
    for (size_t i = 0; i < ops && !text.empty(); ++i) {
        const size_t pos = rng_.below(text.size());
        switch (rng_.below(6)) {
            case 0:  // flip one bit
                text[pos] = static_cast<char>(
                    static_cast<unsigned char>(text[pos]) ^
                    (1u << rng_.below(8)));
                break;
            case 1:  // insert a random byte
                text.insert(pos, 1, static_cast<char>(rng_.below(256)));
                break;
            case 2: {  // delete a short span
                const size_t len =
                    std::min<size_t>(1 + rng_.below(16), text.size() - pos);
                text.erase(pos, len);
                break;
            }
            case 3: {  // duplicate a short span
                const size_t len =
                    std::min<size_t>(1 + rng_.below(16), text.size() - pos);
                text.insert(pos, text.substr(pos, len));
                break;
            }
            case 4:  // truncate
                text.erase(pos);
                break;
            default:  // splice a dictionary token
                text.insert(pos, rng_.pick(dictionary));
                break;
        }
    }
    if (text.empty()) text = "<?";
    return c;
}

}  // namespace phpsafe::fuzz
