// Delta-debugging reducer: shrinks a violating case to a minimal repro
// before it is written to the regression corpus. Line-granularity ddmin
// per file (plus whole-file drops for multi-file cases), re-running the
// violated oracle after each removal; candidate sink lines are tracked
// through removals so the agreement oracle keeps validating the same sink.
#pragma once

#include "fuzz/mutator.h"
#include "fuzz/oracles.h"

namespace phpsafe::fuzz {

/// Returns the smallest case found (in lines) that still violates
/// `oracle` under `runner`. `max_checks` bounds the number of oracle
/// re-runs; the input is returned unchanged if it does not violate.
FuzzCase reduce_case(const FuzzCase& failing, Oracle oracle,
                     OracleRunner& runner, int max_checks = 400);

}  // namespace phpsafe::fuzz
