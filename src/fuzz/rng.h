// Deterministic PRNG for the fuzzer. SplitMix64: tiny, fast, and — unlike
// std::mt19937 + std::uniform_int_distribution — identical on every
// platform and standard library, which the reproducibility guarantee
// (same seed → same mutation sequence → same case_trace_hash) depends on.
#pragma once

#include <cstdint>
#include <vector>

namespace phpsafe::fuzz {

class Rng {
public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t next() {
        state_ += 0x9E3779B97F4A7C15ull;
        uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /// Uniform-ish value in [0, bound). bound must be > 0.
    uint64_t below(uint64_t bound) { return next() % bound; }

    /// True with probability percent/100.
    bool chance(int percent) { return below(100) < static_cast<uint64_t>(percent); }

    template <typename T>
    const T& pick(const std::vector<T>& pool) {
        return pool[below(pool.size())];
    }

private:
    uint64_t state_;
};

}  // namespace phpsafe::fuzz
