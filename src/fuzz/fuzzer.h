// Fuzzing driver: replays the regression corpus, then generates mutated
// cases (structure-aware and byte-level) for a fixed iteration budget,
// running the oracle battery (oracles.h) on each. A violating case is
// minimized by the reducer and serialized into the corpus directory, so
// the corpus only grows and every past failure is replayed forever —
// tests/fuzz_test.cpp and the CI fuzz-smoke job re-run it as ctest cases.
//
// The whole pipeline is deterministic for a fixed seed: the same seed
// produces the same mutation sequence, which `FuzzStats::case_trace_hash`
// (an FNV-1a chain over every generated case) makes checkable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/mutator.h"
#include "fuzz/oracles.h"

namespace phpsafe::fuzz {

struct FuzzOptions {
    uint64_t seed = 1;
    int iterations = 2000;
    /// Regression corpus directory: replayed before fuzzing, and minimized
    /// repros of new violations are written here. Empty = neither.
    std::string corpus_dir;
    bool write_regressions = true;
    /// Share of iterations spent on byte-level mutations (the rest are
    /// structure-aware cases).
    int byte_percent = 40;
    /// Stop generating after this many violating cases.
    int max_violations = 8;
    OracleOptions oracles;
    std::ostream* log = nullptr;  ///< optional progress stream
};

struct FuzzStats {
    int corpus_replayed = 0;
    std::vector<Violation> corpus_violations;
    int iterations_run = 0;
    int structure_cases = 0;
    int byte_cases = 0;
    std::vector<Violation> violations;
    std::vector<std::string> regressions_written;  ///< file paths
    /// FNV-1a chain over every generated case's serialized bytes —
    /// identical across runs with the same seed and iteration count.
    uint64_t case_trace_hash = 0;

    bool clean() const {
        return corpus_violations.empty() && violations.empty();
    }
};

FuzzStats run_fuzz(const FuzzOptions& options);

/// Replays every *.case file in `dir` through the oracle battery.
FuzzStats replay_corpus(const std::string& dir, const OracleOptions& options);

/// Serialization of a case (with the oracle it violated) — the regression
/// corpus file format. File contents are length-prefixed raw bytes, so
/// arbitrary byte-mutated inputs survive unescaped.
std::string serialize_case(const FuzzCase& c, Oracle oracle);
bool parse_case(const std::string& text, FuzzCase& out, Oracle& oracle,
                std::string* error = nullptr);

}  // namespace phpsafe::fuzz
