#include "fuzz/fuzzer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "fuzz/reducer.h"
#include "fuzz/rng.h"
#include "util/strings.h"

namespace phpsafe::fuzz {

namespace {

constexpr std::string_view kHeader = "# phpsafe_fuzz regression v1";
constexpr std::string_view kFileMark = "--8<-- file: ";

std::string kind_name(VulnKind kind) { return to_string(kind); }

bool kind_from_string(std::string_view text, VulnKind& out) {
    if (text == "XSS") out = VulnKind::kXss;
    else if (text == "SQLi") out = VulnKind::kSqli;
    else return false;
    return true;
}

bool vector_from_string(std::string_view text, InputVector& out) {
    static const std::pair<const char*, InputVector> table[] = {
        {"GET", InputVector::kGet},         {"POST", InputVector::kPost},
        {"COOKIE", InputVector::kCookie},   {"REQUEST", InputVector::kRequest},
        {"SERVER", InputVector::kServer},   {"FILES", InputVector::kFiles},
        {"DB", InputVector::kDatabase},     {"File", InputVector::kFile},
        {"Function", InputVector::kFunction}, {"Array", InputVector::kArray},
        {"Unknown", InputVector::kUnknown},
    };
    for (const auto& [name, vector] : table) {
        if (text == name) {
            out = vector;
            return true;
        }
    }
    return false;
}

/// The serialized case body (no oracle line) — what the trace hash chains.
std::string case_payload(const FuzzCase& c) {
    std::string out;
    out += "# name: " + c.name + "\n";
    out += "# flags:";
    if (c.byte_level) out += " byte";
    if (c.agreement_eligible) out += " agreement";
    if (c.monotonic_eligible) out += " monotonic";
    if (!c.byte_level && !c.agreement_eligible && !c.monotonic_eligible)
        out += " -";
    out += "\n";
    for (const SinkSite& site : c.sinks)
        out += "# sink: " + site.file + " " + std::to_string(site.line) + " " +
               kind_name(site.kind) + " " + to_string(site.vector) + "\n";
    for (const FuzzFile& file : c.files) {
        out += std::string(kFileMark) + file.name +
               " len=" + std::to_string(file.text.size()) + "\n";
        out += file.text;
        out += "\n";
    }
    return out;
}

}  // namespace

std::string serialize_case(const FuzzCase& c, Oracle oracle) {
    std::string out(kHeader);
    out += "\n# oracle: " + to_string(oracle) + "\n";
    out += case_payload(c);
    return out;
}

bool parse_case(const std::string& text, FuzzCase& out, Oracle& oracle,
                std::string* error) {
    const auto fail = [&](const std::string& why) {
        if (error) *error = why;
        return false;
    };
    out = FuzzCase();
    oracle = Oracle::kNoCrash;

    size_t pos = 0;
    const auto next_line = [&](std::string& line) {
        if (pos >= text.size()) return false;
        const size_t nl = text.find('\n', pos);
        line = text.substr(pos, nl == std::string::npos ? nl : nl - pos);
        pos = nl == std::string::npos ? text.size() : nl + 1;
        return true;
    };

    std::string line;
    if (!next_line(line) || line != kHeader) return fail("missing header");
    while (pos < text.size()) {
        if (text.compare(pos, kFileMark.size(), kFileMark) == 0) {
            if (!next_line(line)) return fail("truncated file mark");
            const size_t len_at = line.rfind(" len=");
            if (len_at == std::string::npos) return fail("file mark without len");
            FuzzFile file;
            file.name = line.substr(kFileMark.size(), len_at - kFileMark.size());
            const size_t len =
                static_cast<size_t>(std::stoull(line.substr(len_at + 5)));
            if (pos + len > text.size()) return fail("file body truncated");
            file.text = text.substr(pos, len);
            pos += len;
            if (pos < text.size() && text[pos] == '\n') ++pos;  // separator
            out.files.push_back(std::move(file));
            continue;
        }
        if (!next_line(line)) break;
        std::istringstream fields(line);
        std::string hash, key;
        fields >> hash >> key;
        if (hash != "#") continue;
        if (key == "oracle:") {
            std::string name;
            fields >> name;
            if (!oracle_from_string(name, oracle))
                return fail("unknown oracle '" + name + "'");
        } else if (key == "name:") {
            fields >> out.name;
        } else if (key == "flags:") {
            std::string flag;
            while (fields >> flag) {
                if (flag == "byte") out.byte_level = true;
                else if (flag == "agreement") out.agreement_eligible = true;
                else if (flag == "monotonic") out.monotonic_eligible = true;
            }
        } else if (key == "sink:") {
            SinkSite site;
            std::string kind, vector;
            fields >> site.file >> site.line >> kind >> vector;
            if (!kind_from_string(kind, site.kind))
                return fail("unknown kind '" + kind + "'");
            if (!vector_from_string(vector, site.vector))
                return fail("unknown vector '" + vector + "'");
            out.sinks.push_back(std::move(site));
        }
    }
    if (out.files.empty()) return fail("case has no files");
    return true;
}

FuzzStats replay_corpus(const std::string& dir, const OracleOptions& options) {
    FuzzStats stats;
    namespace fs = std::filesystem;
    if (dir.empty() || !fs::is_directory(dir)) return stats;

    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file() && entry.path().extension() == ".case")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());

    OracleRunner runner(options);
    for (const std::string& path : paths) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        FuzzCase c;
        Oracle oracle;
        std::string error;
        if (!parse_case(buffer.str(), c, oracle, &error)) {
            stats.corpus_violations.push_back(
                {oracle, path + ": unreadable regression (" + error + ")"});
            continue;
        }
        ++stats.corpus_replayed;
        for (const Violation& v : runner.run(c))
            stats.corpus_violations.push_back(
                {v.oracle, path + ": " + v.detail});
    }
    return stats;
}

FuzzStats run_fuzz(const FuzzOptions& options) {
    FuzzStats stats = replay_corpus(options.corpus_dir, options.oracles);
    if (options.log && stats.corpus_replayed > 0)
        *options.log << "replayed " << stats.corpus_replayed
                     << " regression(s), "
                     << stats.corpus_violations.size() << " violation(s)\n";

    OracleRunner runner(options.oracles);
    Mutator mutator(options.seed);
    Rng driver(options.seed ^ 0xF0A2C0DEDB01DULL);
    stats.case_trace_hash = fnv1a64("phpsafe_fuzz");

    // Recent structure cases feed the byte mutator; never empty.
    std::vector<FuzzCase> bases = {Mutator::seed_case()};

    for (int i = 0; i < options.iterations; ++i) {
        FuzzCase c;
        if (driver.chance(options.byte_percent)) {
            c = mutator.byte_case(bases[driver.below(bases.size())], i);
            ++stats.byte_cases;
        } else {
            c = mutator.structure_case(i);
            ++stats.structure_cases;
            if (bases.size() >= 32) bases.erase(bases.begin());
            bases.push_back(c);
        }
        const std::string payload = case_payload(c);
        stats.case_trace_hash =
            fnv1a64(payload, stats.case_trace_hash * 1099511628211ull);
        ++stats.iterations_run;

        const std::vector<Violation> found = runner.run(c);
        if (found.empty()) continue;

        // One regression per violating case: minimize against the first
        // violated oracle, record every violation.
        const Oracle oracle = found.front().oracle;
        for (const Violation& v : found) stats.violations.push_back(v);
        if (options.log)
            *options.log << c.name << ": " << to_string(oracle) << " — "
                         << found.front().detail << "\n";

        if (!options.corpus_dir.empty() && options.write_regressions) {
            const FuzzCase minimized = reduce_case(c, oracle, runner);
            const std::string body = serialize_case(minimized, oracle);
            char hash[17];
            std::snprintf(hash, sizeof hash, "%016llx",
                          static_cast<unsigned long long>(fnv1a64(body)));
            const std::string path = options.corpus_dir + "/" +
                                     to_string(oracle) + "-" + hash + ".case";
            std::filesystem::create_directories(options.corpus_dir);
            std::ofstream outfile(path, std::ios::binary);
            outfile << body;
            stats.regressions_written.push_back(path);
            if (options.log)
                *options.log << "  minimized to " << minimized.total_lines()
                             << " line(s): " << path << "\n";
        }
        if (static_cast<int>(stats.violations.size()) >= options.max_violations)
            break;
    }
    return stats;
}

}  // namespace phpsafe::fuzz
