#include "fuzz/reducer.h"

#include <algorithm>

namespace phpsafe::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= text.size()) {
        const size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            if (start < text.size()) lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
    std::string text;
    for (const std::string& line : lines) {
        text += line;
        text += '\n';
    }
    return text;
}

/// Candidate with lines [begin, end) of file `file_index` removed; sinks
/// inside the removed span are dropped, later ones shifted up.
FuzzCase without_span(const FuzzCase& base, size_t file_index, size_t begin,
                      size_t end) {
    FuzzCase candidate = base;
    std::vector<std::string> lines =
        split_lines(base.files[file_index].text);
    lines.erase(lines.begin() + static_cast<long>(begin),
                lines.begin() + static_cast<long>(end));
    candidate.files[file_index].text = join_lines(lines);

    const std::string& name = base.files[file_index].name;
    const int removed = static_cast<int>(end - begin);
    std::vector<SinkSite> kept;
    for (SinkSite site : candidate.sinks) {
        if (site.file != name) {
            kept.push_back(site);
            continue;
        }
        const size_t index = static_cast<size_t>(site.line - 1);
        if (index >= begin && index < end) continue;  // sink removed
        if (index >= end) site.line -= removed;
        kept.push_back(site);
    }
    candidate.sinks = std::move(kept);
    return candidate;
}

}  // namespace

FuzzCase reduce_case(const FuzzCase& failing, Oracle oracle,
                     OracleRunner& runner, int max_checks) {
    int checks = 0;
    const auto still_fails = [&](const FuzzCase& candidate) {
        if (checks >= max_checks) return false;
        ++checks;
        for (const Violation& v : runner.run(candidate))
            if (v.oracle == oracle) return true;
        return false;
    };

    if (!still_fails(failing)) return failing;
    FuzzCase current = failing;

    // Whole-file drops first (multi-file cases).
    for (size_t i = 0; current.files.size() > 1 && i < current.files.size();) {
        FuzzCase candidate = current;
        const std::string name = candidate.files[i].name;
        candidate.files.erase(candidate.files.begin() + static_cast<long>(i));
        candidate.sinks.erase(
            std::remove_if(candidate.sinks.begin(), candidate.sinks.end(),
                           [&](const SinkSite& s) { return s.file == name; }),
            candidate.sinks.end());
        if (still_fails(candidate))
            current = std::move(candidate);
        else
            ++i;
    }

    // Per-file ddmin over lines.
    for (size_t file_index = 0; file_index < current.files.size();
         ++file_index) {
        size_t granularity = 2;
        for (;;) {
            size_t len = split_lines(current.files[file_index].text).size();
            if (len < 2) break;
            const size_t chunk = std::max<size_t>(1, (len + granularity - 1) /
                                                         granularity);
            bool removed_any = false;
            for (size_t begin = 0; begin < len;) {
                const size_t end = std::min(begin + chunk, len);
                FuzzCase candidate =
                    without_span(current, file_index, begin, end);
                if (still_fails(candidate)) {
                    current = std::move(candidate);
                    len -= end - begin;
                    removed_any = true;
                    // Re-test the same offset over the shorter file.
                } else {
                    begin = end;
                }
                if (checks >= max_checks) break;
            }
            if (checks >= max_checks) break;
            if (!removed_any) {
                if (chunk == 1) break;
                granularity *= 2;
            }
        }
    }
    return current;
}

}  // namespace phpsafe::fuzz
