#include "fuzz/oracles.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "dynamic/validator.h"
#include "service/watch.h"
#include "util/strings.h"
#include "validate/validate.h"

namespace phpsafe::fuzz {

namespace {

php::Project build_project(const FuzzCase& c, DiagnosticSink& sink) {
    php::Project project("fuzz-" + c.name);
    for (const FuzzFile& file : c.files) project.add_file(file.name, file.text);
    project.parse_all(sink);
    return project;
}

// Deterministic byte rendering of a watch-edit delta: the structural
// numbers (cone size is graph-derived, hence scheduling-independent), the
// added/removed findings and the underlying full-scan signature. Timings
// are excluded, error deltas render as their message.
std::string delta_signature(const service::WatchDelta& delta) {
    if (!delta.ok) return "error: " + delta.error + "\n";
    std::string sig = "changed=" + std::to_string(delta.changed_files) +
                      " cone=" + std::to_string(delta.cone_files) + "/" +
                      std::to_string(delta.cone_functions) + "\n";
    for (const Finding& finding : delta.added) {
        sig += "+ " + to_string(finding);
        sig += '\n';
    }
    for (const Finding& finding : delta.removed) {
        sig += "- " + to_string(finding);
        sig += '\n';
    }
    sig += OracleRunner::result_signature(delta.response.result);
    return sig;
}

}  // namespace

std::string to_string(Oracle oracle) {
    switch (oracle) {
        case Oracle::kNoCrash: return "no-crash";
        case Oracle::kDeterminism: return "determinism";
        case Oracle::kMonotonicity: return "monotonicity";
        case Oracle::kAgreement: return "agreement";
        case Oracle::kConcurrency: return "concurrency";
        case Oracle::kQuickfixSoundness: return "quickfix-soundness";
    }
    return "?";
}

bool oracle_from_string(std::string_view text, Oracle& out) {
    if (text == "no-crash") out = Oracle::kNoCrash;
    else if (text == "determinism") out = Oracle::kDeterminism;
    else if (text == "monotonicity") out = Oracle::kMonotonicity;
    else if (text == "agreement") out = Oracle::kAgreement;
    else if (text == "concurrency") out = Oracle::kConcurrency;
    else if (text == "quickfix-soundness") out = Oracle::kQuickfixSoundness;
    else return false;
    return true;
}

OracleRunner::OracleRunner(OracleOptions options)
    : options_(std::move(options)),
      phpsafe_(options_.phpsafe_tool ? *options_.phpsafe_tool
                                     : make_phpsafe_tool()),
      rips_(options_.rips_tool ? *options_.rips_tool : make_rips_like_tool()) {}

OracleRunner::~OracleRunner() = default;

std::string OracleRunner::result_signature(const AnalysisResult& result) {
    std::string sig = "files=" + std::to_string(result.files_total) +
                      " failed=" + std::to_string(result.files_failed) + "\n";
    for (const Finding& finding : result.findings) {
        sig += to_string(finding);
        sig += '\n';
    }
    return sig;
}

std::vector<Violation> OracleRunner::run(const FuzzCase& c) {
    std::vector<Violation> out;

    const bool needs_static = options_.check_no_crash ||
                              (options_.check_monotonicity && c.monotonic_eligible) ||
                              (options_.check_agreement && c.agreement_eligible) ||
                              options_.check_quickfix;
    if (needs_static) {
        DiagnosticSink sink;
        const php::Project project = build_project(c, sink);
        const AnalysisResult result = run_tool(phpsafe_, project);
        if (options_.check_no_crash) run_no_crash(c, result, out);
        if (options_.check_monotonicity && c.monotonic_eligible)
            run_monotonicity(c, result, project, out);
        if (options_.check_agreement && c.agreement_eligible)
            run_agreement(c, result, project, out);
        if (options_.check_quickfix) run_quickfix(c, result, project, out);
    }
    if (options_.check_determinism) run_determinism(c, out);
    if (options_.check_concurrency) run_concurrency(c, out);
    return out;
}

void OracleRunner::run_no_crash(const FuzzCase& c, const AnalysisResult& result,
                                std::vector<Violation>& out) const {
    // Reaching this line already rules out aborts/crashes (a crash kills
    // the fuzzer process; the CI smoke job runs under ASan to surface
    // them). What is checkable in-process: the engine must account for
    // every input file — analyzed or explicitly failed — in its result.
    if (result.files_total != static_cast<int>(c.files.size()))
        out.push_back(
            {Oracle::kNoCrash,
             "engine result covers " + std::to_string(result.files_total) +
                 " of " + std::to_string(c.files.size()) + " input files"});
    // Under the differential backend an IR/AST divergence is reported as a
    // diagnostic rather than a crash; promote it to a violation so the
    // fuzzer keeps (and reduces) the diverging case.
    for (const Diagnostic& diag : result.diagnostics)
        if (diag.message.find(kBackendMismatchMarker) != std::string::npos)
            out.push_back({Oracle::kNoCrash, diag.message});
}

void OracleRunner::ensure_services() {
    if (serial_) return;
    service::ServiceOptions one;
    one.workers = 1;
    // With the result pool on, a repeat scan would be answered from the
    // stored result — trivially identical. Turning it off forces the
    // second scan through the warm file/summary path under test.
    one.reuse_results = false;
    serial_ = std::make_unique<service::AnalysisService>(one);
    service::ServiceOptions four = one;
    four.workers = 4;
    parallel_ = std::make_unique<service::AnalysisService>(four);
}

void OracleRunner::run_determinism(const FuzzCase& c,
                                   std::vector<Violation>& out) {
    ensure_services();

    service::ScanRequest request;
    request.plugin = "fuzz-" + c.name;
    request.preset = "phpsafe";
    for (const FuzzFile& file : c.files)
        request.files.push_back({file.name, file.text});

    serial_->clear_cache();
    const std::string cold = result_signature(serial_->scan(request).result);
    const std::string warm = result_signature(serial_->scan(request).result);
    parallel_->clear_cache();
    const std::string wide = result_signature(parallel_->scan(request).result);

    if (cold != warm)
        out.push_back({Oracle::kDeterminism,
                       "cold-cache and warm-cache findings differ"});
    if (cold != wide)
        out.push_back({Oracle::kDeterminism,
                       "1-worker and 4-worker findings differ"});
}

void OracleRunner::run_concurrency(const FuzzCase& c,
                                   std::vector<Violation>& out) {
    ensure_services();

    // Three request variants with DISTINCT findings: the base case and two
    // edits each appending a uniquely-named extra source→sink file. Were
    // the variants identical, a scheduler bug that swapped responses
    // between them would be invisible to the oracle.
    constexpr int kVariants = 3;
    std::vector<service::ScanRequest> variants;
    for (int v = 0; v < kVariants; ++v) {
        service::ScanRequest request;
        request.plugin = "fuzz-" + c.name;
        request.preset = "phpsafe";
        for (const FuzzFile& file : c.files)
            request.files.push_back({file.name, file.text});
        if (v > 0)
            request.files.push_back(
                {"fz_concurrency_" + std::to_string(v) + ".php",
                 "<?php echo $_GET['fzc" + std::to_string(v) + "'];"});
        variants.push_back(std::move(request));
    }

    // The two watch-edit batches every client will replay: batch 1 turns
    // the session's file set into variant 1's, batch 2 swaps the extra
    // file so the set becomes variant 2's. Their scans therefore share
    // fingerprints with the pipelined variant submissions — coalescing
    // engages across watch and plain scans.
    service::WatchEditBatch edit1;
    edit1.upserts.emplace_back(variants[1].files.back().name,
                               variants[1].files.back().text);
    service::WatchEditBatch edit2;
    edit2.removals.push_back(variants[1].files.back().name);
    edit2.upserts.emplace_back(variants[2].files.back().name,
                               variants[2].files.back().text);

    // Serial replay on the 1-worker service defines the expected bytes —
    // for the three scan variants and for the watch open/edit/edit
    // sequence alike.
    serial_->clear_cache();
    std::vector<std::string> expected;
    expected.reserve(variants.size());
    for (const service::ScanRequest& request : variants)
        expected.push_back(result_signature(serial_->scan(request).result));
    service::WatchSession replay(*serial_);
    const std::string expected_open =
        result_signature(replay.open(variants[0]).result);
    const std::string expected_edit1 = delta_signature(replay.edit(edit1));
    const std::string expected_edit2 = delta_signature(replay.edit(edit2));

    // N clients submit every variant in a seed-derived order with mixed
    // priorities, pipelined (submit everything, then await), so requests
    // genuinely overlap: coalescing, priority dispatch and shard locking
    // all engage on the shared 4-worker service. Each client additionally
    // drives its own watch session on that service, with the edit batches
    // interleaved between submission and the awaits — incremental deltas
    // must be byte-identical to serial replay under the same pressure.
    parallel_->clear_cache();
    constexpr int kClients = 3;
    std::mutex failures_mutex;
    std::vector<std::string> failures;
    const auto record = [&](std::string detail) {
        std::lock_guard<std::mutex> lock(failures_mutex);
        failures.push_back(std::move(detail));
    };
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            uint64_t state = fnv1a64(c.name) + static_cast<uint64_t>(t);
            std::vector<int> order(static_cast<size_t>(kVariants));
            for (int v = 0; v < kVariants; ++v) order[static_cast<size_t>(v)] = v;
            for (size_t i = order.size(); i > 1; --i) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                std::swap(order[i - 1], order[(state >> 33) % i]);
            }
            service::WatchSession watch(*parallel_);
            if (result_signature(watch.open(variants[0]).result) !=
                expected_open)
                record("watch open differs from serial replay");
            std::vector<std::pair<int, service::AnalysisService::Ticket>>
                tickets;
            tickets.reserve(order.size());
            for (int v : order) {
                service::ScanRequest request = variants[static_cast<size_t>(v)];
                request.priority = static_cast<int>(state % 3);
                tickets.emplace_back(v, parallel_->submit(std::move(request)));
            }
            if (delta_signature(watch.edit(edit1)) != expected_edit1)
                record("watch edit 1 delta differs from serial replay");
            bool first_await = true;
            for (auto& [v, ticket] : tickets) {
                const std::string got =
                    result_signature(parallel_->await(ticket).result);
                if (got != expected[static_cast<size_t>(v)])
                    record("response for variant " + std::to_string(v) +
                           " under " + std::to_string(kClients) +
                           "-client interleaving differs from serial replay");
                if (first_await) {
                    first_await = false;
                    if (delta_signature(watch.edit(edit2)) != expected_edit2)
                        record(
                            "watch edit 2 delta differs from serial replay");
                }
            }
        });
    }
    for (std::thread& t : clients) t.join();

    for (std::string& detail : failures)
        out.push_back({Oracle::kConcurrency, std::move(detail)});
}

void OracleRunner::run_quickfix(const FuzzCase& c,
                                const AnalysisResult& phpsafe_result,
                                const php::Project& project,
                                std::vector<Violation>& out) const {
    // The soundness claim is about fixes on analyzable code; a case the
    // engine could not fully parse has no verified fixes to check.
    if (phpsafe_result.files_failed != 0) return;

    validate::ValidateOptions vopts;
    vopts.workers = 1;
    vopts.propose_fixes = true;
    const validate::ValidationReport report = validate::validate_result(
        project, phpsafe_.kb, phpsafe_.options, phpsafe_result, vopts);

    for (size_t i = 0; i < report.cases.size(); ++i) {
        const validate::CaseOutcome& outcome = report.cases[i];
        if (!outcome.fix) continue;
        const Finding& target = phpsafe_result.findings[i];
        const std::string label =
            to_string(outcome.fix->kind) + " fix for " + to_string(target);

        // Every emitted fix must carry the verified flag (the pipeline's
        // contract: unverified proposals are dropped, not surfaced).
        if (!outcome.fix->verified) {
            out.push_back({Oracle::kQuickfixSoundness,
                           "unverified proposal emitted: " + label});
            continue;
        }

        // Re-check the verification gates INDEPENDENTLY of the pipeline's
        // own loop: apply the edit, rebuild the patched project from plain
        // text (no shared-AST shortcut), and rescan from scratch.
        const std::optional<std::string> patched_text =
            validate::apply_quickfix(project, *outcome.fix);
        if (!patched_text) {
            out.push_back({Oracle::kQuickfixSoundness,
                           "verified fix does not apply to its own source: " +
                               label});
            continue;
        }
        php::Project patched("quickfix-" + c.name);
        for (const auto& file : project.files()) {
            const std::string name(file->source->name());
            patched.add_file(name, name == outcome.fix->file
                                       ? *patched_text
                                       : std::string(file->source->text()));
        }
        DiagnosticSink sink;
        patched.parse_all(sink);
        bool reparse_clean = true;
        for (const auto& file : patched.files())
            if (file->parse_failed) reparse_clean = false;
        if (!reparse_clean) {
            out.push_back({Oracle::kQuickfixSoundness,
                           "patched unit no longer parses: " + label});
            continue;
        }

        const AnalysisResult rescan = run_tool(phpsafe_, patched);
        const std::string target_key = target.dedup_key();
        std::vector<std::string> before_others;
        for (size_t j = 0; j < phpsafe_result.findings.size(); ++j)
            if (j != i)
                before_others.push_back(to_string(phpsafe_result.findings[j]));
        std::vector<std::string> after_all;
        bool target_alive = false;
        for (const Finding& finding : rescan.findings) {
            if (finding.dedup_key() == target_key) {
                target_alive = true;
                continue;
            }
            after_all.push_back(to_string(finding));
        }
        if (target_alive)
            out.push_back({Oracle::kQuickfixSoundness,
                           "targeted flow survives the fix: " + label});
        if (after_all != before_others)
            out.push_back({Oracle::kQuickfixSoundness,
                           "fix perturbs unrelated findings: " + label});

        // And the exploit replay on the patched unit must be dead.
        dynamic::Validator validator(patched);
        if (validator.validate(target).confirmed)
            out.push_back({Oracle::kQuickfixSoundness,
                           "exploit replay still confirms after the fix: " +
                               label});
    }
}

void OracleRunner::run_monotonicity(const FuzzCase& c,
                                    const AnalysisResult& phpsafe_result,
                                    const php::Project& project,
                                    std::vector<Violation>& out) const {
    const AnalysisResult rips_result = run_tool(rips_, project);
    // The subset claim only holds when both presets analyzed every file
    // (a failed file legitimately drops findings on one side).
    if (phpsafe_result.files_failed != 0 || rips_result.files_failed != 0)
        return;
    std::set<std::string> phpsafe_keys;
    for (const Finding& finding : phpsafe_result.findings)
        phpsafe_keys.insert(finding.dedup_key());
    for (const Finding& finding : rips_result.findings) {
        if (!phpsafe_keys.count(finding.dedup_key()))
            out.push_back({Oracle::kMonotonicity,
                           "rips_like finding missing from phpsafe preset: " +
                               to_string(finding)});
    }
    (void)c;
}

void OracleRunner::run_agreement(const FuzzCase& c,
                                 const AnalysisResult& phpsafe_result,
                                 const php::Project& project,
                                 std::vector<Violation>& out) const {
    if (phpsafe_result.files_failed != 0) return;
    dynamic::Validator validator(project);
    for (const SinkSite& site : c.sinks) {
        Finding candidate;
        candidate.kind = site.kind;
        candidate.location = {site.file, site.line};
        candidate.vector = site.vector;
        const dynamic::ValidationResult proof = validator.validate(candidate);
        if (!proof.confirmed) continue;
        bool reported = false;
        for (const Finding& finding : phpsafe_result.findings) {
            if (finding.kind == site.kind && finding.location.file == site.file &&
                finding.location.line == site.line) {
                reported = true;
                break;
            }
        }
        if (!reported)
            out.push_back(
                {Oracle::kAgreement,
                 "dynamically confirmed " + to_string(site.kind) + " at " +
                     site.file + ":" + std::to_string(site.line) +
                     " not reported by the static engine (evidence: " +
                     proof.evidence + ")"});
    }
}

}  // namespace phpsafe::fuzz
