// Case generation for the fuzzer: structure-aware mutations built on the
// corpus pattern library (splice sanitizers, rename taint variables, wrap
// sinks in functions/methods/closures, split across includes) plus raw
// byte-level mutations for the lexer/parser never-crash guarantee.
//
// Every case carries eligibility flags deciding which oracles are sound
// for it (oracles.h): byte-mutated garbage only supports no-crash and
// determinism; structure cases additionally support preset monotonicity
// (procedural generic-PHP only) and interpreter agreement (single known
// sink per file, constructs both the static engine and the dynamic
// interpreter model concretely).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/knowledge.h"
#include "corpus/patterns.h"
#include "fuzz/rng.h"

namespace phpsafe::fuzz {

struct FuzzFile {
    std::string name;
    std::string text;
};

/// Ground-truth sink candidate the interpreter-agreement oracle validates
/// dynamically. Mutations that shift lines keep `line` up to date.
struct SinkSite {
    std::string file;
    int line = 0;  ///< 1-based
    VulnKind kind = VulnKind::kXss;
    InputVector vector = InputVector::kUnknown;
};

struct FuzzCase {
    std::string name;
    std::vector<FuzzFile> files;
    std::vector<SinkSite> sinks;
    bool byte_level = false;
    /// Interpreter agreement is sound: exactly the constructs both
    /// executions model, one candidate sink per validated file.
    bool agreement_eligible = false;
    /// rips_like ⊆ phpsafe holds by construction: procedural generic PHP,
    /// shallow includes, no CMS-profile or closure constructs.
    bool monotonic_eligible = false;

    int total_lines() const;
};

class Mutator {
public:
    explicit Mutator(uint64_t seed) : rng_(seed) {}

    /// A random structure-aware case: one pattern-library snippet (or, for
    /// monotonic-only cases, several) plus 0–2 structure mutations.
    FuzzCase structure_case(int index);

    /// Deterministic single-family case without random mutations — the seam
    /// the fault-seeding tests use to aim at one specific rule.
    FuzzCase structure_case_for(corpus::Family family, int index, int variant);

    /// Byte-level mutation of `base` (bit flips, splices, truncation,
    /// dictionary-token insertion). Only no-crash/determinism eligible.
    FuzzCase byte_case(const FuzzCase& base, int index);

    /// A tiny valid program used as byte-mutation seed when no structure
    /// case has been generated yet.
    static FuzzCase seed_case();

    /// Families eligible for the interpreter-agreement oracle.
    static const std::vector<corpus::Family>& agreement_families();
    /// Families eligible for the preset-monotonicity oracle.
    static const std::vector<corpus::Family>& monotonic_families();

private:
    void apply_structure_mutations(FuzzCase& c);
    void splice_sanitizer(FuzzCase& c);
    void rename_tag(FuzzCase& c, const std::string& from, const std::string& to);
    void wrap_in_function(FuzzCase& c);
    void wrap_in_method(FuzzCase& c);
    void wrap_in_closure(FuzzCase& c);
    void split_include(FuzzCase& c);

    Rng rng_;
    int tag_counter_ = 0;
};

}  // namespace phpsafe::fuzz
