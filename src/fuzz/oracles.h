// Oracle battery for the fuzzer. Each oracle is a property the analyzer
// must hold on *every* input, checked per mutated case:
//
//   no-crash      — lexer/parser/engine return an AnalysisResult covering
//                   every file (diagnostics, never aborts) on arbitrary
//                   bytes.
//   determinism   — AnalysisService findings are byte-identical between a
//                   1-worker and a 4-worker service, and between a cold
//                   and a warm cache (summary/file reuse re-scan).
//   monotonicity  — on procedural generic-PHP code, rips_like() findings
//                   are a subset of phpsafe() findings (the phpSAFE preset
//                   only ever adds capability on that fragment).
//   agreement     — when dynamic::Validator proves a concrete payload
//                   reaches a candidate sink, the static engine must have
//                   reported that sink: a validated miss is a real false
//                   negative, the paper's key metric.
//   quickfix-soundness — every quickfix the validation pipeline emits as
//                   `verified` must hold up under independent re-checking:
//                   applying the edit reparses clean, kills the targeted
//                   flow (the finding's dedup key vanishes from a fresh
//                   rescan and the exploit replay no longer confirms), and
//                   leaves every OTHER finding byte-identical. A fix that
//                   breaks the parse, misses its flow, or perturbs an
//                   unrelated finding is a violation.
//   concurrency   — N client threads submit randomized interleavings of
//                   request variants (base case plus distinct edits, mixed
//                   priorities) to one shared multi-worker service, each
//                   also driving its own WatchSession (open + edit batches
//                   interleaved with the pipelined scans); every response
//                   and every incremental delta must be byte-identical to
//                   the same sequence replayed serially on a single-worker
//                   service. This is the server's scheduling-independence
//                   invariant under fuzz pressure: dedup, priorities and
//                   shard locking may move WHEN a scan runs, never what it
//                   reports.
//
// OracleOptions lets tests inject a deliberately broken Tool (e.g. a
// knowledge base with one source rule removed) to prove the battery
// actually catches seeded faults.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "fuzz/mutator.h"
#include "service/service.h"

namespace phpsafe::fuzz {

enum class Oracle {
    kNoCrash,
    kDeterminism,
    kMonotonicity,
    kAgreement,
    kConcurrency,
    kQuickfixSoundness
};

std::string to_string(Oracle oracle);
bool oracle_from_string(std::string_view text, Oracle& out);

struct OracleOptions {
    bool check_no_crash = true;
    bool check_determinism = true;
    bool check_monotonicity = true;
    bool check_agreement = true;
    /// Off by default in the per-case battery: it spawns client threads per
    /// case, which the smoke loop cannot afford for every mutation. The
    /// dedicated fuzz-smoke stage and tests/fuzz_test.cpp turn it on.
    bool check_concurrency = false;
    /// Off by default for the same budget reason: each case pays a full
    /// validation pipeline plus one rescan per emitted fix. The dedicated
    /// fuzz-smoke batch and tests/fuzz_test.cpp turn it on.
    bool check_quickfix = false;
    /// Static-analysis tool overrides (fault-injection seam for the tests;
    /// unset = make_phpsafe_tool() / make_rips_like_tool()).
    std::optional<Tool> phpsafe_tool;
    std::optional<Tool> rips_tool;
};

struct Violation {
    Oracle oracle = Oracle::kNoCrash;
    std::string detail;
};

class OracleRunner {
public:
    explicit OracleRunner(OracleOptions options = {});
    ~OracleRunner();

    OracleRunner(const OracleRunner&) = delete;
    OracleRunner& operator=(const OracleRunner&) = delete;

    /// Runs every enabled oracle the case is eligible for.
    std::vector<Violation> run(const FuzzCase& c);

    /// Deterministic rendering of a result's findings — the byte string
    /// the determinism oracle compares (timings excluded on purpose).
    static std::string result_signature(const AnalysisResult& result);

private:
    void run_no_crash(const FuzzCase& c, const AnalysisResult& result,
                      std::vector<Violation>& out) const;
    void run_determinism(const FuzzCase& c, std::vector<Violation>& out);
    void run_concurrency(const FuzzCase& c, std::vector<Violation>& out);
    void ensure_services();
    void run_quickfix(const FuzzCase& c, const AnalysisResult& phpsafe_result,
                      const php::Project& project,
                      std::vector<Violation>& out) const;
    void run_monotonicity(const FuzzCase& c, const AnalysisResult& phpsafe_result,
                          const php::Project& project,
                          std::vector<Violation>& out) const;
    void run_agreement(const FuzzCase& c, const AnalysisResult& phpsafe_result,
                       const php::Project& project,
                       std::vector<Violation>& out) const;

    OracleOptions options_;
    Tool phpsafe_;
    Tool rips_;
    /// Long-lived services (cleared per case) so 2000 iterations do not pay
    /// thread setup 6000 times.
    std::unique_ptr<service::AnalysisService> serial_;
    std::unique_ptr<service::AnalysisService> parallel_;
};

}  // namespace phpsafe::fuzz
