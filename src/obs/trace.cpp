#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json_writer.h"
#include "util/timing.h"

namespace phpsafe::obs {

Tracer::Tracer(bool enabled) : enabled_(enabled), epoch_(wall_seconds()) {}

Tracer::Span::Span(
    Tracer* tracer, std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>> args)
    : tracer_(tracer) {
    record_.name.assign(name);
    record_.args.reserve(args.size());
    for (const auto& [key, value] : args)
        record_.args.emplace_back(std::string(key), std::string(value));
    record_.wall_start = wall_seconds() - tracer->epoch_;
    cpu_start_ = thread_cpu_seconds();
    counters_start_ = tls();
}

void Tracer::Span::note(std::string_view key, std::string_view value) {
    if (!tracer_) return;
    record_.args.emplace_back(std::string(key), std::string(value));
}

void Tracer::Span::end() {
    if (!tracer_) return;
    record_.counters = tls() - counters_start_;
    record_.cpu_seconds = thread_cpu_seconds() - cpu_start_;
    record_.wall_seconds =
        wall_seconds() - tracer_->epoch_ - record_.wall_start;
    Tracer* tracer = tracer_;
    tracer_ = nullptr;
    tracer->commit(std::move(record_));
}

Tracer::Span Tracer::span(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>> args) {
    if (!enabled_) return Span{};
    return Span(this, name, args);
}

void Tracer::commit(SpanRecord&& record) {
    const std::thread::id self = std::this_thread::get_id();
    std::lock_guard<std::mutex> lock(mutex_);
    record.thread = thread_index(self);
    records_.push_back(std::move(record));
}

int Tracer::thread_index(std::thread::id id) {
    const auto it = std::find(threads_.begin(), threads_.end(), id);
    if (it != threads_.end()) return static_cast<int>(it - threads_.begin());
    threads_.push_back(id);
    return static_cast<int>(threads_.size()) - 1;
}

std::vector<SpanRecord> Tracer::records() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

size_t Tracer::record_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

std::string Tracer::chrome_trace_json() const {
    const std::vector<SpanRecord> spans = records();
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("traceEvents").begin_array();
    for (const SpanRecord& span : spans) {
        w.begin_object();
        w.kv("name", span.name);
        w.kv("cat", "phpsafe");
        w.kv("ph", "X");  // complete event: ts + dur
        w.kv("pid", 1);
        w.kv("tid", span.thread);
        w.kv("ts", span.wall_start * 1e6, 3);
        w.kv("dur", span.wall_seconds * 1e6, 3);
        w.key("args").begin_object();
        for (const SpanArg& arg : span.args) w.kv(arg.first, arg.second);
        w.kv("cpu_ms", span.cpu_seconds * 1e3, 3);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return os.str();
}

std::string Tracer::flat_json() const {
    const std::vector<SpanRecord> spans = records();
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.begin_object();
    w.key("spans").begin_array();
    for (const SpanRecord& span : spans) {
        w.begin_object();
        w.kv("name", span.name);
        for (const SpanArg& arg : span.args) w.kv(arg.first, arg.second);
        w.kv("thread", span.thread);
        w.kv("wall_start_ms", span.wall_start * 1e3, 3);
        w.kv("wall_ms", span.wall_seconds * 1e3, 3);
        w.kv("cpu_ms", span.cpu_seconds * 1e3, 3);
        // Only the counters the span actually moved: a scan span shows its
        // cache traffic and shard contention without 30 zero fields.
        w.key("counters").begin_object();
        span.counters.for_each_field([&](const char* name, uint64_t value) {
            if (value) w.kv(name, value);
        });
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    return os.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << chrome_trace_json() << "\n";
    return static_cast<bool>(out);
}

bool Tracer::write_flat_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << flat_json();
    return static_cast<bool>(out);
}

}  // namespace phpsafe::obs
