// Per-stage event counters for the observability subsystem (obs). Every
// pipeline stage — lexing, parsing, model construction, taint analysis —
// bumps a named counter on its hot path. Counting is atomic-free: each
// thread owns a thread-local Counters block (obs::tls()) and increments it
// with plain adds; a scope of work is measured by snapshotting the block
// before and after (CounterDelta) and deltas are merged deterministically
// by whoever owns the fan-out (the evaluation driver merges per-unit deltas
// in a fixed order, so any worker count yields byte-identical totals — see
// tests/determinism_test.cpp).
//
// Counters never allocate: the block is a trivially-copyable struct of
// uint64 fields, thread-local storage is constinit, and an increment is one
// TLS add. tests/obs_test.cpp asserts the no-allocation property.
#pragma once

#include <cstdint>
#include <utility>

namespace phpsafe::obs {

/// X-macro over every counter: name, doc string. Adding a counter here adds
/// it to the struct, the merge/subtract operators, for_each_field (and
/// therefore every JSON export), and the determinism comparison.
#define PHPSAFE_OBS_COUNTERS(X)                                               \
    X(tokens_lexed, "tokens produced by the lexer")                           \
    X(ast_nodes, "AST nodes constructed by the parser")                       \
    X(files_parsed, "files run through the parser")                           \
    X(parse_errors, "recovered parse errors")                                 \
    X(includes_resolved, "include/require paths resolved in-project")         \
    X(includes_followed, "include edges actually executed by the engine")     \
    X(summaries_computed, "function summaries computed (body analyzed)")      \
    X(summaries_reused, "function summaries served from the store")           \
    X(taint_propagations, "TaintValue merges (joins, concats, arg passing)")  \
    X(scope_lookups, "variable reads through a scope")                        \
    X(sink_checks, "sensitive-argument checks performed")                     \
    X(sources_seen, "taint introductions (superglobals, source APIs)")        \
    X(findings_xss, "XSS findings reported (pre-dedup)")                      \
    X(findings_sqli, "SQLi findings reported (pre-dedup)")                     \
    X(cache_file_hits, "parsed files served from the content-addressed cache") \
    X(cache_file_misses, "file lookups that had to lex+parse")                 \
    X(cache_summary_hits, "function summaries seeded from the cache")          \
    X(cache_summary_misses, "summary lookups that had to analyze the body")    \
    X(cache_result_hits, "whole scan results served from the cache")           \
    X(cache_evictions, "cache entries evicted by the LRU byte budget")         \
    X(cache_invalidations, "cached summaries rejected: a dependency changed")  \
    X(cache_bytes_inserted, "bytes admitted into the cache pools")             \
    X(cache_bytes_evicted, "bytes released by eviction (resident = inserted "  \
                           "minus evicted)")                                    \
    X(cache_bytes_parsed, "bytes charged for parsed-file entries "              \
                          "(arena bytes + retained source text)")               \
    X(cache_shard_probes, "cache shard lock acquisitions")                      \
    X(cache_shard_contention, "shard lock acquisitions that had to wait "       \
                              "behind another thread")                          \
    X(cache_shed_entries, "cache entries dropped by admission-control "         \
                          "pressure shedding (results before parsed files)")    \
    X(cache_shed_bytes, "bytes released by pressure shedding")                  \
    X(cache_dep_walks, "summary dependency lists walked by warm-scan "          \
                       "validation")                                            \
    X(cache_dep_walk_steps, "dependency records resolved against the project "  \
                            "tables (the expensive lookups)")                   \
    X(cache_dep_walk_memo_hits, "dependency records answered by the "           \
                                "per-request memo without a project walk")      \
    X(watch_edits, "file-change events applied to watch sessions")              \
    X(watch_cone_files, "files inside the invalidated cone of watch edits")     \
    X(graph_builds, "project graphs linked from file facts")                    \
    X(alloc_arena_bytes, "bytes handed out by per-file AST arenas")             \
    X(alloc_arena_blocks, "heap blocks backing AST arenas (the model's "        \
                          "entire malloc traffic)")                             \
    X(alloc_string_bytes, "string bytes copied into arenas (decoded escapes, "  \
                          "folded keywords, synthesized names)")                \
    X(alloc_string_bytes_saved, "string bytes served zero-copy as views into "  \
                                "the retained source text")                     \
    X(ir_bodies_lowered, "bodies compiled into the flat dataflow IR")           \
    X(ir_insts_lowered, "IR instructions emitted by lowering")                  \
    X(ir_blocks_lowered, "IR basic blocks derived by lowering")                 \
    X(ir_body_runs, "body executions on the IR backend")                        \
    X(ir_fallbacks, "bodies run on the AST path because the lowered "           \
                    "depth could hit the eval() truncation guard")              \
    X(ir_mismatches, "differential runs where IR and AST findings diverged")

/// One block of stage counters. Plain additive uint64 fields only, so the
/// struct is trivially copyable and two blocks compare/merge field-wise.
struct Counters {
#define PHPSAFE_OBS_FIELD(name, doc) uint64_t name = 0;
    PHPSAFE_OBS_COUNTERS(PHPSAFE_OBS_FIELD)
#undef PHPSAFE_OBS_FIELD

    Counters& operator+=(const Counters& other) noexcept {
#define PHPSAFE_OBS_ADD(name, doc) name += other.name;
        PHPSAFE_OBS_COUNTERS(PHPSAFE_OBS_ADD)
#undef PHPSAFE_OBS_ADD
        return *this;
    }

    /// Field-wise difference (used to turn two snapshots into a delta).
    friend Counters operator-(Counters lhs, const Counters& rhs) noexcept {
#define PHPSAFE_OBS_SUB(name, doc) lhs.name -= rhs.name;
        PHPSAFE_OBS_COUNTERS(PHPSAFE_OBS_SUB)
#undef PHPSAFE_OBS_SUB
        return lhs;
    }

    bool operator==(const Counters&) const noexcept = default;

    uint64_t total() const noexcept {
        uint64_t sum = 0;
#define PHPSAFE_OBS_SUM(name, doc) sum += name;
        PHPSAFE_OBS_COUNTERS(PHPSAFE_OBS_SUM)
#undef PHPSAFE_OBS_SUM
        return sum;
    }

    /// Calls fn(field_name, value) for every counter, in declaration order.
    template <typename Fn>
    void for_each_field(Fn&& fn) const {
#define PHPSAFE_OBS_VISIT(name, doc) fn(#name, name);
        PHPSAFE_OBS_COUNTERS(PHPSAFE_OBS_VISIT)
#undef PHPSAFE_OBS_VISIT
    }
};

/// The calling thread's counter block. Increment fields directly:
/// `++obs::tls().sink_checks;`. Never reset behind a live CounterDelta.
Counters& tls() noexcept;

/// Captures the increments a thread performs between construction and
/// take(): `CounterDelta d; work(); obs::Counters used = d.take();`.
/// Deltas nest freely (an inner delta is a subset of the outer one).
class CounterDelta {
public:
    CounterDelta() noexcept : start_(tls()) {}

    /// The counts accumulated on this thread since construction.
    Counters take() const noexcept { return tls() - start_; }

private:
    Counters start_;
};

}  // namespace phpsafe::obs
