#include "obs/counters.h"

namespace phpsafe::obs {

namespace {
// Trivially-destructible POD block: constinit thread-local, so touching it
// never runs a guard check or allocates.
constinit thread_local Counters tls_counters{};
}  // namespace

Counters& tls() noexcept { return tls_counters; }

}  // namespace phpsafe::obs
