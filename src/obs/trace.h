// Span tracing for the observability subsystem. A Span measures one
// (plugin, version, tool, stage) unit of work — wall clock and per-thread
// CPU — and a Tracer collects spans from any number of threads. Two
// exporters: the Chrome trace-event format (load trace.json in
// chrome://tracing or https://ui.perfetto.dev) and a flat JSON array for
// scripted analysis.
//
// Cost model: a *disabled* tracer is free — span() returns an inert Span
// without copying a byte or allocating (tests/obs_test.cpp asserts this),
// so instrumentation can stay in place unconditionally. The PHPSAFE_TRACE
// CMake option chooses the default-constructed state: OFF (the default)
// builds a library whose tracers start disabled and must be armed
// explicitly with Tracer(true); ON arms them at construction. Either way
// there are no extra dependencies — exporters use only the standard
// library and util/json_writer.h.
#pragma once

#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/counters.h"

namespace phpsafe::obs {

/// True when the build was configured with -DPHPSAFE_TRACE=ON, i.e. when
/// default-constructed tracers record spans.
constexpr bool trace_enabled_by_default() noexcept {
#ifdef PHPSAFE_TRACE
    return true;
#else
    return false;
#endif
}

/// One label attached to a span ("plugin" → "wp-forum", "stage" → "lex").
using SpanArg = std::pair<std::string, std::string>;

/// A completed span, as stored by the tracer.
struct SpanRecord {
    std::string name;           ///< stage name ("lex", "analyze", ...)
    std::vector<SpanArg> args;  ///< plugin / version / tool labels
    double wall_start = 0;      ///< seconds since the tracer was created
    double wall_seconds = 0;    ///< wall-clock duration
    double cpu_seconds = 0;     ///< CPU consumed by the recording thread
    int thread = 0;             ///< dense per-tracer thread index
    /// Counter increments the recording thread performed inside the span
    /// (a CounterDelta over its lifetime) — shard lock contention, cache
    /// traffic, taint work. The flat exporter emits the nonzero fields.
    Counters counters;
};

class Tracer {
public:
    explicit Tracer(bool enabled = trace_enabled_by_default());

    bool enabled() const noexcept { return enabled_; }

    /// RAII handle for an in-flight span; records on end() or destruction.
    /// Move-only. An inert Span (from a disabled tracer) does nothing.
    class Span {
    public:
        Span() = default;
        Span(Span&& other) noexcept { *this = std::move(other); }
        Span& operator=(Span&& other) noexcept {
            if (this != &other) {
                end();
                tracer_ = other.tracer_;
                record_ = std::move(other.record_);
                cpu_start_ = other.cpu_start_;
                counters_start_ = other.counters_start_;
                other.tracer_ = nullptr;
            }
            return *this;
        }
        Span(const Span&) = delete;
        Span& operator=(const Span&) = delete;
        ~Span() { end(); }

        bool active() const noexcept { return tracer_ != nullptr; }

        /// Attaches a label; no-op on an inert span.
        void note(std::string_view key, std::string_view value);

        /// Finishes the span and hands it to the tracer. Idempotent.
        void end();

    private:
        friend class Tracer;
        Span(Tracer* tracer, std::string_view name,
             std::initializer_list<std::pair<std::string_view, std::string_view>>
                 args);

        Tracer* tracer_ = nullptr;
        SpanRecord record_;
        double cpu_start_ = 0;
        Counters counters_start_;
    };

    /// Opens a span. Arguments are string_views so a disabled tracer copies
    /// nothing: `auto s = tracer.span("analyze", {{"tool", name}});`.
    Span span(std::string_view name,
              std::initializer_list<std::pair<std::string_view, std::string_view>>
                  args = {});

    /// Snapshot of everything recorded so far (thread-safe).
    std::vector<SpanRecord> records() const;
    size_t record_count() const;

    /// Chrome trace-event JSON ({"traceEvents":[...]}; ts/dur in µs).
    std::string chrome_trace_json() const;

    /// Flat JSON: {"spans":[{name, args..., wall_ms, cpu_ms,
    /// counters:{...nonzero deltas...}}, ...]}.
    std::string flat_json() const;

    /// Writes an exporter's output to `path`; returns false on I/O error.
    bool write_chrome_trace(const std::string& path) const;
    bool write_flat_json(const std::string& path) const;

private:
    void commit(SpanRecord&& record);
    int thread_index(std::thread::id id);

    const bool enabled_;
    const double epoch_;  ///< wall_seconds() at construction
    mutable std::mutex mutex_;
    std::vector<SpanRecord> records_;
    std::vector<std::thread::id> threads_;  ///< index = dense thread id
};

}  // namespace phpsafe::obs
