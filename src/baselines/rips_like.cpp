#include "baselines/analyzers.h"

#include "obs/counters.h"
#include "util/timing.h"

namespace phpsafe {

Tool make_phpsafe_tool() {
    Tool tool;
    tool.name = "phpSAFE";
    tool.kb = make_generic_php_kb();
    add_wordpress_profile(tool.kb);
    tool.options = AnalysisOptions::phpsafe();
    return tool;
}

Tool make_rips_like_tool() {
    Tool tool;
    tool.name = "RIPS";
    tool.kb = make_generic_php_kb();  // no WordPress profile
    tool.options = AnalysisOptions::rips_like();
    return tool;
}

AnalysisResult run_tool(const Tool& tool, const php::Project& project,
                        Engine::Observer* observer) {
    Engine engine(tool.kb, tool.options);
    engine.set_observer(observer);
    // Per-thread CPU clock: correct even when many run_tool calls execute
    // concurrently on a parallel evaluation's worker pool (std::clock() is
    // process-wide and would absorb the other workers' CPU time). The
    // counter delta is per-thread too, so it captures exactly this run.
    const obs::CounterDelta delta;
    const double start = thread_cpu_seconds();
    AnalysisResult result = engine.analyze(project);
    result.cpu_seconds = thread_cpu_seconds() - start;
    result.counters = delta.take();
    return result;
}

}  // namespace phpsafe
