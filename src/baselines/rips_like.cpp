#include "baselines/analyzers.h"

#include "core/analyzer.h"

namespace phpsafe {

Tool make_phpsafe_tool() {
    Tool tool;
    tool.name = "phpSAFE";
    tool.kb = make_generic_php_kb();
    add_wordpress_profile(tool.kb);
    tool.options = AnalysisOptions::phpsafe();
    return tool;
}

Tool make_rips_like_tool() {
    Tool tool;
    tool.name = "RIPS";
    tool.kb = make_generic_php_kb();  // no WordPress profile
    tool.options = AnalysisOptions::rips_like();
    return tool;
}

AnalysisResult run_tool(const Tool& tool, const php::Project& project,
                        Engine::Observer* observer) {
    // Thin shim over the Analyzer facade (core/analyzer.h), kept for source
    // compatibility; new code should construct an Analyzer directly. The
    // borrowing constructor keeps the old zero-copy semantics for tool.kb.
    const Analyzer analyzer = Analyzer::borrowing(tool.kb, tool.options);
    return analyzer.scan(project, tool.options, SummaryExchange{}, observer)
        .result;
}

}  // namespace phpsafe
