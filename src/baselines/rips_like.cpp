#include "baselines/analyzers.h"

#include "util/timing.h"

namespace phpsafe {

Tool make_phpsafe_tool() {
    Tool tool;
    tool.name = "phpSAFE";
    tool.kb = make_generic_php_kb();
    add_wordpress_profile(tool.kb);
    tool.options.tool_name = tool.name;
    tool.options.oop_support = true;
    tool.options.analyze_uncalled_functions = true;
    tool.options.max_include_depth = 8;
    return tool;
}

Tool make_rips_like_tool() {
    Tool tool;
    tool.name = "RIPS";
    tool.kb = make_generic_php_kb();  // no WordPress profile
    tool.options.tool_name = tool.name;
    tool.options.oop_support = false;
    tool.options.analyze_uncalled_functions = true;
    tool.options.max_include_depth = 64;  // completed every file in the paper
    tool.options.analyze_closures = true;
    return tool;
}

AnalysisResult run_tool(const Tool& tool, const php::Project& project) {
    Engine engine(tool.kb, tool.options);
    // Per-thread CPU clock: correct even when many run_tool calls execute
    // concurrently on a parallel evaluation's worker pool (std::clock() is
    // process-wide and would absorb the other workers' CPU time).
    const double start = thread_cpu_seconds();
    AnalysisResult result = engine.analyze(project);
    result.cpu_seconds = thread_cpu_seconds() - start;
    return result;
}

}  // namespace phpsafe
