// Tool definitions for the paper's three-way comparison (§IV.B.3): phpSAFE
// itself, a RIPS-like baseline and a Pixy-like baseline. All three run on
// the same AST/taint substrate; what differs is the capability envelope the
// paper attributes to each tool (OOP support, CMS profile, uncalled-
// function analysis, register_globals modeling, robustness behaviour).
#pragma once

#include <string>

#include "config/knowledge.h"
#include "core/engine.h"
#include "core/finding.h"
#include "php/project.h"

namespace phpsafe {

/// A fully configured analyzer: knowledge base + engine options.
struct Tool {
    std::string name;
    KnowledgeBase kb;
    AnalysisOptions options;
};

/// phpSAFE: OOP-aware, WordPress profile loaded out of the box, analyzes
/// uncalled functions; include-depth limited (paper §V.E: failed on files
/// with very deep include chains).
Tool make_phpsafe_tool();

/// RIPS-like: strong procedural analysis of PHP built-ins, no OOP member
/// resolution, no CMS profile; analyzes uncalled functions; robust on all
/// files (the paper reports RIPS completed every file).
Tool make_rips_like_tool();

/// Pixy-like: 2007-era knowledge (no mysqli, no WordPress, register_globals
/// modeling), no OOP at all — files containing OOP constructs fail —, no
/// analysis of functions never called from plugin code.
Tool make_pixy_like_tool();

/// Runs a tool on a parsed plugin, filling cpu_seconds with the worker
/// thread's CPU time and counters with the run's obs::Counters delta. An
/// observer, when given, is attached to the engine for the run.
AnalysisResult run_tool(const Tool& tool, const php::Project& project,
                        Engine::Observer* observer = nullptr);

}  // namespace phpsafe
