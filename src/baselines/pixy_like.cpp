#include "baselines/analyzers.h"

namespace phpsafe {

Tool make_pixy_like_tool() {
    Tool tool;
    tool.name = "Pixy";
    tool.kb = make_pixy_era_kb();  // register_globals modeling, 2007 tables
    tool.options.tool_name = tool.name;
    tool.options.oop_support = false;
    tool.options.fail_on_oop_file = true;  // predates PHP 5 OOP
    tool.options.analyze_uncalled_functions = false;  // paper §V.A observation
    tool.options.analyze_closures = false;            // closures are PHP 5.3
    tool.options.max_include_depth = 16;
    return tool;
}

}  // namespace phpsafe
