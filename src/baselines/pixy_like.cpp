#include "baselines/analyzers.h"

namespace phpsafe {

Tool make_pixy_like_tool() {
    Tool tool;
    tool.name = "Pixy";
    tool.kb = make_pixy_era_kb();  // register_globals modeling, 2007 tables
    tool.options = AnalysisOptions::pixy_like();
    return tool;
}

}  // namespace phpsafe
