// Multi-CMS analysis (paper §VI future work): the same engine analyzes a
// Drupal module and a Joomla component once the CMS profile is loaded —
// "this is what it takes for phpSAFE to be able to analyze plugins from
// other CMSs" (§III.A).
//
//   $ ./build/examples/other_cms
#include <iostream>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/project.h"

using namespace phpsafe;

namespace {

void analyze_and_print(const char* title, const KnowledgeBase& kb,
                       php::Project& project) {
    DiagnosticSink sink;
    project.parse_all(sink);
    const AnalysisResult result =
        Analyzer::borrowing(kb, AnalysisOptions{}).scan(project).result;
    std::cout << "=== " << title << " ===\n";
    for (const Finding& finding : result.findings)
        std::cout << "  " << to_string(finding) << "\n";
    if (result.findings.empty()) std::cout << "  (no findings)\n";
    std::cout << "\n";
}

}  // namespace

int main() {
    // --- Drupal module -------------------------------------------------------
    php::Project drupal("drupal-module");
    drupal.add_file("guestbook.module", R"PHP(<?php
// SQLi: raw request value concatenated into db_query.
$name = $_GET['name'];
db_query("SELECT * FROM {guestbook} WHERE name = '$name'");

// Stored XSS: database rows printed without check_plain().
$result = db_query("SELECT * FROM {guestbook}");
while ($entry = db_fetch_object($result)) {
    print '<div class="entry">' . $entry->message . '</div>';
}

// Properly filtered output: no report expected.
print check_plain($_GET['title']);

// XSS through the messenger.
drupal_set_message('Saved ' . $_POST['note']);
)PHP");
    KnowledgeBase drupal_kb = make_generic_php_kb();
    add_drupal_profile(drupal_kb);
    analyze_and_print("Drupal module (with Drupal profile)", drupal_kb, drupal);

    php::Project drupal2("drupal-module");
    drupal2.add_file("guestbook.module", drupal.files().empty()
                                             ? ""
                                             : std::string(drupal.files()[0]
                                                               ->source->text()));
    analyze_and_print("Same module, generic profile only (flows are missed)",
                      make_generic_php_kb(), drupal2);

    // --- Joomla component ----------------------------------------------------
    php::Project joomla("joomla-component");
    joomla.add_file("controller.php", R"PHP(<?php
// Request data through the Joomla API, echoed raw.
$task = JRequest::getVar('task');
echo '<h2>' . $task . '</h2>';

// SQLi through the database object.
$db = JFactory::getDBO();
$id = JRequest::getVar('id');
$db->setQuery("DELETE FROM #__items WHERE id = $id");

// Escaped variant: no report expected.
$safe = $db->escape(JRequest::getVar('q'));
$db->setQuery("SELECT * FROM #__items WHERE title = '$safe'");

// Integer-coerced request value: no report expected.
echo JRequest::getInt('limit');
)PHP");
    KnowledgeBase joomla_kb = make_generic_php_kb();
    add_joomla_profile(joomla_kb);
    analyze_and_print("Joomla component (with Joomla profile)", joomla_kb, joomla);

    return 0;
}
