// Quickstart: analyze a small PHP snippet with phpSAFE and print the
// vulnerabilities with their data-flow traces.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "phpsafe.h"

int main() {
    // A vulnerable mini-plugin modeled on the paper's examples: an XSS via
    // $_POST (wp-symposium style) and a stored XSS through $wpdb rows
    // (mail-subscribe-list style).
    const char* kPluginCode = R"PHP(<?php
/* demo-plugin: main.php */
$img_path = $_POST['img_path'];
echo 'Created ' . $img_path . '.';

global $wpdb;
$subscribers = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
foreach ($subscribers as $row) {
    echo '<li>' . $row->sml_name . '</li>';
}

// Properly escaped output: no report expected.
echo '<div>' . htmlspecialchars($_GET['q']) . '</div>';
)PHP";

    phpsafe::php::Project project("demo-plugin");
    project.add_file("main.php", kPluginCode);
    phpsafe::DiagnosticSink parse_sink;
    project.parse_all(parse_sink);

    const phpsafe::Tool tool = phpsafe::make_phpsafe_tool();
    const phpsafe::AnalysisResult result = phpsafe::run_tool(tool, project);

    std::cout << "Analyzed " << result.files_total << " file(s) with "
              << result.tool << "; found " << result.findings.size()
              << " vulnerability(ies)\n\n";
    for (const phpsafe::Finding& finding : result.findings) {
        std::cout << to_string(finding) << "\n";
        for (const phpsafe::TaintStep& step : finding.trace)
            std::cout << "    " << to_string(step.location) << "  "
                      << step.description << "\n";
        std::cout << "\n";
    }
    return result.findings.empty() ? 1 : 0;
}
