// Tool comparison on a single plugin: runs phpSAFE, the RIPS-like and the
// Pixy-like analyzers side by side on one OOP-heavy plugin and shows why
// their results differ — the paper's §V.A observation, at human scale.
//
//   $ ./build/examples/tool_comparison
#include <iostream>

#include "baselines/analyzers.h"
#include "php/project.h"
#include "report/render.h"

using namespace phpsafe;

int main() {
    // A small plugin exercising every capability gap at once.
    php::Project project("comparison-demo");
    project.add_file("main.php", R"PHP(<?php
/* comparison-demo: stored XSS via $wpdb (OOP), reflected XSS, SQLi */
global $wpdb;

// 1. Stored XSS through WordPress objects: only an OOP-aware tool sees it.
$subscribers = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "list");
foreach ($subscribers as $row) {
    echo '<li>' . $row->email . '</li>';
}

// 2. Reflected XSS, plain procedural PHP: every tool should see it.
echo '<p>' . $_GET['msg'] . '</p>';

// 3. SQL injection through $wpdb->query: OOP sink.
$id = $_POST['id'];
$wpdb->query("DELETE FROM " . $wpdb->prefix . "list WHERE id = $id");

// 4. Output escaped with the WordPress API: knowing the CMS avoids the FP.
echo '<p>' . esc_html($_GET['q']) . '</p>';

// 5. Hook handler never called from plugin code (the CMS calls it).
function ajax_export() {
    echo $_GET['format'];
}
)PHP");
    DiagnosticSink sink;
    project.parse_all(sink);

    const Tool tools[] = {make_phpsafe_tool(), make_rips_like_tool(),
                          make_pixy_like_tool()};

    TextTable table;
    table.add_row({"Tool", "Findings", "XSS", "SQLi", "OOP-based",
                   "Failed files"});
    for (const Tool& tool : tools) {
        const AnalysisResult result = run_tool(tool, project);
        int oop = 0;
        for (const Finding& f : result.findings) oop += f.via_oop ? 1 : 0;
        table.add_row({tool.name, std::to_string(result.findings.size()),
                       std::to_string(result.count(VulnKind::kXss)),
                       std::to_string(result.count(VulnKind::kSqli)),
                       std::to_string(oop),
                       std::to_string(result.files_failed)});

        std::cout << "=== " << tool.name << " ===\n";
        if (result.findings.empty())
            std::cout << "  (no findings";
        for (const Finding& f : result.findings)
            std::cout << "  " << to_string(f) << "\n";
        if (result.findings.empty()) std::cout << ")\n";
        for (const Diagnostic& d : result.diagnostics)
            if (d.severity == Severity::kFatal)
                std::cout << "  ! " << to_string(d.location) << " " << d.message
                          << "\n";
        std::cout << "\n";
    }

    std::cout << "--- Summary ---\n" << table.to_string();
    std::cout << "\nExpected: phpSAFE reports the OOP flows (1, 3) and the "
                 "procedural ones (2, 5)\nwith no FP on (4); RIPS misses the "
                 "OOP flows and false-positives on (4);\nPixy aborts the file "
                 "entirely (OOP constructs).\n";
    return 0;
}
