// scan_directory: a small CLI that audits real PHP files on disk — the
// deployment mode the paper describes (§III: "automate the process of
// analyzing a large quantity of PHP scripts"). Loads every .php file under
// the given directory into one project (so includes resolve across files)
// and prints findings with traces.
//
//   $ ./build/examples/scan_directory <dir> [--tool phpsafe|rips|pixy]
//         [--no-trace] [--html report.html] [--json report.json]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "baselines/analyzers.h"
#include "php/project.h"
#include "report/export.h"

using namespace phpsafe;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: scan_directory <dir> [--tool phpsafe|rips|pixy] "
                     "[--no-trace]\n";
        return 2;
    }
    const fs::path root = argv[1];
    std::string tool_name = "phpsafe";
    std::string html_path, json_path;
    bool show_trace = true;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tool" && i + 1 < argc) tool_name = argv[++i];
        if (arg == "--html" && i + 1 < argc) html_path = argv[++i];
        if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
        if (arg == "--no-trace") show_trace = false;
    }

    Tool tool = make_phpsafe_tool();
    if (tool_name == "rips") tool = make_rips_like_tool();
    else if (tool_name == "pixy") tool = make_pixy_like_tool();
    else if (tool_name != "phpsafe") {
        std::cerr << "unknown tool '" << tool_name << "'\n";
        return 2;
    }

    if (!fs::exists(root)) {
        std::cerr << "no such directory: " << root << "\n";
        return 2;
    }

    php::Project project(root.filename().string());
    int file_count = 0;
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".php") continue;
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        project.add_file(fs::relative(entry.path(), root).generic_string(),
                         text.str());
        ++file_count;
    }
    if (file_count == 0) {
        std::cerr << "no .php files under " << root << "\n";
        return 1;
    }

    DiagnosticSink parse_sink;
    project.parse_all(parse_sink);
    const AnalysisResult result = run_tool(tool, project);

    std::cout << tool.name << ": analyzed " << file_count << " file(s), "
              << project.total_lines() << " lines in " << result.cpu_seconds
              << "s; " << result.findings.size() << " finding(s), "
              << result.files_failed << " file(s) failed\n\n";

    for (const Finding& finding : result.findings) {
        std::cout << to_string(finding) << "\n";
        if (show_trace)
            for (const TaintStep& step : finding.trace)
                std::cout << "    " << to_string(step.location) << "  "
                          << step.description << "\n";
    }

    if (!html_path.empty()) {
        std::ofstream(html_path) << render_html_report(result);
        std::cout << "\nHTML report written to " << html_path << "\n";
    }
    if (!json_path.empty()) {
        std::ofstream(json_path) << render_json_report(result);
        std::cout << "JSON report written to " << json_path << "\n";
    }
    return result.findings.empty() ? 0 : 1;
}
