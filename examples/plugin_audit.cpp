// Plugin audit: generates one synthetic WordPress plugin from the corpus
// generator, audits it with phpSAFE, and prints a full review report —
// per-file findings with data-flow traces, root-cause classification and a
// comparison against the seeded ground truth. This is the workflow of the
// paper's results-processing stage (§III.D): everything a security reviewer
// needs to trace a tainted variable back to its entry point.
//
//   $ ./build/examples/plugin_audit [plugin-index]
#include <iostream>
#include <map>

#include "phpsafe.h"

using namespace phpsafe;

int main(int argc, char** argv) {
    const int plugin_index = argc > 1 ? std::atoi(argv[1]) : 3;

    corpus::CorpusOptions options;
    options.scale = 0.4;
    options.filler_lines_2012 = 4000;
    options.filler_lines_2014 = 8000;
    const corpus::Corpus corpus = corpus::generate_corpus(options);
    if (plugin_index < 0 ||
        plugin_index >= static_cast<int>(corpus.plugins.size())) {
        std::cerr << "plugin index out of range (0.."
                  << corpus.plugins.size() - 1 << ")\n";
        return 2;
    }
    const corpus::GeneratedPlugin& plugin = corpus.plugins[plugin_index];
    const corpus::PluginVersionSource& version = plugin.v2014;

    std::cout << "=== Auditing " << plugin.name << " (version "
              << version.version << ", " << version.files.size() << " files, "
              << version.total_lines << " lines, "
              << (plugin.oop ? "OOP" : "procedural") << ") ===\n\n";

    DiagnosticSink parse_sink;
    const php::Project project =
        corpus::build_project(plugin, version, parse_sink);
    const Tool tool = make_phpsafe_tool();
    const AnalysisResult result = run_tool(tool, project);

    std::map<std::string, std::vector<const Finding*>> by_file;
    for (const Finding& finding : result.findings)
        by_file[finding.location.file].push_back(&finding);

    for (const auto& [file, findings] : by_file) {
        std::cout << file << " — " << findings.size() << " finding(s)\n";
        for (const Finding* finding : findings) {
            std::cout << "  [" << to_string(finding->kind) << "] line "
                      << finding->location.line << ", sink " << finding->sink
                      << ", vector " << to_string(finding->vector)
                      << (finding->via_oop ? " (via OOP)" : "") << "\n";
            std::cout << "    vulnerable expression: " << finding->variable << "\n";
            for (const TaintStep& step : finding->trace)
                std::cout << "      " << to_string(step.location) << "  "
                          << step.description << "\n";
        }
        std::cout << "\n";
    }

    const MatchResult match = match_findings(result.findings, version.truth);
    std::cout << "--- Audit summary ---\n";
    TextTable table;
    table.add_row({"Metric", "Value"});
    table.add_row({"Findings", std::to_string(result.findings.size())});
    table.add_row({"Confirmed (match seeded ground truth)",
                   std::to_string(match.tp())});
    table.add_row({"False alarms", std::to_string(match.fp())});
    table.add_row({"Seeded vulns missed", std::to_string(match.fn_oracle())});
    table.add_row({"Files failed", std::to_string(result.files_failed)});
    std::cout << table.to_string();

    if (!match.missed.empty()) {
        std::cout << "\nMissed seeded vulnerabilities (tool limitations):\n";
        for (const corpus::SeededVuln* vuln : match.missed)
            std::cout << "  " << vuln->id << " at " << vuln->file << ":"
                      << vuln->line << " (" << to_string(vuln->kind) << ")\n";
    }
    return 0;
}
