// Evolution study (paper §IV question 2 and §V.D): analyze both versions of
// every plugin, track which vulnerabilities disclosed in the 2012 round are
// still present in 2014, and report the fixing inertia per plugin — the
// paper's most alarming observation (42% of 2014 vulnerabilities had been
// disclosed to developers more than a year earlier).
//
//   $ ./build/examples/evolution_study
#include <iomanip>
#include <iostream>
#include <set>

#include "baselines/analyzers.h"
#include "corpus/generator.h"
#include "report/inertia.h"
#include "report/matching.h"
#include "report/render.h"

using namespace phpsafe;

int main() {
    corpus::CorpusOptions options;
    options.scale = 0.4;
    options.filler_lines_2012 = 6000;
    options.filler_lines_2014 = 12000;
    const corpus::Corpus corpus = corpus::generate_corpus(options);
    const Tool tool = make_phpsafe_tool();

    TextTable table;
    table.add_row({"Plugin", "2012 vulns", "2014 vulns", "carried", "fixed",
                   "new"});
    int total_2012 = 0, total_2014 = 0, total_carried = 0;
    std::set<std::string> detected_2014_all;
    std::vector<corpus::SeededVuln> truth_2014_all;

    for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
        DiagnosticSink sink_a, sink_b;
        const php::Project p2012 = corpus::build_project(plugin, plugin.v2012, sink_a);
        const php::Project p2014 = corpus::build_project(plugin, plugin.v2014, sink_b);
        const MatchResult m2012 =
            match_findings(run_tool(tool, p2012).findings, plugin.v2012.truth);
        const MatchResult m2014 =
            match_findings(run_tool(tool, p2014).findings, plugin.v2014.truth);

        int carried = 0;
        for (const std::string& id : m2014.detected_ids)
            if (m2012.detected_ids.count(id)) ++carried;
        const int fixed = static_cast<int>(m2012.detected_ids.size()) - carried;
        const int fresh = static_cast<int>(m2014.detected_ids.size()) - carried;

        if (!m2012.detected_ids.empty() || !m2014.detected_ids.empty()) {
            table.add_row({plugin.name,
                           std::to_string(m2012.detected_ids.size()),
                           std::to_string(m2014.detected_ids.size()),
                           std::to_string(carried), std::to_string(fixed),
                           std::to_string(fresh)});
        }
        total_2012 += static_cast<int>(m2012.detected_ids.size());
        total_2014 += static_cast<int>(m2014.detected_ids.size());
        total_carried += carried;
        detected_2014_all.insert(m2014.detected_ids.begin(),
                                 m2014.detected_ids.end());
        truth_2014_all.insert(truth_2014_all.end(), plugin.v2014.truth.begin(),
                              plugin.v2014.truth.end());
    }

    std::cout << "Per-plugin vulnerability evolution (phpSAFE detections)\n";
    std::cout << table.to_string();

    const InertiaReport inertia = analyze_inertia(truth_2014_all, detected_2014_all);
    std::cout << std::fixed << std::setprecision(0);
    std::cout << "\nTotals: 2012 " << total_2012 << " → 2014 " << total_2014
              << " (+" << (100.0 * (total_2014 - total_2012) / total_2012)
              << "%)\n";
    std::cout << "Carried over (disclosed >1 year before, still unfixed): "
              << inertia.carried_from_2012 << " = "
              << inertia.carried_fraction() * 100 << "% of the 2014 vulns "
              << "(paper: 42%)\n";
    std::cout << "Trivially exploitable among the carried ones: "
              << inertia.carried_easy_exploit << " ("
              << inertia.easy_fraction_of_carried() * 100 << "%)\n";
    return 0;
}
