// Evolution study (paper §IV question 2 and §V.D): analyze both versions of
// every plugin, track which vulnerabilities disclosed in the 2012 round are
// still present in 2014, and report the fixing inertia per plugin — the
// paper's most alarming observation (42% of 2014 vulnerabilities had been
// disclosed to developers more than a year earlier).
//
// The scans run through the AnalysisService, and the study is executed the
// way such audits run in practice: a first cold pass over every plugin
// version, then a re-audit pass over the same corpus (answered entirely
// from the service's result pool), then a spot re-scan of one patched file
// (answered with cached ASTs and seeded function summaries). The cache
// summary at the end shows the hit rates each pass achieved.
//
//   $ ./build/examples/evolution_study
#include <iomanip>
#include <iostream>
#include <set>

#include "corpus/generator.h"
#include "report/inertia.h"
#include "report/matching.h"
#include "report/render.h"
#include "service/service.h"
#include "util/timing.h"

using namespace phpsafe;

namespace {

service::ScanRequest to_request(const corpus::GeneratedPlugin& plugin,
                                const corpus::PluginVersionSource& version) {
    service::ScanRequest request;
    request.plugin = plugin.name + "@" + version.version;
    for (const auto& [name, text] : version.files)
        request.files.push_back({name, text});
    return request;
}

}  // namespace

int main() {
    corpus::CorpusOptions options;
    options.scale = 0.4;
    options.filler_lines_2012 = 6000;
    options.filler_lines_2014 = 12000;
    const corpus::Corpus corpus = corpus::generate_corpus(options);

    service::AnalysisService svc;

    // Cold pass: populate the caches.
    const double cold_start = wall_seconds();
    for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
        (void)svc.scan(to_request(plugin, plugin.v2012));
        (void)svc.scan(to_request(plugin, plugin.v2014));
    }
    const double cold_wall = wall_seconds() - cold_start;

    // Re-audit pass: the same corpus again. Every scan is answered from the
    // result pool; the findings below come from this pass — byte-identical
    // to the cold pass by the service's determinism guarantee.
    TextTable table;
    table.add_row({"Plugin", "2012 vulns", "2014 vulns", "carried", "fixed",
                   "new"});
    int total_2012 = 0, total_2014 = 0, total_carried = 0;
    int result_hits = 0;
    std::set<std::string> detected_2014_all;
    std::vector<corpus::SeededVuln> truth_2014_all;

    const double warm_start = wall_seconds();
    for (const corpus::GeneratedPlugin& plugin : corpus.plugins) {
        const service::ScanResponse r2012 =
            svc.scan(to_request(plugin, plugin.v2012));
        const service::ScanResponse r2014 =
            svc.scan(to_request(plugin, plugin.v2014));
        result_hits += r2012.from_result_cache + r2014.from_result_cache;
        const MatchResult m2012 =
            match_findings(r2012.result.findings, plugin.v2012.truth);
        const MatchResult m2014 =
            match_findings(r2014.result.findings, plugin.v2014.truth);

        int carried = 0;
        for (const std::string& id : m2014.detected_ids)
            if (m2012.detected_ids.count(id)) ++carried;
        const int fixed = static_cast<int>(m2012.detected_ids.size()) - carried;
        const int fresh = static_cast<int>(m2014.detected_ids.size()) - carried;

        if (!m2012.detected_ids.empty() || !m2014.detected_ids.empty()) {
            table.add_row({plugin.name,
                           std::to_string(m2012.detected_ids.size()),
                           std::to_string(m2014.detected_ids.size()),
                           std::to_string(carried), std::to_string(fixed),
                           std::to_string(fresh)});
        }
        total_2012 += static_cast<int>(m2012.detected_ids.size());
        total_2014 += static_cast<int>(m2014.detected_ids.size());
        total_carried += carried;
        detected_2014_all.insert(m2014.detected_ids.begin(),
                                 m2014.detected_ids.end());
        truth_2014_all.insert(truth_2014_all.end(), plugin.v2014.truth.begin(),
                              plugin.v2014.truth.end());
    }
    const double warm_wall = wall_seconds() - warm_start;

    std::cout << "Per-plugin vulnerability evolution (phpSAFE detections)\n";
    std::cout << table.to_string();

    const InertiaReport inertia = analyze_inertia(truth_2014_all, detected_2014_all);
    std::cout << std::fixed << std::setprecision(0);
    std::cout << "\nTotals: 2012 " << total_2012 << " → 2014 " << total_2014
              << " (+" << (100.0 * (total_2014 - total_2012) / total_2012)
              << "%)\n";
    std::cout << "Carried over (disclosed >1 year before, still unfixed): "
              << inertia.carried_from_2012 << " = "
              << inertia.carried_fraction() * 100 << "% of the 2014 vulns "
              << "(paper: 42%)\n";
    std::cout << "Trivially exploitable among the carried ones: "
              << inertia.carried_easy_exploit << " ("
              << inertia.easy_fraction_of_carried() * 100 << "%)\n";

    // Spot re-scan: one plugin gets a one-line patch; everything the patch
    // does not touch is inherited from the cache.
    service::ScanRequest patched = to_request(corpus.plugins.front(),
                                              corpus.plugins.front().v2014);
    patched.files[0].text += "\n// hotfix\n";
    const service::ScanResponse patch_scan = svc.scan(patched);

    const service::CacheStats cache = svc.cache_stats();
    std::cout << std::setprecision(1);
    std::cout << "\nAnalysis-service cache effectiveness:\n";
    std::cout << "  cold study pass:  " << cold_wall * 1000 << " ms\n";
    std::cout << "  re-audit pass:    " << warm_wall * 1000 << " ms ("
              << result_hits << "/" << 2 * corpus.plugins.size()
              << " scans served from the result pool, x"
              << (warm_wall > 0 ? cold_wall / warm_wall : 0) << ")\n";
    std::cout << "  patched re-scan:  " << patch_scan.files_reused
              << " parsed files reused, " << patch_scan.summaries_seeded
              << " summaries seeded, " << patch_scan.summaries_invalidated
              << " invalidated by the patch\n";
    const double file_rate =
        cache.file_hits + cache.file_misses
            ? 100.0 * cache.file_hits / (cache.file_hits + cache.file_misses)
            : 0.0;
    const double summary_rate =
        cache.summary_hits + cache.summary_misses
            ? 100.0 * cache.summary_hits /
                  (cache.summary_hits + cache.summary_misses)
            : 0.0;
    std::cout << "  file pool hit rate:    " << file_rate << "% ("
              << cache.file_hits << "/" << (cache.file_hits + cache.file_misses)
              << ")\n";
    std::cout << "  summary pool hit rate: " << summary_rate << "% ("
              << cache.summary_hits << "/"
              << (cache.summary_hits + cache.summary_misses) << ")\n";
    std::cout << "  bytes resident: " << cache.bytes_resident << "\n";
    return 0;
}
