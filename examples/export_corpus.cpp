// export_corpus: writes one generated plugin (or the whole corpus) to disk
// as real .php files plus a ground-truth manifest — so the synthetic
// dataset can be inspected, scanned with `scan_directory`, or fed to other
// PHP analysis tools for cross-checking.
//
//   $ ./build/examples/export_corpus /tmp/corpus [plugin-index] [2012|2014]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "corpus/generator.h"

using namespace phpsafe;
namespace fs = std::filesystem;

namespace {

void export_version(const fs::path& root, const corpus::GeneratedPlugin& plugin,
                    const corpus::PluginVersionSource& version) {
    const fs::path dir = root / (plugin.name + "-" + version.version);
    for (const auto& [name, text] : version.files) {
        const fs::path path = dir / name;
        fs::create_directories(path.parent_path());
        std::ofstream(path) << text;
    }
    // Ground-truth manifest, one line per seeded vulnerability.
    std::ofstream manifest(dir / "GROUND_TRUTH.tsv");
    manifest << "id\tkind\tfile\tline\tvector\tvia_oop\tcarried_over\n";
    for (const corpus::SeededVuln& vuln : version.truth) {
        manifest << vuln.id << '\t' << to_string(vuln.kind) << '\t' << vuln.file
                 << '\t' << vuln.line << '\t' << to_string(vuln.vector) << '\t'
                 << (vuln.via_oop ? 1 : 0) << '\t' << (vuln.carried_over ? 1 : 0)
                 << '\n';
    }
    std::cout << "wrote " << dir.string() << " (" << version.files.size()
              << " files, " << version.truth.size() << " seeded vulns)\n";
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: export_corpus <out-dir> [plugin-index] [2012|2014]\n";
        return 2;
    }
    const fs::path root = argv[1];
    const int index = argc > 2 ? std::atoi(argv[2]) : -1;
    const std::string version = argc > 3 ? argv[3] : "";

    corpus::CorpusOptions options;
    options.scale = 0.4;
    options.filler_lines_2012 = 6000;
    options.filler_lines_2014 = 12000;
    const corpus::Corpus corpus = corpus::generate_corpus(options);

    for (int p = 0; p < static_cast<int>(corpus.plugins.size()); ++p) {
        if (index >= 0 && p != index) continue;
        const corpus::GeneratedPlugin& plugin = corpus.plugins[p];
        if (version.empty() || version == "2012")
            export_version(root, plugin, plugin.v2012);
        if (version.empty() || version == "2014")
            export_version(root, plugin, plugin.v2014);
    }
    return 0;
}
