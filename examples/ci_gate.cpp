// ci_gate: phpSAFE as a CI quality gate — the paper's §III integration
// story ("the use of phpSAFE can be part of the software development
// lifecycle of a company"). Scans a directory of PHP sources; compares
// against a stored baseline of known findings (normalized history keys,
// see report/history.h) and fails only when NEW vulnerabilities appear —
// so a legacy plugin can adopt the gate without fixing its backlog first.
//
//   $ ci_gate <dir> --write-baseline .phpsafe-baseline   # accept status quo
//   $ ci_gate <dir> --baseline .phpsafe-baseline         # fail on new findings
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "baselines/analyzers.h"
#include "php/project.h"
#include "report/history.h"

using namespace phpsafe;
namespace fs = std::filesystem;

namespace {

php::Project load_directory(const fs::path& root) {
    php::Project project(root.filename().string());
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".php") continue;
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        project.add_file(fs::relative(entry.path(), root).generic_string(),
                         text.str());
    }
    DiagnosticSink sink;
    project.parse_all(sink);
    return project;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: ci_gate <dir> [--baseline FILE | --write-baseline "
                     "FILE]\n";
        return 2;
    }
    const fs::path root = argv[1];
    std::string baseline_path;
    bool write_baseline = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--baseline" && i + 1 < argc) baseline_path = argv[++i];
        if (arg == "--write-baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
            write_baseline = true;
        }
    }
    if (!fs::exists(root)) {
        std::cerr << "no such directory: " << root << "\n";
        return 2;
    }

    php::Project project = load_directory(root);
    const Tool tool = make_phpsafe_tool();
    const AnalysisResult result = run_tool(tool, project);

    if (write_baseline) {
        std::ofstream out(baseline_path);
        for (const Finding& finding : result.findings)
            out << history_key(finding) << "\n";
        std::cout << "baseline written: " << result.findings.size()
                  << " finding(s) recorded in " << baseline_path << "\n";
        return 0;
    }

    std::set<std::string> known;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty()) known.insert(line);
    }

    int fresh = 0;
    for (const Finding& finding : result.findings) {
        if (known.count(history_key(finding))) continue;
        ++fresh;
        std::cout << "NEW " << to_string(finding) << "\n";
        for (const TaintStep& step : finding.trace)
            std::cout << "      " << to_string(step.location) << "  "
                      << step.description << "\n";
    }
    const int suppressed = static_cast<int>(result.findings.size()) - fresh;
    std::cout << "\nci_gate: " << fresh << " new finding(s), " << suppressed
              << " baseline-suppressed, " << result.files_failed
              << " file(s) failed to analyze\n";
    return fresh == 0 ? 0 : 1;
}
