<?php
/* plugin-00 (2012) — templates/render.php */
$compat_probe_27 = new stdClass();

// Template for the theme section.
function header_markup_c27_f0() {
    return '<div class="wrap theme"><h1>Settings</h1></div>';
}
function default_settings_c27_f1() {
    return array(
        'theme_limit' => 10,
        'theme_order' => 'ASC',
        'theme_cache' => true,
    );
}

$name_s0_2 = $_GET['name'];
$out_s0_2 = '<li>';
$out_s0_2 .= $name_s0_2;
$out_s0_2 .= '</li>';
echo $out_s0_2;

function default_settings_c28_f0() {
    return array(
        'lang_limit' => 10,
        'lang_order' => 'ASC',
        'lang_cache' => true,
    );
}

echo '<h2>' . intval($_GET['color']) . '</h2>';

function format_count_c29_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}
