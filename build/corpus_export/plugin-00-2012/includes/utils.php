<?php
/* plugin-00 (2012) — includes/utils.php */

$labels_c30_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c30_f0 as $key_c30_f0 => $val_c30_f0) {
    echo '<option value="' . $key_c30_f0 . '">' . $val_c30_f0 . '</option>';
}
// Template for the msg section.
function header_markup_c30_f1() {
    return '<div class="wrap msg"><h1>Settings</h1></div>';
}

$msg_s0_0 = $_GET['msg'];
echo '<div class="msg">' . $msg_s0_0 . '</div>';

// Template for the title section.
function header_markup_c31_f0() {
    return '<div class="wrap title"><h1>Settings</h1></div>';
}
function default_settings_c31_f1() {
    return array(
        'title_limit' => 10,
        'title_order' => 'ASC',
        'title_cache' => true,
    );
}

if (isset($note_opt_s27_7)) { echo $note_opt_s27_7; }

function default_settings_c32_f0() {
    return array(
        'name_limit' => 10,
        'name_order' => 'ASC',
        'name_cache' => true,
    );
}

echo sprintf('%d of %d', $_GET['name'], 10);

function format_count_c33_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}
