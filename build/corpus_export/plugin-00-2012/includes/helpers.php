<?php
/* plugin-00 (2012) — includes/helpers.php */
$compat_probe_24 = new stdClass();

function default_settings_c24_f0() {
    return array(
        'slug_limit' => 10,
        'slug_order' => 'ASC',
        'slug_cache' => true,
    );
}

$title_s0_1 = $_GET['title'];
echo "<span>{$title_s0_1}</span>";

function format_count_c25_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}

echo '<td>' . intval($_GET['url']) . '</td>';

$labels_c26_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c26_f0 as $key_c26_f0 => $val_c26_f0) {
    echo '<option value="' . $key_c26_f0 . '">' . $val_c26_f0 . '</option>';
}
// Template for the tab section.
function header_markup_c26_f1() {
    return '<div class="wrap tab"><h1>Settings</h1></div>';
}
