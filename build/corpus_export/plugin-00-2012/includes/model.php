<?php
/* plugin-00 (2012) — includes/model.php */
$compat_probe_21 = new stdClass();

function format_count_c21_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}

global $wpdb;
$rows_s12_2 = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "events");
foreach ($rows_s12_2 as $row_s12_2) {
    echo '<li>' . $row_s12_2->name . '</li>';
}

$labels_c22_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c22_f0 as $key_c22_f0 => $val_c22_f0) {
    echo '<option value="' . $key_c22_f0 . '">' . $val_c22_f0 . '</option>';
}
// Template for the note section.
function header_markup_c22_f1() {
    return '<div class="wrap note"><h1>Settings</h1></div>';
}

$db_s20_0 = new mysqli('localhost', 'u', 'p', 'wp');
$msg_s20_0 = $_POST['msg'];
$db_s20_0->query("SELECT * FROM sml WHERE msg = '" . $msg_s20_0 . "'");

// Template for the text section.
function header_markup_c23_f0() {
    return '<div class="wrap text"><h1>Settings</h1></div>';
}
function default_settings_c23_f1() {
    return array(
        'text_limit' => 10,
        'text_order' => 'ASC',
        'text_cache' => true,
    );
}
