<?php
/* plugin-00 (2012) — deep/chain-5.php */
$compat_probe_55 = new stdClass();
require_once dirname(__FILE__) . '/chain-6.php';

// Template for the page section.
function header_markup_c55_f0() {
    return '<div class="wrap page"><h1>Settings</h1></div>';
}
function default_settings_c55_f1() {
    return array(
        'page_limit' => 10,
        'page_order' => 'ASC',
        'page_cache' => true,
    );
}
