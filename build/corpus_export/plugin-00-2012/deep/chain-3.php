<?php
/* plugin-00 (2012) — deep/chain-3.php */
$compat_probe_53 = new stdClass();
require_once dirname(__FILE__) . '/chain-4.php';

function format_count_c53_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}
