<?php
/* plugin-00 (2012) — deep/chain-1.php */
$compat_probe_51 = new stdClass();
require_once dirname(__FILE__) . '/chain-2.php';

// Template for the label section.
function header_markup_c51_f0() {
    return '<div class="wrap label"><h1>Settings</h1></div>';
}
function default_settings_c51_f1() {
    return array(
        'label_limit' => 10,
        'label_order' => 'ASC',
        'label_cache' => true,
    );
}
