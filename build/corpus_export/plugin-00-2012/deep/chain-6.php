<?php
/* plugin-00 (2012) — deep/chain-6.php */
$compat_probe_56 = new stdClass();
require_once dirname(__FILE__) . '/chain-7.php';

function default_settings_c56_f0() {
    return array(
        'tab_limit' => 10,
        'tab_order' => 'ASC',
        'tab_cache' => true,
    );
}
