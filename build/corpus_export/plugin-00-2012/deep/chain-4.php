<?php
/* plugin-00 (2012) — deep/chain-4.php */
$compat_probe_54 = new stdClass();
require_once dirname(__FILE__) . '/chain-5.php';

$labels_c54_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c54_f0 as $key_c54_f0 => $val_c54_f0) {
    echo '<option value="' . $key_c54_f0 . '">' . $val_c54_f0 . '</option>';
}
// Template for the slug section.
function header_markup_c54_f1() {
    return '<div class="wrap slug"><h1>Settings</h1></div>';
}
