<?php
/* plugin-00 (2012) — deep/chain-2.php */
$compat_probe_52 = new stdClass();
require_once dirname(__FILE__) . '/chain-3.php';

function default_settings_c52_f0() {
    return array(
        'note_limit' => 10,
        'note_order' => 'ASC',
        'note_cache' => true,
    );
}
