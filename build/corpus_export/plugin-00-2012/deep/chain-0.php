<?php
/* plugin-00 (2012) — deep/chain-0.php */
$compat_probe_34 = new stdClass();
require_once dirname(__FILE__) . '/chain-1.php';

$labels_c34_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c34_f0 as $key_c34_f0 => $val_c34_f0) {
    echo '<option value="' . $key_c34_f0 . '">' . $val_c34_f0 . '</option>';
}
// Template for the url section.
function header_markup_c34_f1() {
    return '<div class="wrap url"><h1>Settings</h1></div>';
}

$res_s8_0 = mysql_query("SELECT * FROM sml_legacy");
$row_s8_0 = mysql_fetch_assoc($res_s8_0);
echo '<div>' . $row_s8_0['msg'] . '</div>';

// Template for the color section.
function header_markup_c35_f0() {
    return '<div class="wrap color"><h1>Settings</h1></div>';
}
function default_settings_c35_f1() {
    return array(
        'color_limit' => 10,
        'color_order' => 'ASC',
        'color_cache' => true,
    );
}

$res_s8_1 = mysql_query("SELECT * FROM posts_ext_legacy");
$row_s8_1 = mysql_fetch_assoc($res_s8_1);
echo '<span>' . $row_s8_1['title'] . '</span>';

function default_settings_c36_f0() {
    return array(
        'label_limit' => 10,
        'label_order' => 'ASC',
        'label_cache' => true,
    );
}

$res_s8_2 = mysql_query("SELECT * FROM events_legacy");
$row_s8_2 = mysql_fetch_assoc($res_s8_2);
echo '<li>' . $row_s8_2['name'] . '</li>';

function format_count_c37_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}

$res_s8_3 = mysql_query("SELECT * FROM subscribers_legacy");
$row_s8_3 = mysql_fetch_assoc($res_s8_3);
echo '<p>' . $row_s8_3['email'] . '</p>';

$labels_c38_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c38_f0 as $key_c38_f0 => $val_c38_f0) {
    echo '<option value="' . $key_c38_f0 . '">' . $val_c38_f0 . '</option>';
}
// Template for the text section.
function header_markup_c38_f1() {
    return '<div class="wrap text"><h1>Settings</h1></div>';
}

$res_s8_4 = mysql_query("SELECT * FROM albums_legacy");
$row_s8_4 = mysql_fetch_assoc($res_s8_4);
echo '<td>' . $row_s8_4['url'] . '</td>';

// Template for the slug section.
function header_markup_c39_f0() {
    return '<div class="wrap slug"><h1>Settings</h1></div>';
}
function default_settings_c39_f1() {
    return array(
        'slug_limit' => 10,
        'slug_order' => 'ASC',
        'slug_cache' => true,
    );
}

$res_s8_5 = mysql_query("SELECT * FROM forms_legacy");
$row_s8_5 = mysql_fetch_assoc($res_s8_5);
echo '<h2>' . $row_s8_5['color'] . '</h2>';

function default_settings_c40_f0() {
    return array(
        'page_limit' => 10,
        'page_order' => 'ASC',
        'page_cache' => true,
    );
}

$res_s8_6 = mysql_query("SELECT * FROM stats_legacy");
$row_s8_6 = mysql_fetch_assoc($res_s8_6);
echo '<strong>' . $row_s8_6['label'] . '</strong>';

function format_count_c41_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}

$res_s8_7 = mysql_query("SELECT * FROM votes_legacy");
$row_s8_7 = mysql_fetch_assoc($res_s8_7);
echo '<div>' . $row_s8_7['note'] . '</div>';

$labels_c42_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c42_f0 as $key_c42_f0 => $val_c42_f0) {
    echo '<option value="' . $key_c42_f0 . '">' . $val_c42_f0 . '</option>';
}
// Template for the theme section.
function header_markup_c42_f1() {
    return '<div class="wrap theme"><h1>Settings</h1></div>';
}

$res_s8_8 = mysql_query("SELECT * FROM sml_legacy");
$row_s8_8 = mysql_fetch_assoc($res_s8_8);
echo '<span>' . $row_s8_8['text'] . '</span>';

// Template for the lang section.
function header_markup_c43_f0() {
    return '<div class="wrap lang"><h1>Settings</h1></div>';
}
function default_settings_c43_f1() {
    return array(
        'lang_limit' => 10,
        'lang_order' => 'ASC',
        'lang_cache' => true,
    );
}

$res_s8_9 = mysql_query("SELECT * FROM posts_ext_legacy");
$row_s8_9 = mysql_fetch_assoc($res_s8_9);
echo '<li>' . $row_s8_9['slug'] . '</li>';

function default_settings_c44_f0() {
    return array(
        'img_path_limit' => 10,
        'img_path_order' => 'ASC',
        'img_path_cache' => true,
    );
}

$res_s8_10 = mysql_query("SELECT * FROM events_legacy");
$row_s8_10 = mysql_fetch_assoc($res_s8_10);
echo '<p>' . $row_s8_10['page'] . '</p>';

function format_count_c45_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}

$res_s8_11 = mysql_query("SELECT * FROM subscribers_legacy");
$row_s8_11 = mysql_fetch_assoc($res_s8_11);
echo '<td>' . $row_s8_11['tab'] . '</td>';

$labels_c46_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c46_f0 as $key_c46_f0 => $val_c46_f0) {
    echo '<option value="' . $key_c46_f0 . '">' . $val_c46_f0 . '</option>';
}
// Template for the title section.
function header_markup_c46_f1() {
    return '<div class="wrap title"><h1>Settings</h1></div>';
}

$res_s8_12 = mysql_query("SELECT * FROM albums_legacy");
$row_s8_12 = mysql_fetch_assoc($res_s8_12);
echo '<h2>' . $row_s8_12['theme'] . '</h2>';

// Template for the name section.
function header_markup_c47_f0() {
    return '<div class="wrap name"><h1>Settings</h1></div>';
}
function default_settings_c47_f1() {
    return array(
        'name_limit' => 10,
        'name_order' => 'ASC',
        'name_cache' => true,
    );
}

$res_s8_13 = mysql_query("SELECT * FROM forms_legacy");
$row_s8_13 = mysql_fetch_assoc($res_s8_13);
echo '<strong>' . $row_s8_13['lang'] . '</strong>';

function default_settings_c48_f0() {
    return array(
        'email_limit' => 10,
        'email_order' => 'ASC',
        'email_cache' => true,
    );
}

$res_s8_14 = mysql_query("SELECT * FROM stats_legacy");
$row_s8_14 = mysql_fetch_assoc($res_s8_14);
echo '<div>' . $row_s8_14['img_path'] . '</div>';

function format_count_c49_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}

$res_s8_15 = mysql_query("SELECT * FROM votes_legacy");
$row_s8_15 = mysql_fetch_assoc($res_s8_15);
echo '<span>' . $row_s8_15['msg'] . '</span>';

$labels_c50_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c50_f0 as $key_c50_f0 => $val_c50_f0) {
    echo '<option value="' . $key_c50_f0 . '">' . $val_c50_f0 . '</option>';
}
// Template for the color section.
function header_markup_c50_f1() {
    return '<div class="wrap color"><h1>Settings</h1></div>';
}
