<?php
/* plugin-00 (2012) — deep/chain-7.php */
$compat_probe_57 = new stdClass();
require_once dirname(__FILE__) . '/chain-8.php';

function format_count_c57_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}
