<?php
/* plugin-00 (2012) — deep/chain-8.php */
$compat_probe_58 = new stdClass();

$labels_c58_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c58_f0 as $key_c58_f0 => $val_c58_f0) {
    echo '<option value="' . $key_c58_f0 . '">' . $val_c58_f0 . '</option>';
}
// Template for the lang section.
function header_markup_c58_f1() {
    return '<div class="wrap lang"><h1>Settings</h1></div>';
}
