<?php
/* plugin-00 (2012) — main.php */
$compat_probe_15 = new stdClass();

// Template for the msg section.
function header_markup_c15_f0() {
    return '<div class="wrap msg"><h1>Settings</h1></div>';
}
function default_settings_c15_f1() {
    return array(
        'msg_limit' => 10,
        'msg_order' => 'ASC',
        'msg_cache' => true,
    );
}

global $wpdb;
$rows_s12_0 = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
foreach ($rows_s12_0 as $row_s12_0) {
    echo '<li>' . $row_s12_0->msg . '</li>';
}

function default_settings_c16_f0() {
    return array(
        'title_limit' => 10,
        'title_order' => 'ASC',
        'title_cache' => true,
    );
}

global $wpdb;
$id_s18_0 = $_GET['id'];
$wpdb->query("DELETE FROM " . $wpdb->prefix . "sml" . " WHERE id = $id_s18_0");

function format_count_c17_f0($count) {
    $count = (int) $count;
    if ($count < 0) { $count = 0; }
    return number_format($count);
}
