<?php
/* plugin-00 (2012) — admin/admin.php */
$compat_probe_18 = new stdClass();

$labels_c18_f0 = array('one' => 'One', 'two' => 'Two', 'three' => 'Three');
foreach ($labels_c18_f0 as $key_c18_f0 => $val_c18_f0) {
    echo '<option value="' . $key_c18_f0 . '">' . $val_c18_f0 . '</option>';
}
// Template for the email section.
function header_markup_c18_f1() {
    return '<div class="wrap email"><h1>Settings</h1></div>';
}

global $wpdb;
$rows_s12_1 = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "posts_ext");
foreach ($rows_s12_1 as $row_s12_1) {
    echo '<li>' . $row_s12_1->title . '</li>';
}

// Template for the url section.
function header_markup_c19_f0() {
    return '<div class="wrap url"><h1>Settings</h1></div>';
}
function default_settings_c19_f1() {
    return array(
        'url_limit' => 10,
        'url_order' => 'ASC',
        'url_cache' => true,
    );
}

global $wpdb;
$id_s18_1 = $_GET['id'];
$wpdb->query("DELETE FROM " . $wpdb->prefix . "posts_ext" . " WHERE id = $id_s18_1");

function default_settings_c20_f0() {
    return array(
        'color_limit' => 10,
        'color_order' => 'ASC',
        'color_cache' => true,
    );
}
