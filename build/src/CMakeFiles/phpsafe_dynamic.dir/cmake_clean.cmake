file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_dynamic.dir/dynamic/interpreter.cpp.o"
  "CMakeFiles/phpsafe_dynamic.dir/dynamic/interpreter.cpp.o.d"
  "CMakeFiles/phpsafe_dynamic.dir/dynamic/validator.cpp.o"
  "CMakeFiles/phpsafe_dynamic.dir/dynamic/validator.cpp.o.d"
  "CMakeFiles/phpsafe_dynamic.dir/dynamic/value.cpp.o"
  "CMakeFiles/phpsafe_dynamic.dir/dynamic/value.cpp.o.d"
  "libphpsafe_dynamic.a"
  "libphpsafe_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
