file(REMOVE_RECURSE
  "libphpsafe_dynamic.a"
)
