
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamic/interpreter.cpp" "src/CMakeFiles/phpsafe_dynamic.dir/dynamic/interpreter.cpp.o" "gcc" "src/CMakeFiles/phpsafe_dynamic.dir/dynamic/interpreter.cpp.o.d"
  "/root/repo/src/dynamic/validator.cpp" "src/CMakeFiles/phpsafe_dynamic.dir/dynamic/validator.cpp.o" "gcc" "src/CMakeFiles/phpsafe_dynamic.dir/dynamic/validator.cpp.o.d"
  "/root/repo/src/dynamic/value.cpp" "src/CMakeFiles/phpsafe_dynamic.dir/dynamic/value.cpp.o" "gcc" "src/CMakeFiles/phpsafe_dynamic.dir/dynamic/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phpsafe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_php.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
