# Empty compiler generated dependencies file for phpsafe_dynamic.
# This may be replaced when dependencies are built.
