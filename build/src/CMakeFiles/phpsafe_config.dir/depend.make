# Empty dependencies file for phpsafe_config.
# This may be replaced when dependencies are built.
