file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_config.dir/config/cms_profiles.cpp.o"
  "CMakeFiles/phpsafe_config.dir/config/cms_profiles.cpp.o.d"
  "CMakeFiles/phpsafe_config.dir/config/knowledge.cpp.o"
  "CMakeFiles/phpsafe_config.dir/config/knowledge.cpp.o.d"
  "CMakeFiles/phpsafe_config.dir/config/profiles.cpp.o"
  "CMakeFiles/phpsafe_config.dir/config/profiles.cpp.o.d"
  "libphpsafe_config.a"
  "libphpsafe_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
