file(REMOVE_RECURSE
  "libphpsafe_config.a"
)
