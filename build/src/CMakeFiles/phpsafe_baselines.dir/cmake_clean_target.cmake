file(REMOVE_RECURSE
  "libphpsafe_baselines.a"
)
