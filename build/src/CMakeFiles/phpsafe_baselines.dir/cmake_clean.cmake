file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_baselines.dir/baselines/pixy_like.cpp.o"
  "CMakeFiles/phpsafe_baselines.dir/baselines/pixy_like.cpp.o.d"
  "CMakeFiles/phpsafe_baselines.dir/baselines/rips_like.cpp.o"
  "CMakeFiles/phpsafe_baselines.dir/baselines/rips_like.cpp.o.d"
  "libphpsafe_baselines.a"
  "libphpsafe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
