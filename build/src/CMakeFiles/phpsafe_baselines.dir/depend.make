# Empty dependencies file for phpsafe_baselines.
# This may be replaced when dependencies are built.
