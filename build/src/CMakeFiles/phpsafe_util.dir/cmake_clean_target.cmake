file(REMOVE_RECURSE
  "libphpsafe_util.a"
)
