# Empty dependencies file for phpsafe_util.
# This may be replaced when dependencies are built.
