file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_util.dir/util/diagnostics.cpp.o"
  "CMakeFiles/phpsafe_util.dir/util/diagnostics.cpp.o.d"
  "CMakeFiles/phpsafe_util.dir/util/source.cpp.o"
  "CMakeFiles/phpsafe_util.dir/util/source.cpp.o.d"
  "CMakeFiles/phpsafe_util.dir/util/strings.cpp.o"
  "CMakeFiles/phpsafe_util.dir/util/strings.cpp.o.d"
  "libphpsafe_util.a"
  "libphpsafe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
