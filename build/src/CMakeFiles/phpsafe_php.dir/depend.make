# Empty dependencies file for phpsafe_php.
# This may be replaced when dependencies are built.
