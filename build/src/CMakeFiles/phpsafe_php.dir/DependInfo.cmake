
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/php/ast.cpp" "src/CMakeFiles/phpsafe_php.dir/php/ast.cpp.o" "gcc" "src/CMakeFiles/phpsafe_php.dir/php/ast.cpp.o.d"
  "/root/repo/src/php/lexer.cpp" "src/CMakeFiles/phpsafe_php.dir/php/lexer.cpp.o" "gcc" "src/CMakeFiles/phpsafe_php.dir/php/lexer.cpp.o.d"
  "/root/repo/src/php/parser.cpp" "src/CMakeFiles/phpsafe_php.dir/php/parser.cpp.o" "gcc" "src/CMakeFiles/phpsafe_php.dir/php/parser.cpp.o.d"
  "/root/repo/src/php/project.cpp" "src/CMakeFiles/phpsafe_php.dir/php/project.cpp.o" "gcc" "src/CMakeFiles/phpsafe_php.dir/php/project.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phpsafe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
