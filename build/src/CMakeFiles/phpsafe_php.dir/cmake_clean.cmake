file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_php.dir/php/ast.cpp.o"
  "CMakeFiles/phpsafe_php.dir/php/ast.cpp.o.d"
  "CMakeFiles/phpsafe_php.dir/php/lexer.cpp.o"
  "CMakeFiles/phpsafe_php.dir/php/lexer.cpp.o.d"
  "CMakeFiles/phpsafe_php.dir/php/parser.cpp.o"
  "CMakeFiles/phpsafe_php.dir/php/parser.cpp.o.d"
  "CMakeFiles/phpsafe_php.dir/php/project.cpp.o"
  "CMakeFiles/phpsafe_php.dir/php/project.cpp.o.d"
  "libphpsafe_php.a"
  "libphpsafe_php.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_php.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
