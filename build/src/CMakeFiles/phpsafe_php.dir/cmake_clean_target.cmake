file(REMOVE_RECURSE
  "libphpsafe_php.a"
)
