# Empty dependencies file for phpsafe_core.
# This may be replaced when dependencies are built.
