file(REMOVE_RECURSE
  "libphpsafe_core.a"
)
