file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_core.dir/core/engine.cpp.o"
  "CMakeFiles/phpsafe_core.dir/core/engine.cpp.o.d"
  "CMakeFiles/phpsafe_core.dir/core/finding.cpp.o"
  "CMakeFiles/phpsafe_core.dir/core/finding.cpp.o.d"
  "CMakeFiles/phpsafe_core.dir/core/oop.cpp.o"
  "CMakeFiles/phpsafe_core.dir/core/oop.cpp.o.d"
  "CMakeFiles/phpsafe_core.dir/core/summaries.cpp.o"
  "CMakeFiles/phpsafe_core.dir/core/summaries.cpp.o.d"
  "CMakeFiles/phpsafe_core.dir/core/taint.cpp.o"
  "CMakeFiles/phpsafe_core.dir/core/taint.cpp.o.d"
  "libphpsafe_core.a"
  "libphpsafe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
