
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/phpsafe_core.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/phpsafe_core.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/finding.cpp" "src/CMakeFiles/phpsafe_core.dir/core/finding.cpp.o" "gcc" "src/CMakeFiles/phpsafe_core.dir/core/finding.cpp.o.d"
  "/root/repo/src/core/oop.cpp" "src/CMakeFiles/phpsafe_core.dir/core/oop.cpp.o" "gcc" "src/CMakeFiles/phpsafe_core.dir/core/oop.cpp.o.d"
  "/root/repo/src/core/summaries.cpp" "src/CMakeFiles/phpsafe_core.dir/core/summaries.cpp.o" "gcc" "src/CMakeFiles/phpsafe_core.dir/core/summaries.cpp.o.d"
  "/root/repo/src/core/taint.cpp" "src/CMakeFiles/phpsafe_core.dir/core/taint.cpp.o" "gcc" "src/CMakeFiles/phpsafe_core.dir/core/taint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phpsafe_php.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
