file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_report.dir/report/evaluation.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/evaluation.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/export.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/export.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/history.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/history.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/inertia.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/inertia.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/matching.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/matching.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/metrics.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/metrics.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/overlap.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/overlap.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/render.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/render.cpp.o.d"
  "CMakeFiles/phpsafe_report.dir/report/rootcause.cpp.o"
  "CMakeFiles/phpsafe_report.dir/report/rootcause.cpp.o.d"
  "libphpsafe_report.a"
  "libphpsafe_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
