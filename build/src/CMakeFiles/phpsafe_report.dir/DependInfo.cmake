
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/evaluation.cpp" "src/CMakeFiles/phpsafe_report.dir/report/evaluation.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/evaluation.cpp.o.d"
  "/root/repo/src/report/export.cpp" "src/CMakeFiles/phpsafe_report.dir/report/export.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/export.cpp.o.d"
  "/root/repo/src/report/history.cpp" "src/CMakeFiles/phpsafe_report.dir/report/history.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/history.cpp.o.d"
  "/root/repo/src/report/inertia.cpp" "src/CMakeFiles/phpsafe_report.dir/report/inertia.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/inertia.cpp.o.d"
  "/root/repo/src/report/matching.cpp" "src/CMakeFiles/phpsafe_report.dir/report/matching.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/matching.cpp.o.d"
  "/root/repo/src/report/metrics.cpp" "src/CMakeFiles/phpsafe_report.dir/report/metrics.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/metrics.cpp.o.d"
  "/root/repo/src/report/overlap.cpp" "src/CMakeFiles/phpsafe_report.dir/report/overlap.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/overlap.cpp.o.d"
  "/root/repo/src/report/render.cpp" "src/CMakeFiles/phpsafe_report.dir/report/render.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/render.cpp.o.d"
  "/root/repo/src/report/rootcause.cpp" "src/CMakeFiles/phpsafe_report.dir/report/rootcause.cpp.o" "gcc" "src/CMakeFiles/phpsafe_report.dir/report/rootcause.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phpsafe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_php.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
