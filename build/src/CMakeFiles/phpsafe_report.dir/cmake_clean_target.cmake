file(REMOVE_RECURSE
  "libphpsafe_report.a"
)
