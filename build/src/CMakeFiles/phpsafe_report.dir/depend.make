# Empty dependencies file for phpsafe_report.
# This may be replaced when dependencies are built.
