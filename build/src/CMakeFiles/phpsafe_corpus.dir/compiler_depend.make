# Empty compiler generated dependencies file for phpsafe_corpus.
# This may be replaced when dependencies are built.
