file(REMOVE_RECURSE
  "libphpsafe_corpus.a"
)
