file(REMOVE_RECURSE
  "CMakeFiles/phpsafe_corpus.dir/corpus/generator.cpp.o"
  "CMakeFiles/phpsafe_corpus.dir/corpus/generator.cpp.o.d"
  "CMakeFiles/phpsafe_corpus.dir/corpus/patterns.cpp.o"
  "CMakeFiles/phpsafe_corpus.dir/corpus/patterns.cpp.o.d"
  "libphpsafe_corpus.a"
  "libphpsafe_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phpsafe_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
