
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/cms_profiles_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/cms_profiles_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/cms_profiles_test.cpp.o.d"
  "/root/repo/tests/config_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/config_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/config_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/dynamic_value_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/dynamic_value_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/dynamic_value_test.cpp.o.d"
  "/root/repo/tests/engine_semantics_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/engine_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/engine_semantics_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/evaluation_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/evaluation_test.cpp.o.d"
  "/root/repo/tests/export_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/export_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/export_test.cpp.o.d"
  "/root/repo/tests/golden_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/golden_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/golden_test.cpp.o.d"
  "/root/repo/tests/history_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/history_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/history_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/interpreter_semantics_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/interpreter_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/interpreter_semantics_test.cpp.o.d"
  "/root/repo/tests/interpreter_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/interpreter_test.cpp.o.d"
  "/root/repo/tests/lexer_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/oop_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/oop_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/oop_test.cpp.o.d"
  "/root/repo/tests/parser_edge_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/parser_edge_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/parser_edge_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/project_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/project_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/project_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/stats_walk_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/stats_walk_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/stats_walk_test.cpp.o.d"
  "/root/repo/tests/taint_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/taint_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/taint_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/validator_test.cpp" "tests/CMakeFiles/phpsafe_tests.dir/validator_test.cpp.o" "gcc" "tests/CMakeFiles/phpsafe_tests.dir/validator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phpsafe_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_php.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
