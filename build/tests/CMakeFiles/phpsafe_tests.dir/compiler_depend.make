# Empty compiler generated dependencies file for phpsafe_tests.
# This may be replaced when dependencies are built.
