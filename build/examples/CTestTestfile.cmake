# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tool_comparison "/root/repo/build/examples/tool_comparison")
set_tests_properties(example_tool_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_exploit_confirmation "/root/repo/build/examples/exploit_confirmation")
set_tests_properties(example_exploit_confirmation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_evolution_study "/root/repo/build/examples/evolution_study")
set_tests_properties(example_evolution_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plugin_audit "/root/repo/build/examples/plugin_audit" "3")
set_tests_properties(example_plugin_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_other_cms "/root/repo/build/examples/other_cms")
set_tests_properties(example_other_cms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_corpus "/root/repo/build/examples/export_corpus" "/root/repo/build/corpus_export" "0" "2012")
set_tests_properties(example_export_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
