# Empty compiler generated dependencies file for ci_gate.
# This may be replaced when dependencies are built.
