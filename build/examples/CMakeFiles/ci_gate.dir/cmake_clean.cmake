file(REMOVE_RECURSE
  "CMakeFiles/ci_gate.dir/ci_gate.cpp.o"
  "CMakeFiles/ci_gate.dir/ci_gate.cpp.o.d"
  "ci_gate"
  "ci_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ci_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
