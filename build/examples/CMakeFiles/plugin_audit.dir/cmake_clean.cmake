file(REMOVE_RECURSE
  "CMakeFiles/plugin_audit.dir/plugin_audit.cpp.o"
  "CMakeFiles/plugin_audit.dir/plugin_audit.cpp.o.d"
  "plugin_audit"
  "plugin_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
