# Empty dependencies file for plugin_audit.
# This may be replaced when dependencies are built.
