
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tool_comparison.cpp" "examples/CMakeFiles/tool_comparison.dir/tool_comparison.cpp.o" "gcc" "examples/CMakeFiles/tool_comparison.dir/tool_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phpsafe_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_php.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phpsafe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
