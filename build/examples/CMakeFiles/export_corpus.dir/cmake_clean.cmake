file(REMOVE_RECURSE
  "CMakeFiles/export_corpus.dir/export_corpus.cpp.o"
  "CMakeFiles/export_corpus.dir/export_corpus.cpp.o.d"
  "export_corpus"
  "export_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
