# Empty dependencies file for export_corpus.
# This may be replaced when dependencies are built.
