# Empty compiler generated dependencies file for scan_directory.
# This may be replaced when dependencies are built.
