file(REMOVE_RECURSE
  "CMakeFiles/scan_directory.dir/scan_directory.cpp.o"
  "CMakeFiles/scan_directory.dir/scan_directory.cpp.o.d"
  "scan_directory"
  "scan_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
