file(REMOVE_RECURSE
  "CMakeFiles/other_cms.dir/other_cms.cpp.o"
  "CMakeFiles/other_cms.dir/other_cms.cpp.o.d"
  "other_cms"
  "other_cms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/other_cms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
