# Empty dependencies file for other_cms.
# This may be replaced when dependencies are built.
