file(REMOVE_RECURSE
  "CMakeFiles/bench_inertia.dir/bench_inertia.cpp.o"
  "CMakeFiles/bench_inertia.dir/bench_inertia.cpp.o.d"
  "bench_inertia"
  "bench_inertia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inertia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
