# Empty compiler generated dependencies file for bench_inertia.
# This may be replaced when dependencies are built.
