file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_overlap.dir/bench_fig2_overlap.cpp.o"
  "CMakeFiles/bench_fig2_overlap.dir/bench_fig2_overlap.cpp.o.d"
  "bench_fig2_overlap"
  "bench_fig2_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
