# Empty dependencies file for bench_fig2_overlap.
# This may be replaced when dependencies are built.
