// Dynamic-validator tests: static findings replayed with attack payloads.
// True vulnerabilities must be confirmed; runtime-guarded false alarms
// (is_numeric + exit, whitelists, casts) must be rejected — static analysis
// proposes, dynamic execution disposes.
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "corpus/patterns.h"
#include "dynamic/validator.h"
#include "php/project.h"

namespace phpsafe::dynamic {
namespace {

struct Pipeline {
    php::Project project{"v"};
    AnalysisResult analysis;
};

Pipeline analyze(const std::string& code) {
    Pipeline p;
    p.project.add_file("main.php", code);
    DiagnosticSink sink;
    p.project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    p.analysis =
        Analyzer::borrowing(tool.kb, tool.options).scan(p.project).result;
    return p;
}

TEST(ValidatorTest, ReflectedXssConfirmed) {
    Pipeline p = analyze("<?php echo '<p>' . $_GET['msg'] . '</p>';");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    Validator validator(p.project);
    const ValidationResult v = validator.validate(p.analysis.findings[0]);
    EXPECT_TRUE(v.confirmed);
    EXPECT_NE(v.evidence.find("<script>"), std::string::npos);
}

TEST(ValidatorTest, SanitizedEchoNotConfirmed) {
    // Force a fake finding on properly sanitized code: the validator must
    // reject it (the payload arrives escaped).
    Pipeline p = analyze("<?php echo htmlspecialchars($_GET['msg']);");
    EXPECT_TRUE(p.analysis.findings.empty());
    Finding fake;
    fake.kind = VulnKind::kXss;
    fake.location = {"main.php", 1};
    fake.vector = InputVector::kGet;
    Validator validator(p.project);
    EXPECT_FALSE(validator.validate(fake).confirmed);
}

TEST(ValidatorTest, StoredXssThroughWpdbConfirmed) {
    Pipeline p = analyze(
        "<?php global $wpdb;\n"
        "$rows = $wpdb->get_results(\"SELECT * FROM t\");\n"
        "foreach ($rows as $row) { echo '<li>' . $row->name . '</li>'; }");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    EXPECT_EQ(p.analysis.findings[0].vector, InputVector::kDatabase);
    Validator validator(p.project);
    EXPECT_TRUE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, SqliThroughWpdbConfirmed) {
    Pipeline p = analyze(
        "<?php global $wpdb;\n"
        "$id = $_GET['id'];\n"
        "$wpdb->query(\"DELETE FROM t WHERE id = '$id'\");");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    Validator validator(p.project);
    const ValidationResult v = validator.validate(p.analysis.findings[0]);
    EXPECT_TRUE(v.confirmed);
    EXPECT_NE(v.evidence.find("OR '1337'"), std::string::npos);
}

TEST(ValidatorTest, PreparedQueryNotConfirmed) {
    Pipeline p = analyze(
        "<?php global $wpdb;\n"
        "$id = $_POST['id'];\n"
        "$wpdb->query($wpdb->prepare(\"DELETE FROM t WHERE name = %s\", $id));");
    EXPECT_TRUE(p.analysis.findings.empty());
    Finding fake;
    fake.kind = VulnKind::kSqli;
    fake.location = {"main.php", 1};
    fake.vector = InputVector::kPost;
    Validator validator(p.project);
    EXPECT_FALSE(validator.validate(fake).confirmed);
}

TEST(ValidatorTest, GuardExitFalseAlarmRejected) {
    // The static engine flags this (exit is not modeled); dynamically the
    // guard stops the payload — the FP is correctly rejected.
    Pipeline p = analyze(
        "<?php $n = $_GET['n'];\n"
        "if (!is_numeric($n)) { exit; }\n"
        "echo '<p>' . $n . '</p>';");
    ASSERT_EQ(p.analysis.findings.size(), 1u);  // static FP
    Validator validator(p.project);
    EXPECT_FALSE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, WhitelistFalseAlarmRejected) {
    Pipeline p = analyze(
        "<?php $t = in_array($_GET['tab'], array('a', 'b')) ? $_GET['tab'] : 'a';\n"
        "echo $t;");
    ASSERT_EQ(p.analysis.findings.size(), 1u);  // static FP (merged ternary)
    Validator validator(p.project);
    EXPECT_FALSE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, SprintfDigitFalseAlarmRejected) {
    Pipeline p = analyze("<?php echo sprintf('%d items', $_GET['n']);");
    ASSERT_EQ(p.analysis.findings.size(), 1u);  // static FP (propagation)
    Validator validator(p.project);
    EXPECT_FALSE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, SqliGuardFalseAlarmRejected) {
    Pipeline p = analyze(
        "<?php global $wpdb;\n"
        "$id = $_POST['id'];\n"
        "if (!ctype_digit($id)) { die('bad'); }\n"
        "$wpdb->query(\"DELETE FROM t WHERE id = $id\");");
    ASSERT_EQ(p.analysis.findings.size(), 1u);  // static SQLi FP
    Validator validator(p.project);
    EXPECT_FALSE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, RevertedSanitizationConfirmed) {
    // The paper's wp-photo-album-plus pattern: stored value echoed through
    // stripslashes — the payload survives.
    Pipeline p = analyze(
        "<?php global $wpdb;\n"
        "$image = $wpdb->get_var($wpdb->prepare(\"SELECT %s FROM t\", 'x'));\n"
        "echo stripslashes($image);");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    Validator validator(p.project);
    EXPECT_TRUE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, FileSourceConfirmed) {
    Pipeline p = analyze(
        "<?php $fp = fopen('x.txt', 'r'); $res = fgets($fp, 128); echo $res;");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    Validator validator(p.project);
    EXPECT_TRUE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, CookieVectorConfirmed) {
    Pipeline p = analyze("<?php echo $_COOKIE['session_note'];");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    Validator validator(p.project);
    EXPECT_TRUE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, OopPropertyFlowConfirmed) {
    Pipeline p = analyze(
        "<?php class W {\n"
        "  public $c = '';\n"
        "  public function set() { $this->c = $_POST['c']; }\n"
        "  public function render() { echo $this->c; }\n"
        "}\n"
        "$w = new W(); $w->set(); $w->render();");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    Validator validator(p.project);
    EXPECT_TRUE(validator.validate(p.analysis.findings[0]).confirmed);
}

TEST(ValidatorTest, HookClosureConfirmed) {
    Pipeline p = analyze(
        "<?php add_action('init', function () { echo $_GET['q']; });");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    Validator validator(p.project);
    EXPECT_TRUE(validator.validate(p.analysis.findings[0]).confirmed);
}

// Sweep: every vulnerable corpus family whose flow executes from the main
// file must be dynamically confirmable; every safe family must be rejected.
struct FamilyExpectation {
    corpus::Family family;
    bool confirmable;
};

class DynamicFamilySweep : public ::testing::TestWithParam<FamilyExpectation> {};

TEST_P(DynamicFamilySweep, MatchesExpectation) {
    const FamilyExpectation param = GetParam();
    const corpus::Snippet snippet = corpus::emit(param.family, "dv0", 1);
    std::string code = "<?php\n";
    for (const std::string& line : snippet.lines) code += line + "\n";

    php::Project project("sweep");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    const AnalysisResult analysis =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;

    Validator validator(project);
    bool any_confirmed = false;
    for (const Finding& finding : analysis.findings)
        if (validator.validate(finding).confirmed) any_confirmed = true;

    if (param.confirmable) {
        ASSERT_FALSE(analysis.findings.empty()) << to_string(param.family);
        EXPECT_TRUE(any_confirmed) << to_string(param.family);
    } else {
        EXPECT_FALSE(any_confirmed) << to_string(param.family);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DynamicFamilySweep,
    ::testing::Values(FamilyExpectation{corpus::Family::kXssGetEcho, true},
                      FamilyExpectation{corpus::Family::kXssPostEcho, true},
                      FamilyExpectation{corpus::Family::kXssCookieEcho, true},
                      FamilyExpectation{corpus::Family::kXssDbProcedural, true},
                      FamilyExpectation{corpus::Family::kXssFileSource, true},
                      FamilyExpectation{corpus::Family::kXssWpdbRows, true},
                      FamilyExpectation{corpus::Family::kXssWpdbVar, true},
                      FamilyExpectation{corpus::Family::kXssWpdbRevert, true},
                      FamilyExpectation{corpus::Family::kXssOopProperty, true},
                      FamilyExpectation{corpus::Family::kXssWpOption, true},
                      FamilyExpectation{corpus::Family::kSqliWpdbQuery, true},
                      FamilyExpectation{corpus::Family::kSqliMysqliOop, true},
                      FamilyExpectation{corpus::Family::kXssPrintfGet, true},
                      FamilyExpectation{corpus::Family::kXssExitMessage, true},
                      FamilyExpectation{corpus::Family::kXssPregMatchFlow, true},
                      FamilyExpectation{corpus::Family::kSafeGuardExit, false},
                      FamilyExpectation{corpus::Family::kSafeWhitelistTernary, false},
                      FamilyExpectation{corpus::Family::kSafeSprintfD, false},
                      FamilyExpectation{corpus::Family::kSafeSqliGuard, false},
                      FamilyExpectation{corpus::Family::kSafePrepare, false},
                      FamilyExpectation{corpus::Family::kSafeSanitizedEcho, false},
                      FamilyExpectation{corpus::Family::kSafeJsonEncode, false},
                      FamilyExpectation{corpus::Family::kSafeIntval, false},
                      FamilyExpectation{corpus::Family::kSafeCast, false}),
    [](const ::testing::TestParamInfo<FamilyExpectation>& info) {
        return to_string(info.param.family);
    });

// Differential property across structural variants: whenever the static
// engine reports a finding for a *vulnerable* family instance, the dynamic
// replay must confirm at least one report — and for *safe* families it
// must confirm none — regardless of the cosmetic shape the generator
// chose. This cross-checks the two independently-implemented semantics
// (abstract taint vs concrete execution) against each other.
class DifferentialVariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialVariantSweep, StaticAndDynamicAgree) {
    const int variant = GetParam();
    const struct {
        corpus::Family family;
        bool vulnerable;
    } cases[] = {
        {corpus::Family::kXssGetEcho, true},
        {corpus::Family::kXssPostEcho, true},
        {corpus::Family::kXssCookieEcho, true},
        {corpus::Family::kXssDbProcedural, true},
        {corpus::Family::kXssWpdbRows, true},
        {corpus::Family::kSqliWpdbQuery, true},
        {corpus::Family::kSafeGuardExit, false},
        {corpus::Family::kSafeSanitizedEcho, false},
        {corpus::Family::kSafeIntval, false},
        {corpus::Family::kSafePrepare, false},
    };
    for (const auto& c : cases) {
        const corpus::Snippet snippet = corpus::emit(c.family, "dd0", variant);
        std::string code = "<?php\n";
        for (const std::string& line : snippet.lines) code += line + "\n";

        php::Project project("diff");
        project.add_file("main.php", code);
        DiagnosticSink sink;
        project.parse_all(sink);
        const Tool tool = make_phpsafe_tool();
        const AnalysisResult analysis =
            Analyzer::borrowing(tool.kb, tool.options).scan(project).result;

        Validator validator(project);
        bool any_confirmed = false;
        for (const Finding& finding : analysis.findings)
            if (validator.validate(finding).confirmed) any_confirmed = true;

        EXPECT_EQ(any_confirmed, c.vulnerable)
            << to_string(c.family) << " variant " << variant << "\n" << code;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, DifferentialVariantSweep,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace phpsafe::dynamic
