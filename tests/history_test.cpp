// Tests for cross-version finding history (paper future work §VI).
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "php/project.h"
#include "report/history.h"

namespace phpsafe {
namespace {

Finding make(VulnKind kind, const std::string& file, int line,
             const std::string& sink, const std::string& variable) {
    Finding f;
    f.kind = kind;
    f.location = {file, line};
    f.sink = sink;
    f.variable = variable;
    return f;
}

TEST(HistoryKeyTest, LineNumbersIgnored) {
    const Finding a = make(VulnKind::kXss, "a.php", 10, "echo", "$msg");
    const Finding b = make(VulnKind::kXss, "a.php", 99, "echo", "$msg");
    EXPECT_EQ(history_key(a), history_key(b));
}

TEST(HistoryKeyTest, DigitRunsNormalized) {
    const Finding a = make(VulnKind::kXss, "a.php", 1, "echo", "$msg_3");
    const Finding b = make(VulnKind::kXss, "a.php", 2, "echo", "$msg_27");
    EXPECT_EQ(history_key(a), history_key(b));
}

TEST(HistoryKeyTest, KindAndSinkDistinguish) {
    const Finding a = make(VulnKind::kXss, "a.php", 1, "echo", "$v");
    const Finding b = make(VulnKind::kSqli, "a.php", 1, "echo", "$v");
    const Finding c = make(VulnKind::kXss, "a.php", 1, "print", "$v");
    EXPECT_NE(history_key(a), history_key(b));
    EXPECT_NE(history_key(a), history_key(c));
}

TEST(HistoryDiffTest, ClassifiesFates) {
    AnalysisResult v1, v2;
    v1.findings = {make(VulnKind::kXss, "a.php", 5, "echo", "$kept"),
                   make(VulnKind::kXss, "a.php", 9, "echo", "$gone")};
    v2.findings = {make(VulnKind::kXss, "a.php", 7, "echo", "$kept"),
                   make(VulnKind::kSqli, "b.php", 3, "wpdb::query", "$fresh")};
    const HistoryReport report = diff_versions(v1, v2);
    EXPECT_EQ(report.persisted(), 1);
    EXPECT_EQ(report.fixed(), 1);
    EXPECT_EQ(report.introduced(), 1);
    EXPECT_NEAR(report.persisted_fraction_of_new(), 0.5, 1e-9);
}

TEST(HistoryDiffTest, DuplicateKeysMatchedOneToOne) {
    AnalysisResult v1, v2;
    v1.findings = {make(VulnKind::kXss, "a.php", 1, "echo", "$v"),
                   make(VulnKind::kXss, "a.php", 8, "echo", "$v")};
    v2.findings = {make(VulnKind::kXss, "a.php", 2, "echo", "$v")};
    const HistoryReport report = diff_versions(v1, v2);
    EXPECT_EQ(report.persisted(), 1);
    EXPECT_EQ(report.fixed(), 1);
    EXPECT_EQ(report.introduced(), 0);
}

TEST(HistoryDiffTest, EmptyRunsProduceEmptyReport) {
    const HistoryReport report = diff_versions(AnalysisResult{}, AnalysisResult{});
    EXPECT_TRUE(report.entries.empty());
    EXPECT_DOUBLE_EQ(report.persisted_fraction_of_new(), 0.0);
}

TEST(HistoryDiffTest, EndToEndAcrossRealRuns) {
    // Two "versions" of a plugin: v2 fixes one vuln, keeps one, adds one.
    const Tool tool = make_phpsafe_tool();

    php::Project v1("demo@1");
    v1.add_file("main.php",
                "<?php echo $_GET['kept'];\n"
                "echo $_GET['gone'];");
    DiagnosticSink s1;
    v1.parse_all(s1);
    Engine e1(tool.kb, tool.options);
    const AnalysisResult r1 = e1.analyze(v1);

    php::Project v2("demo@2");
    v2.add_file("main.php",
                "<?php echo $_GET['kept'];\n"
                "echo htmlspecialchars($_GET['gone']);\n"
                "echo $_COOKIE['fresh'];");
    DiagnosticSink s2;
    v2.parse_all(s2);
    Engine e2(tool.kb, tool.options);
    const AnalysisResult r2 = e2.analyze(v2);

    const HistoryReport report = diff_versions(r1, r2);
    EXPECT_EQ(report.persisted(), 1);
    EXPECT_EQ(report.fixed(), 1);
    EXPECT_EQ(report.introduced(), 1);
}

}  // namespace
}  // namespace phpsafe
