// Project-model tests (paper §III.B model construction): declaration
// indexing (including declarations nested in guards), called-function
// tracking, uncalled-function detection, include resolution.
#include <gtest/gtest.h>

#include "php/project.h"

namespace phpsafe::php {
namespace {

Project make_project(std::vector<std::pair<std::string, std::string>> files) {
    Project project("test");
    for (auto& [name, text] : files) project.add_file(name, std::move(text));
    DiagnosticSink sink;
    project.parse_all(sink);
    return project;
}

TEST(ProjectTest, IndexesTopLevelFunctions) {
    const Project p = make_project({{"a.php", "<?php function foo() {} "}});
    ASSERT_NE(p.find_function("foo"), nullptr);
    EXPECT_EQ(p.find_function("foo")->file, "a.php");
    EXPECT_EQ(p.find_function("bar"), nullptr);
}

TEST(ProjectTest, FunctionLookupCaseInsensitive) {
    const Project p = make_project({{"a.php", "<?php function MyFunc() {} "}});
    EXPECT_NE(p.find_function("myfunc"), nullptr);
    EXPECT_NE(p.find_function("MYFUNC"), nullptr);
}

TEST(ProjectTest, IndexesGuardedDeclarations) {
    // The common WordPress idiom: if (!function_exists(...)) { function ... }
    const Project p = make_project(
        {{"a.php",
          "<?php if (!function_exists('helper')) { function helper($x) "
          "{ return $x; } }"}});
    EXPECT_NE(p.find_function("helper"), nullptr);
}

TEST(ProjectTest, IndexesClassesAndMethods) {
    const Project p = make_project(
        {{"a.php",
          "<?php class Widget { public function render() {} "
          "public static function boot() {} }"}});
    ASSERT_NE(p.find_class("Widget"), nullptr);
    ASSERT_NE(p.find_method("widget", "render"), nullptr);
    EXPECT_EQ(p.find_method("widget", "render")->owner->name, "Widget");
    EXPECT_NE(p.find_method("Widget", "BOOT"), nullptr);
}

TEST(ProjectTest, MethodLookupWalksInheritance) {
    const Project p = make_project(
        {{"a.php",
          "<?php class Base { public function hello() {} }\n"
          "class Child extends Base {}"}});
    const FunctionRef* ref = p.find_method("child", "hello");
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(ref->owner->name, "Base");
}

TEST(ProjectTest, FindMethodAnyRequiresUniqueness) {
    const Project p = make_project(
        {{"a.php",
          "<?php class A { public function unique_m() {} public function dup() {} }\n"
          "class B { public function dup() {} }"}});
    EXPECT_NE(p.find_method_any("unique_m"), nullptr);
    EXPECT_EQ(p.find_method_any("dup"), nullptr);  // ambiguous
}

TEST(ProjectTest, UncalledFunctionsDetected) {
    const Project p = make_project(
        {{"a.php",
          "<?php function used() {} function unused() {} used();"}});
    const auto uncalled = p.uncalled_functions();
    ASSERT_EQ(uncalled.size(), 1u);
    EXPECT_EQ(uncalled[0].decl->name, "unused");
}

TEST(ProjectTest, HookCallbacksCountAsCalled) {
    // add_action('init', 'my_handler') keeps my_handler reachable.
    const Project p = make_project(
        {{"a.php",
          "<?php function my_handler() {} add_action('init', 'my_handler');"}});
    EXPECT_TRUE(p.uncalled_functions().empty());
}

TEST(ProjectTest, MethodsCalledAnywhereAreCalled) {
    const Project p = make_project(
        {{"a.php",
          "<?php class W { public function go() {} public function idle() {} }\n"
          "$w = new W(); $w->go();"}});
    const auto uncalled = p.uncalled_functions();
    ASSERT_EQ(uncalled.size(), 1u);
    EXPECT_EQ(uncalled[0].qualified_name(), "W::idle");
}

TEST(ProjectTest, ConstructorNotUncalled) {
    const Project p = make_project(
        {{"a.php",
          "<?php class W { public function __construct() {} }\n$w = new W();"}});
    EXPECT_TRUE(p.uncalled_functions().empty());
}

TEST(ProjectTest, IncludeResolutionByExactSuffixBasename) {
    const Project p = make_project({
        {"main.php", "<?php"},
        {"includes/helpers.php", "<?php"},
        {"admin/panel.php", "<?php"},
    });
    ASSERT_NE(p.resolve_include("includes/helpers.php"), nullptr);
    ASSERT_NE(p.resolve_include("helpers.php"), nullptr);
    EXPECT_EQ(p.resolve_include("helpers.php")->source->name(),
              "includes/helpers.php");
    ASSERT_NE(p.resolve_include("./admin/panel.php"), nullptr);
    EXPECT_EQ(p.resolve_include("missing.php"), nullptr);
    EXPECT_EQ(p.resolve_include(""), nullptr);
}

TEST(ProjectTest, TotalLines) {
    const Project p = make_project({
        {"a.php", "<?php\n$a = 1;\n"},
        {"b.php", "<?php\n$b = 2;\n$c = 3;\n"},
    });
    EXPECT_EQ(p.total_lines(), 5);
}

TEST(ProjectTest, QualifiedNames) {
    const Project p = make_project(
        {{"a.php",
          "<?php function free_fn() {} class C { public function m() {} }"}});
    EXPECT_EQ(p.find_function("free_fn")->qualified_name(), "free_fn");
    EXPECT_EQ(p.find_method("c", "m")->qualified_name(), "C::m");
}

TEST(ProjectTest, AllFunctionsListsEverything) {
    const Project p = make_project(
        {{"a.php",
          "<?php function f1() {} class C { public function m1() {} "
          "public function m2() {} }"}});
    EXPECT_EQ(p.all_functions().size(), 3u);
}

TEST(ProjectTest, ParseFailureFlagged) {
    Project project("bad");
    // 250+ parse errors trigger the robustness abort.
    std::string garbage = "<?php ";
    for (int i = 0; i < 300; ++i) garbage += "^^ ";
    project.add_file("bad.php", garbage);
    DiagnosticSink sink;
    project.parse_all(sink);
    ASSERT_EQ(project.files().size(), 1u);
    EXPECT_TRUE(project.files()[0]->parse_failed);
}

}  // namespace
}  // namespace phpsafe::php
