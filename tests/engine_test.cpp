// Engine unit tests: taint propagation, sanitizers/reverts, sinks, function
// summaries, includes, and analysis options — the paper's §III semantics.
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/engine.h"
#include "php/project.h"

namespace phpsafe {
namespace {

AnalysisResult analyze(const std::string& code, const Tool& tool) {
    php::Project project("test");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    Engine engine(tool.kb, tool.options);
    return engine.analyze(project);
}

AnalysisResult analyze(const std::string& code) {
    return analyze(code, make_phpsafe_tool());
}

int count_kind(const AnalysisResult& r, VulnKind k) { return r.count(k); }

TEST(EngineTest, DirectGetEchoIsXss) {
    const auto r = analyze("<?php echo $_GET['x'];");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kXss);
    EXPECT_EQ(r.findings[0].vector, InputVector::kGet);
    EXPECT_EQ(r.findings[0].location.line, 1);
}

TEST(EngineTest, TaintFlowsThroughAssignment) {
    const auto r = analyze("<?php $a = $_POST['x']; $b = $a; echo $b;");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kPost);
}

TEST(EngineTest, TaintFlowsThroughConcatenation) {
    const auto r = analyze("<?php $s = '<b>' . $_GET['x'] . '</b>'; echo $s;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, TaintFlowsThroughInterpolation) {
    const auto r = analyze("<?php $x = $_GET['x']; echo \"value: $x\";");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, ConcatCompoundAssignmentKeepsTaint) {
    const auto r = analyze("<?php $s = 'a'; $s .= $_GET['x']; echo $s;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, PlainLiteralIsClean) {
    const auto r = analyze("<?php $s = 'hello'; echo $s;");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, HtmlspecialcharsStopsXss) {
    const auto r = analyze("<?php echo htmlspecialchars($_GET['x']);");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, XssSanitizerDoesNotStopSqli) {
    // htmlspecialchars leaves SQL metacharacters; the query stays vulnerable.
    const auto r = analyze(
        "<?php $q = htmlspecialchars($_GET['x']);"
        "mysql_query(\"SELECT * FROM t WHERE a = '$q'\");");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kSqli);
}

TEST(EngineTest, SqlEscapeStopsSqliButNotXss) {
    const auto r = analyze(
        "<?php $v = mysql_real_escape_string($_GET['x']);"
        "mysql_query(\"SELECT '$v'\");"
        "echo $v;");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kXss);
}

TEST(EngineTest, IntvalStopsBoth) {
    const auto r = analyze(
        "<?php $n = intval($_GET['n']); echo $n;"
        "mysql_query(\"SELECT $n\");");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, IntCastSanitizes) {
    const auto r = analyze("<?php echo (int) $_GET['n'];");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, StringCastKeepsTaint) {
    const auto r = analyze("<?php echo (string) $_GET['n'];");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, StripslashesRevertsSqlEscaping) {
    // Paper §III.A: revert functions re-enable the attack.
    const auto r = analyze(
        "<?php $v = addslashes($_GET['x']);"
        "$w = stripslashes($v);"
        "mysql_query(\"SELECT '$w'\");");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kSqli);
}

TEST(EngineTest, HtmlEntityDecodeRevertsXssEscaping) {
    const auto r = analyze(
        "<?php $v = htmlentities($_GET['x']);"
        "echo html_entity_decode($v);");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kXss);
}

TEST(EngineTest, SanitizedStaysCleanWithoutRevert) {
    const auto r = analyze(
        "<?php $v = addslashes($_GET['x']); mysql_query(\"SELECT '$v'\");");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, ArithmeticResultIsClean) {
    const auto r = analyze("<?php $n = $_GET['a'] + 1; echo $n;");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, TernaryMergesBothArms) {
    const auto r = analyze("<?php $v = $c ? $_GET['x'] : 'safe'; echo $v;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, ArrayElementWriteTaintsArray) {
    const auto r = analyze("<?php $a = array(); $a['k'] = $_GET['x']; echo $a['k'];");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, ArrayLiteralCarriesElementTaint) {
    const auto r = analyze("<?php $a = array('x' => $_GET['x']); echo $a['x'];");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, UnsetClearsTaint) {
    // Paper §III.C T_UNSET: the variable becomes untainted.
    const auto r = analyze("<?php $x = $_GET['x']; unset($x); echo $x;");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, ReassignmentKillsTaint) {
    const auto r = analyze("<?php $x = $_GET['x']; $x = 'safe'; echo $x;");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, PrintAndExitAreXssSinks) {
    const auto r = analyze("<?php print $_GET['a']; die($_GET['b']);");
    EXPECT_EQ(count_kind(r, VulnKind::kXss), 2);
}

TEST(EngineTest, OpenTagEchoIsSink) {
    const auto r = analyze("<?php $m = $_GET['m']; ?><?= $m ?>");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].sink, "<?=");
}

TEST(EngineTest, PrintfFamilyAreSinks) {
    const auto r = analyze("<?php printf('%s', $_GET['x']); print_r($_GET['y']);");
    EXPECT_EQ(count_kind(r, VulnKind::kXss), 2);
}

TEST(EngineTest, UnknownFunctionPropagatesTaint) {
    const auto r = analyze("<?php echo some_unknown_transform($_GET['x']);");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, SafeBuiltinsReturnClean) {
    const auto r = analyze("<?php echo count($_GET); echo strlen($_GET['x']);");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, PregMatchRefFlowTaintsMatches) {
    const auto r = analyze(
        "<?php preg_match('/(\\w+)/', $_GET['x'], $m); echo $m[1];");
    EXPECT_EQ(r.findings.size(), 1u);
}

// -- inter-procedural -------------------------------------------------------

TEST(EngineTest, ParamFlowsToSinkInsideFunction) {
    const auto r = analyze(
        "<?php function show($v) { echo '<b>' . $v . '</b>'; }\n"
        "show($_GET['x']);");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].location.line, 1);  // sink is the echo inside
}

TEST(EngineTest, CleanArgumentDoesNotTriggerParamSink) {
    const auto r = analyze(
        "<?php function show($v) { echo $v; }\n"
        "show('static text');");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, TaintThroughReturnValue) {
    const auto r = analyze(
        "<?php function pick() { return $_POST['v']; }\n"
        "echo pick();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, ParamToReturnFlow) {
    const auto r = analyze(
        "<?php function wrap($v) { return '<i>' . $v . '</i>'; }\n"
        "echo wrap($_GET['x']);");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, UserSanitizerFunctionIsLearned) {
    // The summary must record that the function sanitizes XSS on the flow
    // from parameter to return (paper: inter-procedural analysis "verifies
    // if the function is able to sanitize the tainted data").
    const auto r = analyze(
        "<?php function clean($v) { return htmlspecialchars($v); }\n"
        "echo clean($_GET['x']);");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, TransitiveParamSinkThroughTwoCalls) {
    const auto r = analyze(
        "<?php function inner($v) { echo $v; }\n"
        "function outer($w) { inner($w); }\n"
        "outer($_COOKIE['c']);");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kCookie);
}

TEST(EngineTest, RecursionTerminates) {
    const auto r = analyze(
        "<?php function rec($v, $n) { if ($n > 0) { return rec($v, $n - 1); } "
        "return $v; }\n"
        "echo rec($_GET['x'], 5);");
    // Must terminate; detection through the recursive return is best-effort.
    SUCCEED();
}

TEST(EngineTest, FunctionAnalyzedOnceFindingsNotDuplicated) {
    const auto r = analyze(
        "<?php function show($v) { echo $v; }\n"
        "show($_GET['a']);\n"
        "show($_GET['b']);");
    // Two call sites, one sink line: the deduplicated report keeps one
    // finding per (kind, location, variable).
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, MultipleReturnsMerge) {
    const auto r = analyze(
        "<?php function pick($c) { if ($c) { return 'safe'; } return $_GET['x']; }\n"
        "echo pick(1);");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, InternalSourceInCalledFunction) {
    const auto r = analyze(
        "<?php function handler() { echo $_REQUEST['q']; }\n"
        "handler();");
    EXPECT_EQ(r.findings.size(), 1u);
}

// -- uncalled functions ------------------------------------------------------

TEST(EngineTest, UncalledFunctionWithInternalSourceIsAnalyzed) {
    // Paper §III.C: functions never called from plugin code must still be
    // analyzed — the CMS may invoke them directly.
    const auto r = analyze("<?php function ajax_cb() { echo $_GET['q']; }");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, UncalledAnalysisCanBeDisabled) {
    Tool tool = make_phpsafe_tool();
    tool.options.analyze_uncalled_functions = false;
    const auto r = analyze("<?php function ajax_cb() { echo $_GET['q']; }", tool);
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, UncalledParamsNotTaintedByDefault) {
    const auto r = analyze("<?php function fmt($v) { echo $v; }");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, UncalledParamsTaintedWhenOptionSet) {
    Tool tool = make_phpsafe_tool();
    tool.options.assume_params_tainted_in_uncalled = true;
    const auto r = analyze("<?php function fmt($v) { echo $v; }", tool);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kFunction);
}

// -- globals -----------------------------------------------------------------

TEST(EngineTest, GlobalKeywordSharesTaint) {
    const auto r = analyze(
        "<?php $msg = $_GET['m'];\n"
        "function show() { global $msg; echo $msg; }\n"
        "show();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, GlobalsArrayAccess) {
    const auto r = analyze(
        "<?php $GLOBALS['m'] = $_GET['m']; echo $GLOBALS['m'];");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, FunctionLocalsDoNotLeakToGlobalScope) {
    const auto r = analyze(
        "<?php function f() { $t = $_GET['x']; }\n"
        "f();\n"
        "echo $t;");
    EXPECT_TRUE(r.findings.empty());
}

// -- conditionals and loops (paper: blocks parsed normally) -------------------

TEST(EngineTest, SinksInBothBranchesChecked) {
    const auto r = analyze(
        "<?php if ($c) { echo $_GET['a']; } else { echo $_GET['b']; }");
    EXPECT_EQ(r.findings.size(), 2u);
}

TEST(EngineTest, SequentialBranchSemantics) {
    // Paper-faithful: the else-branch assignment is processed after the
    // then-branch, so the final state of $x is the else value.
    const auto r = analyze(
        "<?php if ($c) { $x = 'safe'; } else { $x = $_GET['x']; } echo $x;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, WhileConditionAssignmentTaints) {
    const auto r = analyze(
        "<?php $res = mysql_query('SELECT 1');\n"
        "while ($row = mysql_fetch_assoc($res)) { echo $row['n']; }");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kDatabase);
}

TEST(EngineTest, ForeachPropagatesToValueVar) {
    const auto r = analyze(
        "<?php $rows = mysql_fetch_array(mysql_query('q'));\n"
        "foreach ($rows as $k => $v) { echo $v; }");
    EXPECT_GE(r.findings.size(), 1u);
}

TEST(EngineTest, SwitchCasesAllChecked) {
    const auto r = analyze(
        "<?php switch ($t) { case 1: echo $_GET['a']; break; "
        "default: echo $_GET['b']; }");
    EXPECT_EQ(r.findings.size(), 2u);
}

// -- includes -----------------------------------------------------------------

TEST(EngineTest, TaintFlowsAcrossInclude) {
    php::Project project("multi");
    project.add_file("main.php", "<?php $x = $_GET['x']; include 'out.php';");
    project.add_file("out.php", "<?php echo $x;");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    Engine engine(tool.kb, tool.options);
    const auto r = engine.analyze(project);
    bool found = false;
    for (const Finding& f : r.findings)
        if (f.location.file == "out.php") found = true;
    EXPECT_TRUE(found);
}

TEST(EngineTest, IncludeOnceNotRepeated) {
    php::Project project("multi");
    project.add_file("main.php",
                     "<?php require_once 'inc.php'; require_once 'inc.php';");
    project.add_file("inc.php", "<?php echo $_GET['x'];");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    Engine engine(tool.kb, tool.options);
    const auto r = engine.analyze(project);
    EXPECT_EQ(r.findings.size(), 1u);  // deduplicated single finding
}

TEST(EngineTest, DeepIncludeChainFailsFile) {
    php::Project project("deep");
    const int chain_length = 12;
    for (int i = 0; i < chain_length; ++i) {
        std::string code = "<?php\n";
        if (i + 1 < chain_length)
            code += "require_once 'c" + std::to_string(i + 1) + ".php';\n";
        code += "$pad_" + std::to_string(i) + " = 1;\n";
        if (i == 0) code += "echo $_GET['deep'];\n";
        project.add_file("c" + std::to_string(i) + ".php", code);
    }
    DiagnosticSink sink;
    project.parse_all(sink);
    Tool tool = make_phpsafe_tool();  // max_include_depth = 8
    Engine engine(tool.kb, tool.options);
    const auto r = engine.analyze(project);
    EXPECT_GE(r.files_failed, 1);
    // The vuln after the too-deep include is missed by phpSAFE...
    EXPECT_TRUE(r.findings.empty());
    // ...but found by the RIPS-like configuration with a deeper limit.
    Tool rips = make_rips_like_tool();
    Engine rips_engine(rips.kb, rips.options);
    const auto r2 = rips_engine.analyze(project);
    EXPECT_EQ(r2.findings.size(), 1u);
    EXPECT_EQ(r2.files_failed, 0);
}

// -- misc ---------------------------------------------------------------------

TEST(EngineTest, RegisterGlobalsModeling) {
    Tool pixy = make_pixy_like_tool();
    const auto r = analyze("<?php if (!empty($theme)) { echo $theme; }", pixy);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kGet);

    // Without register_globals modeling, nothing is reported.
    const auto r2 = analyze("<?php if (!empty($theme)) { echo $theme; }");
    EXPECT_TRUE(r2.findings.empty());
}

TEST(EngineTest, RegisterGlobalsNotAppliedToAssignedVariables) {
    Tool pixy = make_pixy_like_tool();
    const auto r = analyze("<?php $theme = 'dark'; echo $theme;", pixy);
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineTest, ClosureBodyAnalyzed) {
    const auto r = analyze(
        "<?php add_action('init', function () { echo $_GET['q']; });");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, ClosureCapturesUseVariables) {
    const auto r = analyze(
        "<?php $m = $_GET['m'];\n"
        "$f = function () use ($m) { echo $m; };");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, FileSourcesAreTainted) {
    const auto r = analyze(
        "<?php $fp = fopen('x.txt', 'r'); $res = fgets($fp, 128); echo $res;");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kFile);
}

TEST(EngineTest, ErrorSuppressionPassesThrough) {
    const auto r = analyze("<?php echo @$_GET['x'];");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineTest, TraceContainsSourceAndSink) {
    const auto r = analyze("<?php $a = $_GET['x']; echo $a;");
    ASSERT_EQ(r.findings.size(), 1u);
    ASSERT_GE(r.findings[0].trace.size(), 3u);
    EXPECT_NE(r.findings[0].trace.front().description.find("source"),
              std::string::npos);
    EXPECT_NE(r.findings[0].trace.back().description.find("sink"),
              std::string::npos);
}

TEST(EngineTest, RepeatedAnalysisIsDeterministic) {
    const std::string code =
        "<?php $a = $_GET['x']; echo $a; echo htmlspecialchars($a);";
    php::Project project("det");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    Engine engine(tool.kb, tool.options);
    const auto r1 = engine.analyze(project);
    const auto r2 = engine.analyze(project);
    ASSERT_EQ(r1.findings.size(), r2.findings.size());
    for (size_t i = 0; i < r1.findings.size(); ++i)
        EXPECT_EQ(r1.findings[i].dedup_key(), r2.findings[i].dedup_key());
}

}  // namespace
}  // namespace phpsafe
