// Batch validation + remediation pipeline tests (validate/): tiering must
// agree with one-at-a-time replay, executions must deduplicate, quickfixes
// must only be emitted when every verification gate holds, and the
// single-file project fork must be indistinguishable from a full rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "dynamic/validator.h"
#include "php/project.h"
#include "validate/quickfix.h"
#include "validate/validate.h"

namespace phpsafe::validate {
namespace {

using dynamic::Validator;

struct Pipeline {
    php::Project project{"v"};
    Tool tool = make_phpsafe_tool();
    AnalysisResult analysis;
};

Pipeline analyze(const std::string& code) {
    Pipeline p;
    p.project.add_file("main.php", code);
    DiagnosticSink sink;
    p.project.parse_all(sink);
    p.analysis =
        Analyzer::borrowing(p.tool.kb, p.tool.options).scan(p.project).result;
    return p;
}

ValidationReport run(Pipeline& p, const ValidateOptions& vopts = {}) {
    return validate_result(p.project, p.tool.kb, p.tool.options, p.analysis,
                           vopts);
}

TEST(ValidateTest, TiersMatchSequentialReplay) {
    Pipeline p = analyze(
        "<?php\n"
        "echo '<p>' . $_GET['msg'] . '</p>';\n"
        "echo htmlspecialchars($_GET['safe']);\n"
        "$id = $_GET['id'];\n"
        "global $wpdb;\n"
        "$wpdb->query(\"DELETE FROM t WHERE id = '$id'\");\n");
    ASSERT_FALSE(p.analysis.findings.empty());

    const ValidationReport report = run(p);
    ASSERT_EQ(report.cases.size(), p.analysis.findings.size());

    Validator validator(p.project);
    for (size_t i = 0; i < p.analysis.findings.size(); ++i) {
        const dynamic::ValidationResult seq =
            validator.validate(p.analysis.findings[i]);
        EXPECT_EQ(report.cases[i].replay.confirmed, seq.confirmed) << i;
        EXPECT_EQ(report.cases[i].replay.executed, seq.executed) << i;
        EXPECT_EQ(report.cases[i].replay.evidence, seq.evidence) << i;
        const Tier expected = seq.confirmed    ? Tier::kValidated
                              : seq.executed   ? Tier::kUnvalidated
                                               : Tier::kInconclusive;
        EXPECT_EQ(report.cases[i].tier, expected) << i;
    }
    EXPECT_EQ(report.validated + report.unvalidated + report.inconclusive,
              static_cast<int>(report.cases.size()));
}

TEST(ValidateTest, ExecutionsDeduplicate) {
    // Two XSS findings in the same entry file with the same input vector
    // share one execution key, so the batch runs the interpreter once.
    Pipeline p = analyze(
        "<?php\n"
        "echo '<a>' . $_GET['a'] . '</a>';\n"
        "echo '<b>' . $_GET['b'] . '</b>';\n");
    ASSERT_EQ(p.analysis.findings.size(), 2u);
    const ValidationReport report = run(p);
    EXPECT_EQ(report.executions, 1);
    EXPECT_EQ(report.cases.size(), 2u);
    EXPECT_EQ(report.validated, 2);
}

TEST(ValidateTest, InconclusiveWhenEntryFileMissing) {
    Pipeline p = analyze("<?php echo 'static';");
    Finding ghost;
    ghost.kind = VulnKind::kXss;
    ghost.location = {"missing.php", 1};
    ghost.vector = InputVector::kGet;
    p.analysis.findings.push_back(ghost);

    ValidateOptions vopts;
    vopts.propose_fixes = false;
    const ValidationReport report = run(p, vopts);
    ASSERT_EQ(report.cases.size(), 1u);
    EXPECT_EQ(report.cases[0].tier, Tier::kInconclusive);
    EXPECT_FALSE(report.cases[0].replay.executed);
    EXPECT_EQ(report.inconclusive, 1);
}

TEST(ValidateTest, ApplyConfidenceStampsFindings) {
    Pipeline p = analyze("<?php echo '<p>' . $_GET['msg'] . '</p>';");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    EXPECT_EQ(p.analysis.findings[0].confidence, Confidence::kUnchecked);
    const ValidationReport report = run(p);
    apply_confidence(p.analysis, report);
    EXPECT_EQ(p.analysis.findings[0].confidence, Confidence::kValidated);
}

TEST(ValidateTest, SignatureCoversTiersAndFixes) {
    Pipeline p = analyze("<?php echo $_GET['x'];");
    const ValidationReport report = run(p);
    const std::string sig = validation_signature(p.analysis, report);
    EXPECT_NE(sig.find("tiers="), std::string::npos);
    EXPECT_NE(sig.find("fixes="), std::string::npos);
    // Wall time must never leak into the identity rendering.
    EXPECT_EQ(sig.find("seconds"), std::string::npos);
}

TEST(ValidateTest, ForkWithReplacementMatchesFullRebuild) {
    php::Project original("fork");
    const std::string lib =
        "<?php function fmt($x) { return htmlspecialchars($x); }\n"
        "class Page { function title() { return 't'; } }\n";
    const std::string entry = "<?php echo '<p>' . $_GET['m'] . '</p>';\n";
    original.add_file("lib.php", lib);
    original.add_file("entry.php", entry);
    DiagnosticSink sink;
    original.parse_all(sink);

    const std::string patched_entry =
        "<?php echo fmt($_GET['m']); $p = new Page(); echo $p->title();\n";
    DiagnosticSink fork_sink;
    const std::optional<php::Project> fork =
        original.fork_with_replacement("entry.php", patched_entry, fork_sink);
    ASSERT_TRUE(fork.has_value());
    EXPECT_EQ(fork->files().size(), 2u);
    EXPECT_EQ(fork->files()[0].get(), original.files()[0].get())
        << "unchanged file must be shared, not re-parsed";

    php::Project rebuilt("fork");
    rebuilt.add_file("lib.php", lib);
    rebuilt.add_file("entry.php", patched_entry);
    DiagnosticSink rebuilt_sink;
    rebuilt.parse_all(rebuilt_sink);

    EXPECT_EQ(fork->declaration_fingerprint("lib.php"),
              rebuilt.declaration_fingerprint("lib.php"));
    EXPECT_EQ(fork->declaration_fingerprint("entry.php"),
              rebuilt.declaration_fingerprint("entry.php"));
    EXPECT_EQ(fork->called_function_names(), rebuilt.called_function_names());
    EXPECT_EQ(fork->called_method_names(), rebuilt.called_method_names());
    EXPECT_EQ(fork->all_functions().size(), rebuilt.all_functions().size());
    ASSERT_NE(fork->find_function("fmt"), nullptr);
    ASSERT_NE(fork->find_class("Page"), nullptr);

    const Tool tool = make_phpsafe_tool();
    const Analyzer analyzer = Analyzer::borrowing(tool.kb, tool.options);
    const AnalysisResult a = analyzer.scan(*fork).result;
    const AnalysisResult b = analyzer.scan(rebuilt).result;
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (size_t i = 0; i < a.findings.size(); ++i)
        EXPECT_EQ(to_string(a.findings[i]), to_string(b.findings[i]));
}

TEST(ValidateTest, ForkTracksDeclarationChanges) {
    // The fork must stay exact even when the replacement adds declarations
    // (the seeding gate then sees differing fingerprints and stands down).
    php::Project original("decl");
    original.add_file("a.php", "<?php echo 'a';\n");
    original.add_file("b.php", "<?php echo 'b';\n");
    DiagnosticSink sink;
    original.parse_all(sink);
    EXPECT_EQ(original.declaration_fingerprint("a.php"), "");

    DiagnosticSink fork_sink;
    const std::optional<php::Project> fork = original.fork_with_replacement(
        "a.php", "<?php function added() { return 1; } echo added();\n",
        fork_sink);
    ASSERT_TRUE(fork.has_value());
    EXPECT_NE(fork->declaration_fingerprint("a.php"),
              original.declaration_fingerprint("a.php"));
    ASSERT_NE(fork->find_function("added"), nullptr);
    EXPECT_EQ(fork->find_function("added")->file, "a.php");
    EXPECT_EQ(original.find_function("added"), nullptr);
    EXPECT_TRUE(fork->called_function_names().count("added"));

    // Unknown files refuse to fork.
    DiagnosticSink missing_sink;
    EXPECT_FALSE(original
                     .fork_with_replacement("missing.php", "<?php\n",
                                            missing_sink)
                     .has_value());
}

TEST(QuickfixTest, SanitizeWrapVerifiedOnPlainEcho) {
    Pipeline p = analyze("<?php echo $_GET['x'];");
    ASSERT_EQ(p.analysis.findings.size(), 1u);
    const ValidationReport report = run(p);
    ASSERT_EQ(report.cases.size(), 1u);
    ASSERT_TRUE(report.cases[0].fix.has_value());
    const Quickfix& fix = *report.cases[0].fix;
    EXPECT_EQ(fix.kind, Quickfix::Kind::kSanitizeWrap);
    EXPECT_TRUE(fix.verified);
    EXPECT_EQ(fix.file, "main.php");
    const std::string sanitizer =
        preferred_sanitizer(p.tool.kb, VulnKind::kXss);
    ASSERT_FALSE(sanitizer.empty());
    EXPECT_NE(fix.after.find(sanitizer), std::string::npos);
    EXPECT_EQ(report.fixes_verified, 1);

    // The emitted edit really kills the flow: apply it and re-scan.
    const std::optional<std::string> patched_text =
        apply_quickfix(p.project, fix);
    ASSERT_TRUE(patched_text.has_value());
    php::Project patched("v");
    patched.add_file("main.php", *patched_text);
    DiagnosticSink sink;
    patched.parse_all(sink);
    const AnalysisResult after =
        Analyzer::borrowing(p.tool.kb, p.tool.options).scan(patched).result;
    EXPECT_TRUE(after.findings.empty());
}

TEST(QuickfixTest, PrepareStatementRewriteForMysqliQuery) {
    Pipeline p = analyze(
        "<?php\n"
        "$conn = mysqli_connect('h', 'u', 'p');\n"
        "mysqli_query($conn, \"SELECT * FROM t WHERE id = '\" . $_GET['id'] "
        ". \"'\");\n");
    const auto it = std::find_if(
        p.analysis.findings.begin(), p.analysis.findings.end(),
        [](const Finding& f) { return f.kind == VulnKind::kSqli; });
    ASSERT_NE(it, p.analysis.findings.end());
    const std::optional<Quickfix> fix =
        propose_quickfix(p.project, p.tool.kb, *it);
    ASSERT_TRUE(fix.has_value());
    EXPECT_EQ(fix->kind, Quickfix::Kind::kPrepareStatement);
    EXPECT_NE(fix->after.find("mysqli_prepare"), std::string::npos);
    EXPECT_NE(fix->after.find("?"), std::string::npos);
    EXPECT_NE(fix->after.find("mysqli_stmt_bind_param"), std::string::npos);
}

TEST(QuickfixTest, ApplyRefusesOnDriftedSource) {
    Pipeline p = analyze("<?php echo $_GET['x'];");
    Quickfix stale;
    stale.file = "main.php";
    stale.line = 1;
    stale.before = "<?php echo $_POST['y'];";  // not what the file holds
    stale.after = "<?php echo htmlspecialchars($_POST['y']);";
    EXPECT_FALSE(apply_quickfix(p.project, stale).has_value());

    Quickfix gone;
    gone.file = "missing.php";
    gone.line = 1;
    gone.before = "<?php";
    EXPECT_FALSE(apply_quickfix(p.project, gone).has_value());
}

TEST(QuickfixTest, UnverifiableProposalIsNotEmitted) {
    // Sanitizing one sink does not kill a flow that reaches a second sink
    // on another line... but each finding gets its own fix. Instead, check
    // the no-sanitizer case: a profile-less knowledge base proposes nothing
    // for XSS when it registers no sanitizer of that kind. Simpler and
    // stable: a finding whose sink line cannot be located yields nullopt.
    Pipeline p = analyze("<?php echo $_GET['x'];");
    Finding off_file = p.analysis.findings.at(0);
    off_file.location = {"missing.php", 7};
    EXPECT_FALSE(
        propose_quickfix(p.project, p.tool.kb, off_file).has_value());
}

}  // namespace
}  // namespace phpsafe::validate
