// Tests for the observability subsystem: counter arithmetic and TLS
// isolation, CounterDelta capture, Engine::Observer dispatch order, span
// tracing, and the subsystem's central cost contract — a disabled tracer
// and the always-on counters allocate nothing on the hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "phpsafe.h"

// Global allocation counter for the no-allocation assertions. Counting
// operator new in this TU observes every heap allocation the process makes
// on this thread path. Sanitizer builds interpose their own allocator and
// may bypass this override, so those assertions are skipped there.
namespace {
std::atomic<uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PHPSAFE_ALLOC_COUNT_RELIABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PHPSAFE_ALLOC_COUNT_RELIABLE 0
#else
#define PHPSAFE_ALLOC_COUNT_RELIABLE 1
#endif
#else
#define PHPSAFE_ALLOC_COUNT_RELIABLE 1
#endif

namespace phpsafe {
namespace {

TEST(ObsCountersTest, ArithmeticIsFieldWise) {
    obs::Counters a;
    a.tokens_lexed = 10;
    a.sink_checks = 3;
    obs::Counters b;
    b.tokens_lexed = 5;
    b.findings_xss = 2;

    obs::Counters sum = a;
    sum += b;
    EXPECT_EQ(sum.tokens_lexed, 15u);
    EXPECT_EQ(sum.sink_checks, 3u);
    EXPECT_EQ(sum.findings_xss, 2u);
    EXPECT_EQ(sum.total(), 20u);

    const obs::Counters diff = sum - b;
    EXPECT_TRUE(diff == a);
}

TEST(ObsCountersTest, ForEachFieldVisitsEveryCounterInOrder) {
    obs::Counters c;
    c.tokens_lexed = 1;
    c.findings_sqli = 7;
    std::vector<std::string> names;
    uint64_t sum = 0;
    c.for_each_field([&](const char* name, uint64_t value) {
        names.push_back(name);
        sum += value;
    });
    EXPECT_EQ(sum, c.total());
    ASSERT_GE(names.size(), 14u);
    EXPECT_EQ(names.front(), "tokens_lexed");
    // The IR counter group (flat dataflow backend) closes the X-macro list.
    EXPECT_EQ(names.back(), "ir_mismatches");
}

TEST(ObsCountersTest, DeltaCapturesOnlyThisThreadsIncrements) {
    const obs::CounterDelta delta;
    ++obs::tls().sink_checks;
    std::thread other([] { obs::tls().sink_checks += 100; });
    other.join();
    const obs::Counters seen = delta.take();
    EXPECT_EQ(seen.sink_checks, 1u);  // the other thread's adds are invisible
    EXPECT_EQ(seen.total(), 1u);
}

TEST(ObsCountersTest, DeltasNest) {
    const obs::CounterDelta outer;
    ++obs::tls().scope_lookups;
    const obs::CounterDelta inner;
    ++obs::tls().scope_lookups;
    EXPECT_EQ(inner.take().scope_lookups, 1u);
    EXPECT_EQ(outer.take().scope_lookups, 2u);
}

#if PHPSAFE_ALLOC_COUNT_RELIABLE
TEST(ObsCountersTest, IncrementsNeverAllocate) {
    ++obs::tls().tokens_lexed;  // fault in the TLS block first
    const uint64_t before = g_allocations.load();
    for (int i = 0; i < 1000; ++i) {
        ++obs::tls().taint_propagations;
        ++obs::tls().sink_checks;
        const obs::CounterDelta delta;
        obs::Counters d = delta.take();
        obs::tls().scope_lookups += d.total() ? 0 : 1;
    }
    EXPECT_EQ(g_allocations.load(), before);
}

TEST(ObsTraceTest, DisabledTracerSpansAreFree) {
    obs::Tracer tracer(/*enabled=*/false);
    const std::string plugin = "wp-forum";  // built before counting starts
    const uint64_t before = g_allocations.load();
    for (int i = 0; i < 1000; ++i) {
        auto span = tracer.span("analyze", {{"plugin", plugin}});
        span.note("findings", "3");
        span.end();
    }
    EXPECT_EQ(g_allocations.load(), before);
    EXPECT_EQ(tracer.record_count(), 0u);
}
#endif  // PHPSAFE_ALLOC_COUNT_RELIABLE

TEST(ObsTraceTest, EnabledTracerRecordsSpans) {
    obs::Tracer tracer(/*enabled=*/true);
    EXPECT_TRUE(tracer.enabled());
    {
        auto span = tracer.span("model", {{"plugin", "demo"}, {"version", "2012"}});
        EXPECT_TRUE(span.active());
        span.note("files", "3");
    }  // destructor ends the span
    auto explicit_span = tracer.span("analyze");
    explicit_span.end();
    explicit_span.end();  // idempotent

    const std::vector<obs::SpanRecord> records = tracer.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "model");
    ASSERT_EQ(records[0].args.size(), 3u);
    EXPECT_EQ(records[0].args[0].first, "plugin");
    EXPECT_EQ(records[0].args[0].second, "demo");
    EXPECT_EQ(records[0].args[2].first, "files");
    EXPECT_GE(records[0].wall_seconds, 0.0);
    EXPECT_EQ(records[1].name, "analyze");
    EXPECT_GE(records[1].wall_start, records[0].wall_start);
}

TEST(ObsTraceTest, ExportersEmitWellFormedJson) {
    obs::Tracer tracer(/*enabled=*/true);
    tracer.span("model", {{"plugin", "a\"b"}}).end();
    const std::string chrome = tracer.chrome_trace_json();
    EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(chrome.find("a\\\"b"), std::string::npos);  // escaped label
    const std::string flat = tracer.flat_json();
    EXPECT_NE(flat.find("\"spans\""), std::string::npos);
    EXPECT_NE(flat.find("\"cpu_ms\""), std::string::npos);
    EXPECT_NE(flat.find("\"counters\""), std::string::npos);
}

TEST(ObsTraceTest, SpansRecordTheirCounterDeltas) {
    obs::Tracer tracer(/*enabled=*/true);
    {
        auto span = tracer.span("work");
        obs::tls().cache_shard_probes += 3;
        obs::tls().cache_shard_contention += 1;
    }
    const std::vector<obs::SpanRecord> records = tracer.records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].counters.cache_shard_probes, 3u);
    EXPECT_EQ(records[0].counters.cache_shard_contention, 1u);
    // The flat exporter emits exactly the nonzero fields.
    const std::string flat = tracer.flat_json();
    EXPECT_NE(flat.find("\"cache_shard_probes\": 3"), std::string::npos);
    EXPECT_EQ(flat.find("\"tokens_lexed\""), std::string::npos);
}

TEST(ObsTraceTest, DefaultStateFollowsBuildOption) {
    obs::Tracer tracer;
    EXPECT_EQ(tracer.enabled(), obs::trace_enabled_by_default());
}

/// Records the order of every observer callback for the dispatch tests.
struct RecordingObserver : Engine::Observer {
    std::vector<std::string> events;
    void on_file_begin(const php::ParsedFile& file) override {
        events.push_back("begin " + file.source->name());
    }
    void on_file_end(const php::ParsedFile& file, bool failed) override {
        events.push_back((failed ? "fail " : "end ") + file.source->name());
    }
    void on_function_summary(const php::FunctionRef& ref,
                             const FunctionSummary&) override {
        events.push_back("summary " + ref.qualified_name());
    }
    void on_finding(const Finding& finding) override {
        events.push_back("finding " + finding.sink);
    }
};

TEST(ObsObserverTest, DispatchOrderOnASmallProject) {
    php::Project project("demo");
    project.add_file("a.php", R"PHP(<?php
function render($x) { echo $x; }
render($_GET['q']);
)PHP");
    project.add_file("b.php", R"PHP(<?php
echo "static";
)PHP");
    DiagnosticSink sink;
    project.parse_all(sink);

    const Tool tool = make_phpsafe_tool();
    RecordingObserver observer;
    const AnalysisResult result = run_tool(tool, project, &observer);
    ASSERT_FALSE(result.findings.empty());

    // Files are visited in project order; the summary of render() and the
    // finding inside it land between a.php's begin and end events.
    const auto at = [&](const std::string& event) {
        for (size_t i = 0; i < observer.events.size(); ++i)
            if (observer.events[i] == event) return static_cast<int>(i);
        return -1;
    };
    ASSERT_GE(at("begin a.php"), 0) << ::testing::PrintToString(observer.events);
    ASSERT_GE(at("end a.php"), 0);
    ASSERT_GE(at("summary render"), 0);
    ASSERT_GE(at("finding echo"), 0);
    EXPECT_LT(at("begin a.php"), at("summary render"));
    EXPECT_LT(at("summary render"), at("end a.php"));
    EXPECT_LT(at("finding echo"), at("summary render"));
    EXPECT_LT(at("end a.php"), at("begin b.php"));
    EXPECT_LT(at("begin b.php"), at("end b.php"));
}

TEST(ObsObserverTest, ObserverIsOptionalAndDetachable) {
    php::Project project("demo");
    project.add_file("a.php", "<?php echo $_GET['q'];\n");
    DiagnosticSink sink;
    project.parse_all(sink);

    const Tool tool = make_phpsafe_tool();
    Engine engine(tool.kb, tool.options);
    EXPECT_EQ(engine.observer(), nullptr);
    const AnalysisResult without = engine.analyze(project);

    RecordingObserver observer;
    engine.set_observer(&observer);
    EXPECT_EQ(engine.observer(), &observer);
    const AnalysisResult with = engine.analyze(project);
    EXPECT_FALSE(observer.events.empty());

    engine.set_observer(nullptr);
    const size_t events_before = observer.events.size();
    const AnalysisResult detached = engine.analyze(project);
    EXPECT_EQ(observer.events.size(), events_before);

    EXPECT_EQ(without.findings.size(), with.findings.size());
    EXPECT_EQ(with.findings.size(), detached.findings.size());
}

TEST(ObsObserverTest, RunToolFillsCountersFromTheRun) {
    php::Project project("demo");
    project.add_file("a.php", "<?php $q = $_GET['q']; echo $q;\n");
    DiagnosticSink sink;
    project.parse_all(sink);  // parsing happens before run_tool's delta

    const AnalysisResult result = run_tool(make_phpsafe_tool(), project);
    EXPECT_EQ(result.counters.tokens_lexed, 0u);  // parsed outside the run
    EXPECT_GT(result.counters.sink_checks, 0u);
    EXPECT_GT(result.counters.scope_lookups, 0u);
    EXPECT_EQ(result.counters.findings_xss,
              static_cast<uint64_t>(result.count(VulnKind::kXss)));
}

}  // namespace
}  // namespace phpsafe
