// Property-style parameterized tests over the knowledge base and engine
// invariants:
//   * every configured XSS sanitizer silences echo of $_GET;
//   * every configured SQL escaper silences a mysql_query sink;
//   * every superglobal-style source reaches echo;
//   * every revert function revives exactly the sanitization it undoes;
//   * metamorphic invariants: renaming variables, inserting dead code or
//     comments never changes the set of findings.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/project.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace phpsafe {
namespace {

AnalysisResult analyze(const std::string& code) {
    php::Project project("prop");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    return Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
}

// -- sanitizers ----------------------------------------------------------------

class XssSanitizerSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(XssSanitizerSweep, SilencesEchoOfGet) {
    const std::string fn = GetParam();
    const auto r = analyze("<?php echo " + fn + "($_GET['x']);");
    EXPECT_EQ(r.count(VulnKind::kXss), 0) << fn;
}

INSTANTIATE_TEST_SUITE_P(
    AllXssSanitizers, XssSanitizerSweep,
    ::testing::Values("htmlentities", "htmlspecialchars", "strip_tags",
                      "urlencode", "rawurlencode", "intval", "floatval", "md5",
                      "sha1", "base64_encode", "bin2hex", "number_format",
                      "esc_html", "esc_attr", "esc_js", "esc_textarea", "esc_url",
                      "wp_kses_post", "sanitize_text_field", "sanitize_title",
                      "sanitize_email", "sanitize_key", "absint", "json_encode"));

class SqliSanitizerSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SqliSanitizerSweep, SilencesQuerySink) {
    const std::string fn = GetParam();
    const auto r = analyze("<?php $v = " + fn +
                           "($_POST['x']); mysql_query(\"SELECT '$v'\");");
    EXPECT_EQ(r.count(VulnKind::kSqli), 0) << fn;
}

INSTANTIATE_TEST_SUITE_P(
    AllSqlEscapers, SqliSanitizerSweep,
    ::testing::Values("mysql_escape_string", "mysql_real_escape_string",
                      "mysqli_real_escape_string", "addslashes", "intval",
                      "absint", "esc_sql", "like_escape", "pg_escape_string"));

// -- sources ---------------------------------------------------------------------

struct SourceCase {
    const char* expr;
    InputVector vector;
};

class SourceSweep : public ::testing::TestWithParam<SourceCase> {};

TEST_P(SourceSweep, ReachesEcho) {
    const SourceCase param = GetParam();
    const auto r = analyze("<?php $v = " + std::string(param.expr) + "; echo $v;");
    ASSERT_EQ(r.count(VulnKind::kXss), 1) << param.expr;
    EXPECT_EQ(r.findings[0].vector, param.vector) << param.expr;
}

INSTANTIATE_TEST_SUITE_P(
    AllSources, SourceSweep,
    ::testing::Values(
        SourceCase{"$_GET['k']", InputVector::kGet},
        SourceCase{"$_POST['k']", InputVector::kPost},
        SourceCase{"$_COOKIE['k']", InputVector::kCookie},
        SourceCase{"$_REQUEST['k']", InputVector::kRequest},
        SourceCase{"$_SERVER['HTTP_USER_AGENT']", InputVector::kServer},
        SourceCase{"$_FILES['f']['name']", InputVector::kFiles},
        SourceCase{"file_get_contents('u.txt')", InputVector::kFile},
        SourceCase{"fgets($fp, 64)", InputVector::kFile},
        SourceCase{"fread($fp, 64)", InputVector::kFile},
        SourceCase{"mysql_fetch_assoc($res)", InputVector::kDatabase},
        SourceCase{"mysql_fetch_array($res)", InputVector::kDatabase},
        SourceCase{"mysqli_fetch_assoc($res)", InputVector::kDatabase},
        SourceCase{"get_option('o')", InputVector::kDatabase},
        SourceCase{"get_post_meta(1, 'k', true)", InputVector::kDatabase},
        SourceCase{"get_transient('t')", InputVector::kDatabase},
        SourceCase{"getenv('PATH')", InputVector::kServer}),
    [](const ::testing::TestParamInfo<SourceCase>& info) {
        std::string name = info.param.expr;
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        return name;
    });

// -- sinks ------------------------------------------------------------------------

class XssSinkSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(XssSinkSweep, FiresOnTaintedArgument) {
    const std::string stmt = GetParam();
    const auto r = analyze("<?php $v = $_GET['x'];\n" + stmt + ";");
    EXPECT_EQ(r.count(VulnKind::kXss), 1) << stmt;
}

INSTANTIATE_TEST_SUITE_P(AllXssSinks, XssSinkSweep,
                         ::testing::Values("echo $v", "print $v",
                                           "printf('%s', $v)", "print_r($v)",
                                           "exit($v)", "die($v)", "_e($v)",
                                           "wp_die($v)", "trigger_error($v)",
                                           "vprintf('%s', $v)", "var_dump($v)"));

class SqliSinkSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SqliSinkSweep, FiresOnTaintedQuery) {
    const std::string stmt = GetParam();
    const auto r =
        analyze("<?php $v = $_GET['x']; $q = \"SELECT * FROM t WHERE a = '$v'\";\n" +
                stmt + ";");
    EXPECT_EQ(r.count(VulnKind::kSqli), 1) << stmt;
}

INSTANTIATE_TEST_SUITE_P(AllSqliSinks, SqliSinkSweep,
                         ::testing::Values("mysql_query($q)", "mysqli_query($c, $q)",
                                           "pg_query($q)", "$wpdb->query($q)",
                                           "$wpdb->get_results($q)",
                                           "$wpdb->get_var($q)",
                                           "$wpdb->get_row($q)",
                                           "$wpdb->get_col($q)"));

// -- reverts -----------------------------------------------------------------------

struct RevertCase {
    const char* sanitizer;
    const char* revert;
    VulnKind kind;
    const char* sink;  ///< statement template using $w
};

class RevertSweep : public ::testing::TestWithParam<RevertCase> {};

TEST_P(RevertSweep, RevivesSanitizedTaint) {
    const RevertCase param = GetParam();
    const std::string code = std::string("<?php $v = ") + param.sanitizer +
                             "($_GET['x']); $w = " + param.revert + "($v);\n" +
                             param.sink + ";";
    const auto r = analyze(code);
    EXPECT_EQ(r.count(param.kind), 1) << code;
}

INSTANTIATE_TEST_SUITE_P(
    AllReverts, RevertSweep,
    ::testing::Values(
        RevertCase{"addslashes", "stripslashes", VulnKind::kSqli,
                   "mysql_query(\"SELECT '$w'\")"},
        RevertCase{"addslashes", "stripcslashes", VulnKind::kSqli,
                   "mysql_query(\"SELECT '$w'\")"},
        RevertCase{"htmlentities", "html_entity_decode", VulnKind::kXss, "echo $w"},
        RevertCase{"htmlspecialchars", "htmlspecialchars_decode", VulnKind::kXss,
                   "echo $w"},
        RevertCase{"urlencode", "urldecode", VulnKind::kXss, "echo $w"},
        RevertCase{"rawurlencode", "rawurldecode", VulnKind::kXss, "echo $w"},
        RevertCase{"base64_encode", "base64_decode", VulnKind::kXss, "echo $w"},
        RevertCase{"wp_slash", "wp_unslash", VulnKind::kSqli,
                   "mysql_query(\"SELECT '$w'\")"}));

// -- metamorphic invariants -----------------------------------------------------------

TEST(MetamorphicTest, VariableRenamingPreservesFindingCount) {
    const auto r1 = analyze("<?php $alpha = $_GET['x']; echo $alpha;");
    const auto r2 = analyze("<?php $omega = $_GET['x']; echo $omega;");
    EXPECT_EQ(r1.findings.size(), r2.findings.size());
}

TEST(MetamorphicTest, CommentsDoNotChangeFindings) {
    const auto r1 = analyze("<?php $a = $_GET['x']; echo $a;");
    const auto r2 = analyze(
        "<?php /* block */ $a = $_GET['x']; // trailing\n# hash\necho $a;");
    EXPECT_EQ(r1.findings.size(), r2.findings.size());
}

TEST(MetamorphicTest, DeadSafeCodeDoesNotChangeFindings) {
    const std::string base = "<?php $a = $_GET['x']; echo $a;";
    const std::string padded =
        "<?php $safe1 = 'constant'; $safe2 = strlen($safe1); "
        "function unused_helper($n) { return $n + 1; } "
        "$a = $_GET['x']; echo $a;";
    EXPECT_EQ(analyze(base).findings.size(), analyze(padded).findings.size());
}

TEST(MetamorphicTest, SplittingConcatenationPreservesDetection) {
    const auto joined = analyze("<?php echo 'a' . $_GET['x'] . 'b';");
    const auto split = analyze(
        "<?php $s = 'a'; $s .= $_GET['x']; $s .= 'b'; echo $s;");
    EXPECT_EQ(joined.findings.size(), split.findings.size());
}

TEST(MetamorphicTest, ExtractingToFunctionPreservesDetection) {
    const auto inline_r = analyze("<?php echo $_GET['x'];");
    const auto extracted = analyze(
        "<?php function emit($v) { echo $v; } emit($_GET['x']);");
    EXPECT_EQ(inline_r.findings.size(), extracted.findings.size());
}

TEST(MetamorphicTest, SanitizerPositionIrrelevant) {
    const auto at_source = analyze(
        "<?php $v = htmlspecialchars($_GET['x']); echo $v;");
    const auto at_sink = analyze(
        "<?php $v = $_GET['x']; echo htmlspecialchars($v);");
    EXPECT_EQ(at_source.findings.size(), at_sink.findings.size());
    EXPECT_TRUE(at_source.findings.empty());
}

TEST(MetamorphicTest, DoubleSanitizationStillClean) {
    const auto r = analyze(
        "<?php echo htmlspecialchars(htmlspecialchars($_GET['x']));");
    EXPECT_TRUE(r.findings.empty());
}

TEST(MetamorphicTest, TaintSurvivesArbitraryPropagationChain) {
    const auto r = analyze(
        "<?php $v = $_GET['x']; $v = trim($v); $v = strtolower($v); "
        "$v = str_replace('a', 'b', $v); $v = substr($v, 0, 10); echo $v;");
    EXPECT_EQ(r.findings.size(), 1u);
}

// Every explicitly-listed propagation built-in must keep taint alive.
class PropagatorSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PropagatorSweep, KeepsTaintAlive) {
    const std::string fn = GetParam();
    const auto r = analyze("<?php echo " + fn + "($_GET['x']);");
    EXPECT_EQ(r.count(VulnKind::kXss), 1) << fn;
}

INSTANTIATE_TEST_SUITE_P(
    Propagators, PropagatorSweep,
    ::testing::Values("trim", "strtolower", "strtoupper", "ucfirst", "ucwords",
                      "nl2br", "strrev", "strtr", "strstr", "mb_substr",
                      "mb_strtolower", "iconv", "utf8_encode", "quotemeta",
                      "maybe_unserialize", "stripslashes"));

// Every safe-return built-in must yield an untainted result.
class SafeReturnSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SafeReturnSweep, ReturnsClean) {
    const std::string fn = GetParam();
    const auto r = analyze("<?php echo " + fn + "($_GET['x']);");
    EXPECT_EQ(r.count(VulnKind::kXss), 0) << fn;
}

INSTANTIATE_TEST_SUITE_P(
    SafeReturns, SafeReturnSweep,
    ::testing::Values("strlen", "count", "is_numeric", "is_string", "file_exists",
                      "function_exists", "similar_text", "levenshtein", "min",
                      "floor", "round", "substr_count", "mb_strlen",
                      "is_readable", "strcmp", "strpos", "ord", "abs"));

// -- json_writer.h ⇄ json_reader.h round trip ---------------------------------
//
// Random documents (strings with escapes / control bytes / UTF-8, nested
// arrays and objects, int64 boundary values, fixed-point doubles) emitted
// by JsonWriter must parse back byte-for-byte equivalent through JsonReader.

/// SplitMix64 — tiny deterministic PRNG so failures reproduce exactly.
struct Rng {
    uint64_t state;
    uint64_t next() {
        state += 0x9E3779B97F4A7C15ull;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
    uint64_t below(uint64_t bound) { return next() % bound; }
};

std::string random_json_string(Rng& rng) {
    static const std::vector<std::string> kAtoms = {
        "a", "Z", "0", " ", "\"", "\\", "/", "\n", "\r", "\t",
        std::string(1, '\0'), "\x01", "\x1f",
        "é", "ß", "漢字", "🙂",  // 2-, 2-, 3-, 4-byte UTF-8
        "<script>", "it's", "back\\slash", "line\nbreak"};
    std::string out;
    const size_t pieces = rng.below(12);
    for (size_t i = 0; i < pieces; ++i) out += kAtoms[rng.below(kAtoms.size())];
    return out;
}

int64_t random_int64(Rng& rng) {
    switch (rng.below(6)) {
        case 0: return 0;
        case 1: return -1;
        case 2: return std::numeric_limits<int64_t>::max();
        case 3: return std::numeric_limits<int64_t>::min() + 1;
        case 4: return (int64_t{1} << 53) + static_cast<int64_t>(rng.below(1000));
        default: return static_cast<int64_t>(rng.next());
    }
}

JsonValue random_document(Rng& rng, int depth) {
    JsonValue v;
    const uint64_t pick = rng.below(depth < 4 ? 7 : 5);
    switch (pick) {
        case 0: v.kind = JsonValue::Kind::kNull; break;
        case 1:
            v.kind = JsonValue::Kind::kBool;
            v.boolean = rng.below(2) == 1;
            break;
        case 2:
            v.kind = JsonValue::Kind::kNumber;
            v.number_is_integer = true;
            v.integer = random_int64(rng);
            v.number = static_cast<double>(v.integer);
            break;
        case 3:
            v.kind = JsonValue::Kind::kNumber;
            // Fixed 4-decimal doubles (what value(double) emits).
            v.number = static_cast<double>(static_cast<int64_t>(rng.below(2000000)) -
                                           1000000) /
                       10000.0;
            break;
        case 4:
            v.kind = JsonValue::Kind::kString;
            v.string = random_json_string(rng);
            break;
        case 5: {
            v.kind = JsonValue::Kind::kArray;
            const size_t n = rng.below(5);
            for (size_t i = 0; i < n; ++i)
                v.array.push_back(random_document(rng, depth + 1));
            break;
        }
        default: {
            v.kind = JsonValue::Kind::kObject;
            const size_t n = rng.below(5);
            for (size_t i = 0; i < n; ++i) {
                std::string key = "k";
                key += std::to_string(i);
                key += random_json_string(rng);
                v.object.emplace_back(std::move(key),
                                      random_document(rng, depth + 1));
            }
            break;
        }
    }
    return v;
}

void emit(JsonWriter& w, const JsonValue& v) {
    switch (v.kind) {
        case JsonValue::Kind::kNull: w.null(); break;
        case JsonValue::Kind::kBool: w.value(v.boolean); break;
        case JsonValue::Kind::kNumber:
            if (v.number_is_integer)
                w.value(v.integer);
            else
                w.value(v.number);
            break;
        case JsonValue::Kind::kString: w.value(v.string); break;
        case JsonValue::Kind::kArray:
            w.begin_array();
            for (const auto& e : v.array) emit(w, e);
            w.end_array();
            break;
        case JsonValue::Kind::kObject:
            w.begin_object();
            for (const auto& [k, e] : v.object) {
                w.key(k);
                emit(w, e);
            }
            w.end_object();
            break;
    }
}

::testing::AssertionResult equivalent(const JsonValue& want,
                                      const JsonValue& got) {
    if (want.kind != got.kind)
        return ::testing::AssertionFailure() << "kind mismatch";
    switch (want.kind) {
        case JsonValue::Kind::kNull: break;
        case JsonValue::Kind::kBool:
            if (want.boolean != got.boolean)
                return ::testing::AssertionFailure() << "bool mismatch";
            break;
        case JsonValue::Kind::kNumber:
            if (want.number_is_integer) {
                if (!got.number_is_integer || got.integer != want.integer)
                    return ::testing::AssertionFailure()
                           << "int " << want.integer << " read back as "
                           << (got.number_is_integer
                                   ? std::to_string(got.integer)
                                   : std::to_string(got.number));
            } else if (got.number != want.number) {
                // value(double) writes exactly 4 decimals, which every
                // generated double represents exactly; reparse must match.
                return ::testing::AssertionFailure()
                       << "double " << want.number << " != " << got.number;
            }
            break;
        case JsonValue::Kind::kString:
            if (want.string != got.string)
                return ::testing::AssertionFailure()
                       << "string mismatch: want " << want.string << " got "
                       << got.string;
            break;
        case JsonValue::Kind::kArray:
            if (want.array.size() != got.array.size())
                return ::testing::AssertionFailure() << "array size";
            for (size_t i = 0; i < want.array.size(); ++i)
                if (auto r = equivalent(want.array[i], got.array[i]); !r)
                    return r;
            break;
        case JsonValue::Kind::kObject:
            if (want.object.size() != got.object.size())
                return ::testing::AssertionFailure() << "object size";
            for (size_t i = 0; i < want.object.size(); ++i) {
                if (want.object[i].first != got.object[i].first)
                    return ::testing::AssertionFailure() << "key mismatch";
                if (auto r = equivalent(want.object[i].second,
                                        got.object[i].second);
                    !r)
                    return r;
            }
            break;
    }
    return ::testing::AssertionSuccess();
}

TEST(JsonRoundTripProperty, RandomDocumentsSurviveWriteThenRead) {
    Rng rng{0x5eed4a11};
    for (int iter = 0; iter < 500; ++iter) {
        const JsonValue doc = random_document(rng, 0);
        for (const int indent : {0, 2}) {
            std::ostringstream os;
            JsonWriter w(os, indent);
            emit(w, doc);
            JsonValue parsed;
            std::string error;
            ASSERT_TRUE(JsonReader::parse(os.str(), parsed, &error))
                << "iter " << iter << ": " << error << "\n" << os.str();
            EXPECT_TRUE(equivalent(doc, parsed)) << "iter " << iter << "\n"
                                                 << os.str();
        }
    }
}

TEST(JsonRoundTripProperty, Int64BoundariesExact) {
    for (const int64_t v : {std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min() + 1,
                            (int64_t{1} << 53) + 1, int64_t{0}}) {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.begin_object().kv("n", v).end_object();
        JsonValue parsed;
        ASSERT_TRUE(JsonReader::parse(os.str(), parsed, nullptr)) << os.str();
        EXPECT_EQ(parsed.int_or("n", -42), v);
    }
}

TEST(JsonRoundTripProperty, NonIntegerTokensStillReadAsDouble) {
    JsonValue parsed;
    ASSERT_TRUE(JsonReader::parse("{\"x\":2.5,\"y\":1e3}", parsed, nullptr));
    EXPECT_EQ(parsed.get("x")->number, 2.5);
    EXPECT_FALSE(parsed.get("x")->number_is_integer);
    EXPECT_EQ(parsed.int_or("y", 0), 1000);  // truncated double path
}

}  // namespace
}  // namespace phpsafe
