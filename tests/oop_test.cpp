// OOP analysis tests (paper §III.E): properties, methods, $this, static
// members, inheritance, $wpdb configuration, and the paper's own worked
// examples.
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/project.h"

namespace phpsafe {
namespace {

AnalysisResult analyze(const std::string& code, const Tool& tool) {
    php::Project project("test");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    return Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
}

AnalysisResult analyze(const std::string& code) {
    return analyze(code, make_phpsafe_tool());
}

TEST(OopTest, PaperMailSubscribeListExample) {
    // §III.E: $wpdb->get_results rows echoed without sanitization.
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "$results = $wpdb->get_results(\"SELECT * FROM \" . $wpdb->prefix . \"sml\");\n"
        "foreach ($results as $row) {\n"
        "    echo $row->sml_name;\n"
        "}");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kXss);
    EXPECT_EQ(r.findings[0].vector, InputVector::kDatabase);
    EXPECT_TRUE(r.findings[0].via_oop);
    EXPECT_EQ(r.findings[0].location.line, 4);
}

TEST(OopTest, PaperWpPhotoAlbumPlusExample) {
    // §V.C: prepared statement, but the output path reverts the slashes.
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "$image = $wpdb->get_var($wpdb->prepare(\"SELECT %s FROM t\", 'x'));\n"
        "echo stripslashes($image);");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kXss);
}

TEST(OopTest, WpdbQueryIsSqliSink) {
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "$id = $_GET['id'];\n"
        "$wpdb->query(\"DELETE FROM t WHERE id = $id\");");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kSqli);
    EXPECT_TRUE(r.findings[0].via_oop);
}

TEST(OopTest, WpdbPrepareSanitizesSqli) {
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "$id = $_GET['id'];\n"
        "$wpdb->query($wpdb->prepare(\"DELETE FROM t WHERE id = %d\", $id));");
    EXPECT_TRUE(r.findings.empty());
}

TEST(OopTest, WpdbKnownWithoutGlobalKeyword) {
    // $wpdb is a configured known global even at top-level scope.
    const auto r = analyze(
        "<?php $v = $wpdb->get_var(\"SELECT a FROM t\"); echo $v;");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(r.findings[0].via_oop);
}

TEST(OopTest, PropertyTaintAcrossMethods) {
    const auto r = analyze(
        "<?php class Widget {\n"
        "  public $content = '';\n"
        "  public function collect() { $this->content = $_POST['c']; }\n"
        "  public function render() { echo $this->content; }\n"
        "}\n"
        "$w = new Widget();\n"
        "$w->collect();\n"
        "$w->render();");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kPost);
    EXPECT_TRUE(r.findings[0].via_oop);
}

TEST(OopTest, ConstructorRunsOnNew) {
    const auto r = analyze(
        "<?php class Box {\n"
        "  public $v;\n"
        "  public function __construct($x) { $this->v = $x; }\n"
        "  public function show() { echo $this->v; }\n"
        "}\n"
        "$b = new Box($_GET['x']);\n"
        "$b->show();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(OopTest, MethodReturningTaint) {
    const auto r = analyze(
        "<?php class Repo {\n"
        "  public function fetch() { return $_COOKIE['session_note']; }\n"
        "}\n"
        "$r = new Repo();\n"
        "echo $r->fetch();");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kCookie);
}

TEST(OopTest, InheritedMethodResolved) {
    const auto r = analyze(
        "<?php class Base {\n"
        "  public function danger($v) { echo $v; }\n"
        "}\n"
        "class Child extends Base {}\n"
        "$c = new Child();\n"
        "$c->danger($_GET['x']);");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(OopTest, StaticMethodCall) {
    const auto r = analyze(
        "<?php class Util {\n"
        "  public static function show($v) { echo $v; }\n"
        "}\n"
        "Util::show($_GET['x']);");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(OopTest, StaticPropertyFlow) {
    const auto r = analyze(
        "<?php class Cfg { public static $banner = ''; }\n"
        "Cfg::$banner = $_GET['b'];\n"
        "echo Cfg::$banner;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(OopTest, SelfStaticCallInsideClass) {
    const auto r = analyze(
        "<?php class A {\n"
        "  public static function out($v) { echo $v; }\n"
        "  public static function run() { self::out($_GET['x']); }\n"
        "}\n"
        "A::run();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(OopTest, MethodNameFallbackWhenClassUnknown) {
    // Receiver type unknown (returned by an unknown factory), but only one
    // class declares the method — resolved by unique-name fallback.
    const auto r = analyze(
        "<?php class Printer { public function put($v) { echo $v; } }\n"
        "$p = acme_factory();\n"
        "$p->put($_GET['x']);");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(OopTest, SanitizingMethodLearned) {
    const auto r = analyze(
        "<?php class Esc { public function h($v) { return htmlspecialchars($v); } }\n"
        "$e = new Esc();\n"
        "echo $e->h($_GET['x']);");
    EXPECT_TRUE(r.findings.empty());
}

TEST(OopTest, PropertyOfTaintedValueIsTainted) {
    // Rows from DB are objects; any property read carries the row taint.
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "$row = $wpdb->get_row(\"SELECT * FROM t\");\n"
        "echo $row->title;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(OopTest, MysqliOopInterface) {
    const auto r = analyze(
        "<?php $db = new mysqli('h', 'u', 'p', 'd');\n"
        "$q = $_POST['q'];\n"
        "$db->query(\"SELECT * FROM t WHERE a = '$q'\");");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kSqli);
}

// --- OOP-blind behaviour (RIPS-like / Pixy-like) ----------------------------

TEST(OopTest, RipsLikeMissesWpdbFlows) {
    const std::string code =
        "<?php global $wpdb;\n"
        "$rows = $wpdb->get_results(\"SELECT * FROM t\");\n"
        "foreach ($rows as $row) { echo $row->name; }";
    const auto phpsafe_r = analyze(code);
    const auto rips_r = analyze(code, make_rips_like_tool());
    EXPECT_EQ(phpsafe_r.findings.size(), 1u);
    EXPECT_TRUE(rips_r.findings.empty());
}

TEST(OopTest, RipsLikeStillFindsProceduralInSameFile) {
    const std::string code =
        "<?php $w = new Widget();\n"
        "echo $_GET['x'];";
    const auto rips_r = analyze(code, make_rips_like_tool());
    EXPECT_EQ(rips_r.findings.size(), 1u);
}

TEST(OopTest, PixyLikeFailsOopFile) {
    const std::string code =
        "<?php $w = new Widget();\n"
        "echo $_GET['x'];";
    const auto pixy_r = analyze(code, make_pixy_like_tool());
    EXPECT_TRUE(pixy_r.findings.empty());
    EXPECT_EQ(pixy_r.files_failed, 1);
    EXPECT_GE(pixy_r.error_messages, 1);
}

TEST(OopTest, PixyLikeAnalyzesProceduralFile) {
    const auto pixy_r = analyze("<?php echo $_GET['x'];", make_pixy_like_tool());
    EXPECT_EQ(pixy_r.findings.size(), 1u);
    EXPECT_EQ(pixy_r.files_failed, 0);
}

TEST(OopTest, PixyLikeSkipsUncalledFunctions) {
    const auto pixy_r = analyze("<?php function cb() { echo $_GET['q']; }",
                                make_pixy_like_tool());
    EXPECT_TRUE(pixy_r.findings.empty());
}

TEST(OopTest, WpOptionSourceNeedsWordpressProfile) {
    const std::string code = "<?php $v = get_option('site_msg'); echo $v;";
    EXPECT_EQ(analyze(code).findings.size(), 1u);
    EXPECT_TRUE(analyze(code, make_rips_like_tool()).findings.empty());
}

TEST(OopTest, EscHtmlKnownOnlyToWordpressProfile) {
    const std::string code = "<?php echo esc_html($_GET['x']);";
    EXPECT_TRUE(analyze(code).findings.empty());           // phpSAFE: sanitizer
    EXPECT_EQ(analyze(code, make_rips_like_tool()).findings.size(), 1u);  // FP
}

}  // namespace
}  // namespace phpsafe
