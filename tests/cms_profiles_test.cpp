// Tests for the Drupal and Joomla profiles (paper future work §VI): the
// same engine detects CMS-specific flows once the configuration files for
// that CMS are loaded — "this is what it takes for phpSAFE to be able to
// analyze plugins from other CMSs" (§III.A).
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/project.h"

namespace phpsafe {
namespace {

AnalysisResult analyze_with(const KnowledgeBase& kb, const std::string& code) {
    php::Project project("cms");
    project.add_file("module.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    return Analyzer::borrowing(kb, AnalysisOptions{}).scan(project).result;
}

KnowledgeBase drupal_kb() {
    KnowledgeBase kb = make_generic_php_kb();
    add_drupal_profile(kb);
    return kb;
}

KnowledgeBase joomla_kb() {
    KnowledgeBase kb = make_generic_php_kb();
    add_joomla_profile(kb);
    return kb;
}

// --- Drupal ------------------------------------------------------------------

TEST(DrupalProfileTest, DbQueryIsSqliSink) {
    const auto r = analyze_with(drupal_kb(),
                                "<?php $name = $_GET['name'];\n"
                                "db_query(\"SELECT * FROM {users} WHERE name = "
                                "'$name'\");");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kSqli);
}

TEST(DrupalProfileTest, DbQueryResultIsDbSource) {
    const auto r = analyze_with(drupal_kb(),
                                "<?php $row = db_fetch_object(db_query('q'));\n"
                                "echo $row->title;");
    ASSERT_GE(r.count(VulnKind::kXss), 1);
    EXPECT_EQ(r.findings[0].vector, InputVector::kDatabase);
}

TEST(DrupalProfileTest, CheckPlainSanitizesXss) {
    const auto r = analyze_with(drupal_kb(),
                                "<?php echo check_plain($_GET['q']);");
    EXPECT_TRUE(r.findings.empty());
}

TEST(DrupalProfileTest, FilterXssSanitizes) {
    const auto r = analyze_with(drupal_kb(),
                                "<?php print filter_xss($_POST['body']);");
    EXPECT_TRUE(r.findings.empty());
}

TEST(DrupalProfileTest, DrupalSetMessageIsXssSink) {
    const auto r = analyze_with(
        drupal_kb(), "<?php drupal_set_message('Saved ' . $_GET['title']);");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kXss);
}

TEST(DrupalProfileTest, VariableGetIsDbSource) {
    const auto r = analyze_with(drupal_kb(),
                                "<?php echo variable_get('site_slogan', '');");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kDatabase);
}

TEST(DrupalProfileTest, WithoutProfileDrupalFlowsAreMissed) {
    const auto r = analyze_with(make_generic_php_kb(),
                                "<?php echo variable_get('site_slogan', '');");
    EXPECT_TRUE(r.findings.empty());
}

// --- Joomla ------------------------------------------------------------------

TEST(JoomlaProfileTest, JRequestGetVarIsSource) {
    const auto r = analyze_with(joomla_kb(),
                                "<?php $task = JRequest::getVar('task');\n"
                                "echo $task;");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kRequest);
    EXPECT_TRUE(r.findings[0].via_oop);
}

TEST(JoomlaProfileTest, JRequestGetIntIsSafe) {
    const auto r = analyze_with(joomla_kb(),
                                "<?php echo JRequest::getInt('limit');");
    EXPECT_TRUE(r.findings.empty());
}

TEST(JoomlaProfileTest, SetQueryThroughFactoryIsSqliSink) {
    const auto r = analyze_with(
        joomla_kb(),
        "<?php $db = JFactory::getDBO();\n"
        "$id = JRequest::getVar('id');\n"
        "$db->setQuery(\"DELETE FROM #__items WHERE id = $id\");");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, VulnKind::kSqli);
}

TEST(JoomlaProfileTest, EscapeSanitizesSqli) {
    const auto r = analyze_with(
        joomla_kb(),
        "<?php $db = JFactory::getDBO();\n"
        "$id = $db->escape(JRequest::getVar('id'));\n"
        "$db->setQuery(\"DELETE FROM #__items WHERE id = '$id'\");");
    EXPECT_TRUE(r.findings.empty());
}

TEST(JoomlaProfileTest, LoadObjectListIsDbSource) {
    const auto r = analyze_with(joomla_kb(),
                                "<?php $db = JFactory::getDBO();\n"
                                "$rows = $db->loadObjectList();\n"
                                "foreach ($rows as $row) { echo $row->title; }");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kDatabase);
}

TEST(JoomlaProfileTest, ProfilesCompose) {
    // WordPress + Joomla profiles can coexist in one knowledge base.
    KnowledgeBase kb = make_generic_php_kb();
    add_wordpress_profile(kb);
    add_joomla_profile(kb);
    const auto r = analyze_with(kb,
                                "<?php echo esc_html(JRequest::getVar('q'));");
    EXPECT_TRUE(r.findings.empty());  // Joomla source, WordPress sanitizer
    const auto r2 = analyze_with(kb, "<?php echo JRequest::getVar('q');");
    EXPECT_EQ(r2.findings.size(), 1u);
}

}  // namespace
}  // namespace phpsafe
