// Lexer unit tests: token_get_all-equivalent behaviour on the constructs
// the analysis relies on (tags, variables, strings, interpolation,
// heredocs, comments, operators, casts).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "php/lexer.h"
#include "util/source.h"

namespace phpsafe::php {
namespace {

/// Owns the source text and arena the returned tokens' views point into;
/// kept alive for the whole test run so token text never dangles.
struct LexKeeper {
    explicit LexKeeper(std::string code)
        : file("test.php", std::move(code)) {}
    SourceFile file;
    Arena arena;
};

std::vector<Token> lex(const std::string& code, Lexer::Options options = {}) {
    static std::vector<std::unique_ptr<LexKeeper>> keepers;
    keepers.push_back(std::make_unique<LexKeeper>(code));
    LexKeeper& k = *keepers.back();
    DiagnosticSink sink;
    Lexer lexer(k.file, k.arena, sink, options);
    return lexer.tokenize();
}

std::vector<TokenKind> kinds(const std::vector<Token>& tokens) {
    std::vector<TokenKind> out;
    for (const Token& t : tokens) out.push_back(t.kind);
    return out;
}

TEST(LexerTest, EmptyFileYieldsEof) {
    const auto tokens = lex("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
}

TEST(LexerTest, PureHtmlIsOneInlineToken) {
    const auto tokens = lex("<html><body>Hello</body></html>");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kInlineHtml);
    EXPECT_EQ(tokens[0].text, "<html><body>Hello</body></html>");
}

TEST(LexerTest, OpenTagSwitchesToPhpMode) {
    const auto tokens = lex("<?php $x;");
    ASSERT_GE(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kOpenTag);
    EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
    EXPECT_EQ(tokens[1].text, "$x");
    EXPECT_EQ(tokens[2].kind, TokenKind::kSemicolon);
}

TEST(LexerTest, OpenTagWithEcho) {
    const auto tokens = lex("<?= $msg ?>");
    EXPECT_EQ(tokens[0].kind, TokenKind::kOpenTagWithEcho);
    EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
    EXPECT_EQ(tokens[2].kind, TokenKind::kCloseTag);
}

TEST(LexerTest, CloseTagReturnsToHtml) {
    const auto tokens = lex("<?php echo 1; ?>after");
    const auto k = kinds(tokens);
    // open, keyword(echo), int, ;, close, html, eof
    ASSERT_EQ(k.size(), 7u);
    EXPECT_EQ(k[4], TokenKind::kCloseTag);
    EXPECT_EQ(k[5], TokenKind::kInlineHtml);
    EXPECT_EQ(tokens[5].text, "after");
}

TEST(LexerTest, VariableNamesKeepDollar) {
    const auto tokens = lex("<?php $_GET $_POST $wpdb $this;");
    EXPECT_EQ(tokens[1].text, "$_GET");
    EXPECT_EQ(tokens[2].text, "$_POST");
    EXPECT_EQ(tokens[3].text, "$wpdb");
    EXPECT_EQ(tokens[4].text, "$this");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
    const auto tokens = lex("<?php IF ELSE Function CLASS;");
    EXPECT_TRUE(tokens[1].is_keyword("if"));
    EXPECT_TRUE(tokens[2].is_keyword("else"));
    EXPECT_TRUE(tokens[3].is_keyword("function"));
    EXPECT_TRUE(tokens[4].is_keyword("class"));
}

TEST(LexerTest, IdentifiersKeepCase) {
    const auto tokens = lex("<?php MyClass my_function;");
    EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
    EXPECT_EQ(tokens[1].text, "MyClass");
    EXPECT_EQ(tokens[2].text, "my_function");
}

TEST(LexerTest, IntegerLiterals) {
    const auto tokens = lex("<?php 42 0x1F 0b101 1_000;");
    EXPECT_EQ(tokens[1].kind, TokenKind::kIntLiteral);
    EXPECT_EQ(tokens[1].text, "42");
    EXPECT_EQ(tokens[2].text, "0x1F");
    EXPECT_EQ(tokens[3].text, "0b101");
    EXPECT_EQ(tokens[4].text, "1_000");
}

TEST(LexerTest, FloatLiterals) {
    const auto tokens = lex("<?php 3.14 1e10 2.5e-3;");
    EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLiteral);
    EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLiteral);
    EXPECT_EQ(tokens[3].kind, TokenKind::kFloatLiteral);
}

TEST(LexerTest, SingleQuotedStringDecodesEscapes) {
    const auto tokens = lex(R"(<?php 'it\'s \\ raw \n';)");
    ASSERT_EQ(tokens[1].kind, TokenKind::kSingleQuotedString);
    EXPECT_EQ(tokens[1].value, "it's \\ raw \\n");
}

TEST(LexerTest, DoubleQuotedStringDecodesEscapes) {
    const auto tokens = lex(R"(<?php "a\tb\nc\x41";)");
    ASSERT_EQ(tokens[1].kind, TokenKind::kDoubleQuotedString);
    EXPECT_EQ(tokens[1].value, "a\tb\ncA");
}

TEST(LexerTest, SimpleInterpolation) {
    const auto tokens = lex(R"(<?php "Hello $name!";)");
    const Token& t = tokens[1];
    ASSERT_TRUE(t.has_interpolation());
    ASSERT_EQ(t.parts.size(), 3u);
    EXPECT_EQ(t.parts[0].text, "Hello ");
    EXPECT_EQ(t.parts[1].kind, StringPart::Kind::kExpression);
    EXPECT_EQ(t.parts[1].text, "$name");
    EXPECT_EQ(t.parts[2].text, "!");
}

TEST(LexerTest, PropertyInterpolation) {
    const auto tokens = lex(R"(<?php "v: $obj->prop end";)");
    const Token& t = tokens[1];
    ASSERT_TRUE(t.has_interpolation());
    EXPECT_EQ(t.parts[1].text, "$obj->prop");
}

TEST(LexerTest, IndexInterpolationQuotesBareKeys) {
    const auto tokens = lex(R"(<?php "v: $row[name]";)");
    const Token& t = tokens[1];
    ASSERT_TRUE(t.has_interpolation());
    EXPECT_EQ(t.parts[1].text, "$row['name']");
}

TEST(LexerTest, ComplexInterpolation) {
    const auto tokens = lex(R"(<?php "x {$a->b['c']} y";)");
    const Token& t = tokens[1];
    ASSERT_TRUE(t.has_interpolation());
    EXPECT_EQ(t.parts[1].text, "$a->b['c']");
}

TEST(LexerTest, EscapedDollarIsNotInterpolation) {
    const auto tokens = lex(R"(<?php "costs \$5";)");
    EXPECT_FALSE(tokens[1].has_interpolation());
    EXPECT_EQ(tokens[1].value, "costs $5");
}

TEST(LexerTest, HeredocInterpolates) {
    const auto tokens = lex("<?php $x = <<<EOT\nHello $name\nEOT;\n");
    bool found = false;
    for (const Token& t : tokens) {
        if (t.kind == TokenKind::kHeredoc) {
            found = true;
            EXPECT_TRUE(t.has_interpolation());
        }
    }
    EXPECT_TRUE(found);
}

TEST(LexerTest, NowdocDoesNotInterpolate) {
    const auto tokens = lex("<?php $x = <<<'EOT'\nHello $name\nEOT;\n");
    bool found = false;
    for (const Token& t : tokens) {
        if (t.kind == TokenKind::kNowdoc) {
            found = true;
            EXPECT_FALSE(t.has_interpolation());
            EXPECT_EQ(t.value, "Hello $name");
        }
    }
    EXPECT_TRUE(found);
}

TEST(LexerTest, CommentsSkippedByDefault) {
    const auto tokens = lex("<?php // line\n# hash\n/* block */ $x;");
    EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
}

TEST(LexerTest, CommentsKeptOnRequest) {
    Lexer::Options options;
    options.keep_comments = true;
    const auto tokens = lex("<?php // note\n$x;", options);
    EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
    EXPECT_EQ(tokens[1].text, "// note");
}

TEST(LexerTest, LineCommentStopsAtCloseTag) {
    const auto tokens = lex("<?php // c ?>html");
    bool close = false, html = false;
    for (const Token& t : tokens) {
        if (t.kind == TokenKind::kCloseTag) close = true;
        if (t.kind == TokenKind::kInlineHtml) html = true;
    }
    EXPECT_TRUE(close);
    EXPECT_TRUE(html);
}

TEST(LexerTest, MultiCharOperators) {
    const auto tokens = lex("<?php -> :: => === !== <=> ?? ?\?= .= <<= **;");
    const auto k = kinds(tokens);
    EXPECT_EQ(k[1], TokenKind::kArrow);
    EXPECT_EQ(k[2], TokenKind::kDoubleColon);
    EXPECT_EQ(k[3], TokenKind::kDoubleArrow);
    EXPECT_EQ(k[4], TokenKind::kIdentical);
    EXPECT_EQ(k[5], TokenKind::kNotIdentical);
    EXPECT_EQ(k[6], TokenKind::kSpaceship);
    EXPECT_EQ(k[7], TokenKind::kCoalesce);
    EXPECT_EQ(k[8], TokenKind::kCoalesceEq);
    EXPECT_EQ(k[9], TokenKind::kConcatEq);
    EXPECT_EQ(k[10], TokenKind::kShlEq);
    EXPECT_EQ(k[11], TokenKind::kPow);
}

TEST(LexerTest, CastTokens) {
    const auto tokens = lex("<?php (int)$x; (string) $y; (notacast)$z;");
    EXPECT_EQ(tokens[1].kind, TokenKind::kCast);
    EXPECT_EQ(tokens[1].value, "int");
    EXPECT_EQ(tokens[4].kind, TokenKind::kCast);
    EXPECT_EQ(tokens[4].value, "string");
    EXPECT_EQ(tokens[7].kind, TokenKind::kLParen);  // not a cast
}

TEST(LexerTest, LineNumbersTracked) {
    const auto tokens = lex("<?php\n$a;\n\n$b;");
    ASSERT_GE(tokens.size(), 5u);
    EXPECT_EQ(tokens[1].text, "$a");
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[3].text, "$b");
    EXPECT_EQ(tokens[3].line, 4);
}

TEST(LexerTest, UnterminatedStringRecordsError) {
    SourceFile file("bad.php", "<?php $x = 'oops");
    DiagnosticSink sink;
    Arena arena;
    Lexer lexer(file, arena, sink);
    lexer.tokenize();
    EXPECT_GE(sink.count(Severity::kError), 1);
}

TEST(LexerTest, ShortOpenTag) {
    const auto tokens = lex("<? $x;");
    EXPECT_EQ(tokens[0].kind, TokenKind::kOpenTag);
    EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
}

TEST(LexerTest, HeredocWithIndentedTerminator) {
    const auto tokens = lex("<?php $x = <<<EOT\nbody\n  EOT;\n");
    bool found = false;
    for (const Token& t : tokens)
        if (t.kind == TokenKind::kHeredoc) found = true;
    EXPECT_TRUE(found);
}

TEST(LexerTest, BacktickLexedAsString) {
    const auto tokens = lex("<?php `ls $dir`;");
    EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleQuotedString);
    EXPECT_TRUE(tokens[1].has_interpolation());
}

TEST(LexerTest, Php8AttributeSkipped) {
    const auto tokens = lex("<?php #[Attr(1, [2])]\n$x;");
    EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
}

}  // namespace
}  // namespace phpsafe::php
