// Dynamic-interpreter tests: concrete execution semantics of the PHP
// subset — output capture, loose typing, control flow, functions, objects,
// the WordPress stubs and the sanitization built-ins.
#include <gtest/gtest.h>

#include "dynamic/interpreter.h"
#include "php/project.h"

namespace phpsafe::dynamic {
namespace {

php::Project make_project(const std::string& code) {
    php::Project project("dyn");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    return project;
}

ExecResult run(const std::string& code,
               const std::function<void(Interpreter&)>& setup = {}) {
    static php::Project* keep = nullptr;
    delete keep;
    keep = new php::Project(make_project(code));
    Interpreter interpreter(*keep);
    if (setup) setup(interpreter);
    return interpreter.run_file("main.php");
}

TEST(InterpreterTest, EchoLiteral) {
    const ExecResult r = run("<?php echo 'hello'; echo ' ', 'world';");
    EXPECT_EQ(r.output, "hello world");
    EXPECT_TRUE(r.completed);
}

TEST(InterpreterTest, InlineHtmlEmitted) {
    const ExecResult r = run("<b>bold</b><?php echo '!'; ?> done");
    EXPECT_EQ(r.output, "<b>bold</b>! done");
}

TEST(InterpreterTest, VariablesAndConcat) {
    const ExecResult r = run("<?php $a = 'x'; $b = $a . 'y'; $b .= 'z'; echo $b;");
    EXPECT_EQ(r.output, "xyz");
}

TEST(InterpreterTest, SuperglobalValues) {
    const ExecResult r = run("<?php echo $_GET['name'];", [](Interpreter& i) {
        i.set_superglobal("$_GET", "name", "alice");
    });
    EXPECT_EQ(r.output, "alice");
}

TEST(InterpreterTest, SuperglobalDefaultFloods) {
    const ExecResult r = run("<?php echo $_GET['whatever_key'];",
                             [](Interpreter& i) {
                                 i.set_superglobal_default("$_GET", "PAYLOAD");
                             });
    EXPECT_EQ(r.output, "PAYLOAD");
}

TEST(InterpreterTest, ArithmeticAndComparison) {
    const ExecResult r =
        run("<?php echo 2 + 3 * 4; echo ' '; echo 10 == '10' ? 'eq' : 'ne';");
    EXPECT_EQ(r.output, "14 eq");
}

TEST(InterpreterTest, InterpolatedString) {
    const ExecResult r = run("<?php $n = 'Bob'; echo \"Hi $n!\";");
    EXPECT_EQ(r.output, "Hi Bob!");
}

TEST(InterpreterTest, IfElseExecution) {
    const ExecResult r =
        run("<?php $x = 5; if ($x > 3) { echo 'big'; } else { echo 'small'; }");
    EXPECT_EQ(r.output, "big");
}

TEST(InterpreterTest, WhileLoopWithBreak) {
    const ExecResult r = run(
        "<?php $i = 0; while (true) { $i++; if ($i >= 3) { break; } } echo $i;");
    EXPECT_EQ(r.output, "3");
}

TEST(InterpreterTest, ForLoop) {
    const ExecResult r =
        run("<?php for ($i = 0; $i < 4; $i++) { echo $i; }");
    EXPECT_EQ(r.output, "0123");
}

TEST(InterpreterTest, ForeachWithKeys) {
    const ExecResult r = run(
        "<?php $a = array('x' => 1, 'y' => 2); "
        "foreach ($a as $k => $v) { echo $k, '=', $v, ';'; }");
    EXPECT_EQ(r.output, "x=1;y=2;");
}

TEST(InterpreterTest, SwitchWithFallthrough) {
    const ExecResult r = run(
        "<?php $t = 2; switch ($t) { case 1: echo 'one'; case 2: echo 'two'; "
        "case 3: echo 'three'; break; default: echo 'other'; }");
    EXPECT_EQ(r.output, "twothree");
}

TEST(InterpreterTest, UserFunctionCallAndReturn) {
    const ExecResult r = run(
        "<?php function add($a, $b) { return $a + $b; } echo add(2, 3);");
    EXPECT_EQ(r.output, "5");
}

TEST(InterpreterTest, DefaultParameters) {
    const ExecResult r = run(
        "<?php function greet($name = 'world') { return 'hi ' . $name; } "
        "echo greet(); echo '|'; echo greet('bob');");
    EXPECT_EQ(r.output, "hi world|hi bob");
}

TEST(InterpreterTest, GlobalKeyword) {
    const ExecResult r = run(
        "<?php $site = 'acme'; function show() { global $site; echo $site; } "
        "show();");
    EXPECT_EQ(r.output, "acme");
}

TEST(InterpreterTest, ObjectsAndMethods) {
    const ExecResult r = run(
        "<?php class Greeter {\n"
        "  public $name = 'x';\n"
        "  public function __construct($n) { $this->name = $n; }\n"
        "  public function hello() { return 'hello ' . $this->name; }\n"
        "}\n"
        "$g = new Greeter('ann'); echo $g->hello();");
    EXPECT_EQ(r.output, "hello ann");
}

// Mirrors the engine regression found by phpsafe_fuzz: a property default
// that `new`s its own class must not re-enter construction forever.
TEST(InterpreterTest, SelfReferentialPropertyDefaultTerminates) {
    const ExecResult r = run(
        "<?php\n"
        "class C { public $p = new C(); }\n"
        "$o = new C();\n"
        "echo 'done';");
    EXPECT_EQ(r.output, "done");
    EXPECT_TRUE(r.completed);
}

TEST(InterpreterTest, StaticMethodAndSelf) {
    const ExecResult r = run(
        "<?php class M { public static function twice($x) { return $x * 2; } "
        "public static function quad($x) { return self::twice(self::twice($x)); } }\n"
        "echo M::quad(3);");
    EXPECT_EQ(r.output, "12");
}

TEST(InterpreterTest, ExitStopsExecution) {
    const ExecResult r = run("<?php echo 'a'; exit; echo 'b';");
    EXPECT_EQ(r.output, "a");
    EXPECT_TRUE(r.exited);
}

TEST(InterpreterTest, DieWithMessageEmitsIt) {
    const ExecResult r = run("<?php die('fatal: stop');");
    EXPECT_EQ(r.output, "fatal: stop");
    EXPECT_TRUE(r.exited);
}

TEST(InterpreterTest, SanitizersActuallySanitize) {
    const ExecResult r = run(
        "<?php echo htmlspecialchars('<b>'), '|', intval('12abc'), '|', "
        "addslashes(\"o'clock\");");
    EXPECT_EQ(r.output, "&lt;b&gt;|12|o\\'clock");
}

TEST(InterpreterTest, StripslashesUndoesAddslashes) {
    const ExecResult r = run("<?php echo stripslashes(addslashes(\"a'b\"));");
    EXPECT_EQ(r.output, "a'b");
}

TEST(InterpreterTest, IsNumericAndCtype) {
    const ExecResult r = run(
        "<?php echo is_numeric('42') ? 'y' : 'n'; echo is_numeric('4x') ? 'y' : 'n';"
        "echo ctype_digit('007') ? 'y' : 'n'; echo ctype_digit('a1') ? 'y' : 'n';");
    EXPECT_EQ(r.output, "ynyn");
}

TEST(InterpreterTest, PregMatchWithCapture) {
    const ExecResult r = run(
        "<?php if (preg_match('/(\\d+)/', 'id=982;', $m)) { echo $m[1]; }");
    EXPECT_EQ(r.output, "982");
}

TEST(InterpreterTest, QueriesCaptured) {
    const ExecResult r = run(
        "<?php mysql_query(\"SELECT 1\"); global $wpdb; "
        "$wpdb->query(\"DELETE FROM t\");");
    ASSERT_EQ(r.queries.size(), 2u);
    EXPECT_EQ(r.queries[0], "SELECT 1");
    EXPECT_EQ(r.queries[1], "DELETE FROM t");
}

TEST(InterpreterTest, WpdbResultsIterate) {
    const ExecResult r = run(
        "<?php global $wpdb;\n"
        "$rows = $wpdb->get_results(\"SELECT * FROM x\");\n"
        "foreach ($rows as $row) { echo '[', $row->name, ']'; }",
        [](Interpreter& i) { i.seed_database("CELL", 3); });
    EXPECT_EQ(r.output, "[CELL][CELL][CELL]");
}

TEST(InterpreterTest, MysqlFetchLoopTerminates) {
    const ExecResult r = run(
        "<?php $res = mysql_query('q');\n"
        "while ($row = mysql_fetch_assoc($res)) { echo $row['c'], ';'; }",
        [](Interpreter& i) { i.seed_database("V", 2); });
    EXPECT_EQ(r.output, "V;V;");
    EXPECT_TRUE(r.completed);
}

TEST(InterpreterTest, WpdbPrepareQuotesAndEscapes) {
    const ExecResult r = run(
        "<?php global $wpdb;\n"
        "$wpdb->query($wpdb->prepare(\"SELECT %s WHERE id = %d\", \"a'b\", '9x'));");
    ASSERT_EQ(r.queries.size(), 1u);
    EXPECT_EQ(r.queries[0], "SELECT 'a\\'b' WHERE id = 9");
}

TEST(InterpreterTest, FileSeedsReadable) {
    const ExecResult r = run(
        "<?php $fp = fopen('f.txt', 'r'); echo fgets($fp, 128);",
        [](Interpreter& i) { i.seed_file_contents("FILEDATA"); });
    EXPECT_EQ(r.output, "FILEDATA");
}

TEST(InterpreterTest, CmsStoreSeeds) {
    const ExecResult r = run("<?php echo get_option('greeting');",
                             [](Interpreter& i) { i.seed_cms_store("OPT"); });
    EXPECT_EQ(r.output, "OPT");
}

TEST(InterpreterTest, ClosuresViaAddActionRun) {
    const ExecResult r = run(
        "<?php add_action('init', function () { echo 'hooked'; });");
    EXPECT_EQ(r.output, "hooked");
}

TEST(InterpreterTest, NamedHookHandlersRun) {
    const ExecResult r = run(
        "<?php function my_init() { echo 'named'; } add_action('init', 'my_init');");
    EXPECT_EQ(r.output, "named");
}

TEST(InterpreterTest, ClosureCapturesUseValues) {
    const ExecResult r = run(
        "<?php $msg = 'cap'; $f = function () use ($msg) { echo $msg; }; $f();");
    EXPECT_EQ(r.output, "cap");
}

TEST(InterpreterTest, IncludeExecutesOtherFile) {
    php::Project project("multi");
    project.add_file("main.php", "<?php $x = 'inc'; include 'other.php';");
    project.add_file("other.php", "<?php echo $x, 'luded';");
    DiagnosticSink sink;
    project.parse_all(sink);
    Interpreter interpreter(project);
    const ExecResult r = interpreter.run_file("main.php");
    EXPECT_EQ(r.output, "included");
}

TEST(InterpreterTest, InfiniteLoopHitsBudget) {
    const ExecResult r = run("<?php while (true) { $x = 1; } echo 'after';");
    EXPECT_TRUE(r.budget_exhausted);
}

TEST(InterpreterTest, UnsetRemovesVariable) {
    const ExecResult r = run(
        "<?php $a = 'v'; unset($a); echo isset($a) ? 'set' : 'unset';");
    EXPECT_EQ(r.output, "unset");
}

TEST(InterpreterTest, ListAssignment) {
    const ExecResult r = run(
        "<?php list($a, $b) = array('x', 'y'); echo $a, $b;");
    EXPECT_EQ(r.output, "xy");
}

TEST(InterpreterTest, InArrayWhitelist) {
    const ExecResult r = run(
        "<?php $t = 'evil'; "
        "$v = in_array($t, array('one', 'two')) ? $t : 'one'; echo $v;");
    EXPECT_EQ(r.output, "one");
}

TEST(InterpreterTest, StrReplaceAndSprintf) {
    const ExecResult r = run(
        "<?php echo str_replace('a', 'o', 'banana'), '|', sprintf('%s=%d', 'n', '7');");
    EXPECT_EQ(r.output, "bonono|n=7");
}

}  // namespace
}  // namespace phpsafe::dynamic
