// Second wave of dynamic-interpreter tests: sanitizer round-trips the
// validator depends on, include semantics, recursion limits, and the
// WordPress stub behaviours.
#include <gtest/gtest.h>

#include "dynamic/interpreter.h"
#include "php/project.h"

namespace phpsafe::dynamic {
namespace {

ExecResult run(const std::string& code,
               const std::function<void(Interpreter&)>& setup = {}) {
    static php::Project* keep = nullptr;
    delete keep;
    keep = new php::Project("dyn2");
    keep->add_file("main.php", code);
    DiagnosticSink sink;
    keep->parse_all(sink);
    Interpreter interpreter(*keep);
    if (setup) setup(interpreter);
    return interpreter.run_file("main.php");
}

TEST(InterpreterSemanticsTest, HtmlspecialcharsNeutralizesPayload) {
    const ExecResult r = run("<?php echo htmlspecialchars($_GET['x']);",
                             [](Interpreter& i) {
                                 i.set_superglobal_default("$_GET",
                                                           "<script>x</script>");
                             });
    EXPECT_EQ(r.output.find("<script>"), std::string::npos);
    EXPECT_NE(r.output.find("&lt;script&gt;"), std::string::npos);
}

TEST(InterpreterSemanticsTest, StripTagsRemovesPayload) {
    const ExecResult r = run("<?php echo sanitize_text_field($_POST['x']);",
                             [](Interpreter& i) {
                                 i.set_superglobal_default("$_POST",
                                                           "a<script>b</script>c");
                             });
    EXPECT_EQ(r.output, "abc");
}

TEST(InterpreterSemanticsTest, IntvalDestroysPayload) {
    const ExecResult r = run("<?php echo intval($_GET['n']);",
                             [](Interpreter& i) {
                                 i.set_superglobal_default("$_GET", "7<script>");
                             });
    EXPECT_EQ(r.output, "7");
}

TEST(InterpreterSemanticsTest, AddslashesEscapesQuote) {
    const ExecResult r = run(
        "<?php $q = addslashes($_POST['id']);\n"
        "mysql_query(\"SELECT '$q'\");",
        [](Interpreter& i) {
            i.set_superglobal_default("$_POST", "1' OR '1'='1");
        });
    ASSERT_EQ(r.queries.size(), 1u);
    EXPECT_EQ(r.queries[0].find("1' OR"), std::string::npos);
    EXPECT_NE(r.queries[0].find("1\\' OR"), std::string::npos);
}

TEST(InterpreterSemanticsTest, HeredocInterpolationExecutes) {
    const ExecResult r = run(
        "<?php $name = 'Ann';\n"
        "echo <<<EOT\nHello $name!\nEOT;\n");
    EXPECT_EQ(r.output, "Hello Ann!");
}

TEST(InterpreterSemanticsTest, AlternativeSyntaxRuns) {
    const ExecResult r = run(
        "<?php $on = true; if ($on): ?>YES<?php else: ?>NO<?php endif;");
    EXPECT_EQ(r.output, "YES");
}

TEST(InterpreterSemanticsTest, RecursionBounded) {
    const ExecResult r = run(
        "<?php function down($n) { if ($n <= 0) { return 0; } "
        "return down($n - 1); } echo down(1000);");
    // Call depth is capped; execution must terminate without crashing.
    SUCCEED() << r.output;
}

TEST(InterpreterSemanticsTest, IncludeOnceSemanticsViaGuard) {
    php::Project project("inc");
    project.add_file("main.php",
                     "<?php include 'part.php'; include 'part.php';");
    project.add_file("part.php", "<?php echo 'x';");
    DiagnosticSink sink;
    project.parse_all(sink);
    Interpreter interpreter(project);
    const ExecResult r = interpreter.run_file("main.php");
    // Re-inclusion of an actively-included file is skipped; sequential
    // repeats run again (plain `include`).
    EXPECT_EQ(r.output, "xx");
}

TEST(InterpreterSemanticsTest, SelfIncludeDoesNotLoopForever) {
    php::Project project("inc");
    project.add_file("main.php", "<?php echo 'a'; include 'main.php'; echo 'b';");
    DiagnosticSink sink;
    project.parse_all(sink);
    Interpreter interpreter(project);
    const ExecResult r = interpreter.run_file("main.php");
    EXPECT_EQ(r.output, "ab");
    EXPECT_TRUE(r.completed);
}

TEST(InterpreterSemanticsTest, PropertyStatePersistsAcrossMethodCalls) {
    const ExecResult r = run(
        "<?php class Counter {\n"
        "  public $n = 0;\n"
        "  public function bump() { $this->n = $this->n + 1; }\n"
        "  public function show() { echo $this->n; }\n"
        "}\n"
        "$c = new Counter(); $c->bump(); $c->bump(); $c->show();");
    EXPECT_EQ(r.output, "2");
}

TEST(InterpreterSemanticsTest, TwoInstancesHaveDistinctState) {
    const ExecResult r = run(
        "<?php class Box { public $v = ''; }\n"
        "$a = new Box(); $b = new Box();\n"
        "$a->v = 'A'; $b->v = 'B';\n"
        "echo $a->v, $b->v;");
    EXPECT_EQ(r.output, "AB");
}

TEST(InterpreterSemanticsTest, WpdbGetColReturnsStrings) {
    const ExecResult r = run(
        "<?php global $wpdb;\n"
        "$names = $wpdb->get_col('SELECT name FROM t');\n"
        "echo implode(',', $names);",
        [](Interpreter& i) { i.seed_database("N", 2); });
    EXPECT_EQ(r.output, "N,N");
}

TEST(InterpreterSemanticsTest, GetVarReturnsSeed) {
    const ExecResult r = run(
        "<?php global $wpdb; echo $wpdb->get_var('SELECT 1');",
        [](Interpreter& i) { i.seed_database("CELL", 1); });
    EXPECT_EQ(r.output, "CELL");
}

TEST(InterpreterSemanticsTest, UrlencodeRoundTrip) {
    const ExecResult r = run(
        "<?php echo urldecode(urlencode('<a b>'));");
    EXPECT_EQ(r.output, "<a b>");
}

TEST(InterpreterSemanticsTest, HtmlEntityDecodeRevertsEscaping) {
    const ExecResult r = run(
        "<?php echo html_entity_decode(htmlspecialchars('<i>'));");
    EXPECT_EQ(r.output, "<i>");
}

TEST(InterpreterSemanticsTest, SubstrAndStrlen) {
    const ExecResult r = run(
        "<?php echo substr('abcdef', 1, 3), '|', substr('abc', -2), '|', "
        "strlen('hello');");
    EXPECT_EQ(r.output, "bcd|bc|5");
}

TEST(InterpreterSemanticsTest, ExplodeAndCount) {
    const ExecResult r = run(
        "<?php $parts = explode(',', 'a,b,c'); echo count($parts), $parts[1];");
    EXPECT_EQ(r.output, "3b");
}

TEST(InterpreterSemanticsTest, WpDieStopsAndEmits) {
    const ExecResult r = run("<?php wp_die('denied'); echo 'after';");
    EXPECT_EQ(r.output, "denied");
    EXPECT_TRUE(r.exited);
}

TEST(InterpreterSemanticsTest, VariableFunctionByName) {
    const ExecResult r = run(
        "<?php function hello() { echo 'hi'; } $fn = 'hello'; $fn();");
    EXPECT_EQ(r.output, "hi");
}

TEST(InterpreterSemanticsTest, StaticPropertyViaGlobalsStore) {
    const ExecResult r = run(
        "<?php class S { public static $m = ''; }\n"
        "S::$m = 'stored';\n"
        "echo S::$m;");
    EXPECT_EQ(r.output, "stored");
}

TEST(InterpreterSemanticsTest, GlobalsSuperglobalRead) {
    const ExecResult r = run(
        "<?php $site = 'acme'; $all = $GLOBALS; echo $all['site'];");
    EXPECT_EQ(r.output, "acme");
}

TEST(InterpreterSemanticsTest, StaticVariablePersistsAcrossCalls) {
    const ExecResult r = run(
        "<?php function tick() { static $n = 0; $n = $n + 1; echo $n; }\n"
        "tick(); tick(); tick();");
    EXPECT_EQ(r.output, "123");
}

TEST(InterpreterSemanticsTest, GeneratorYieldsIterable) {
    const ExecResult r = run(
        "<?php function nums() { yield 'a'; yield 'b'; }\n"
        "foreach (nums() as $n) { echo $n; }");
    EXPECT_EQ(r.output, "ab");
}

TEST(InterpreterSemanticsTest, NumericStringJuggling) {
    const ExecResult r = run(
        "<?php echo ('5' + '3'), '|', ('5' . '3'), '|', ('05' == '5' ? 'eq' : 'ne');");
    EXPECT_EQ(r.output, "8|53|eq");
}

}  // namespace
}  // namespace phpsafe::dynamic
