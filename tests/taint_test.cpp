// Taint-domain unit tests: TaintValue merge/sanitize/revert algebra and
// the latent-taint mechanism behind the paper's revert functions.
#include <gtest/gtest.h>

#include "core/taint.h"

namespace phpsafe {
namespace {

TaintValue tainted_get() {
    return TaintValue::source(kBothVulns, InputVector::kGet, {"a.php", 1}, "$_GET");
}

TEST(TaintValueTest, CleanByDefault) {
    const TaintValue v = TaintValue::clean();
    EXPECT_FALSE(v.tainted_any());
    EXPECT_TRUE(v.trace.empty());
    EXPECT_EQ(v.vector, InputVector::kUnknown);
}

TEST(TaintValueTest, SourceConstruction) {
    const TaintValue v = tainted_get();
    EXPECT_TRUE(v.tainted(VulnKind::kXss));
    EXPECT_TRUE(v.tainted(VulnKind::kSqli));
    EXPECT_TRUE(v.user_input);
    EXPECT_EQ(v.vector, InputVector::kGet);
    ASSERT_EQ(v.trace.size(), 1u);
}

TEST(TaintValueTest, DbSourceIsNotUserInput) {
    const TaintValue v = TaintValue::source(kBothVulns, InputVector::kDatabase,
                                            {"a.php", 2}, "get_results");
    EXPECT_FALSE(v.user_input);
}

TEST(TaintValueTest, MergeUnionsTaint) {
    TaintValue a = TaintValue::clean();
    a.merge(tainted_get());
    EXPECT_TRUE(a.tainted_any());
    EXPECT_EQ(a.vector, InputVector::kGet);
}

TEST(TaintValueTest, MergeKeepsFirstKnownVector) {
    TaintValue a = tainted_get();
    TaintValue b = TaintValue::source(kBothVulns, InputVector::kDatabase,
                                      {"a.php", 3}, "db");
    a.merge(b);
    EXPECT_EQ(a.vector, InputVector::kGet);
}

TEST(TaintValueTest, SanitizeMovesToLatent) {
    TaintValue v = tainted_get();
    v.apply_sanitizer(kXssOnly, {"a.php", 2}, "htmlspecialchars");
    EXPECT_FALSE(v.tainted(VulnKind::kXss));
    EXPECT_TRUE(v.tainted(VulnKind::kSqli));
    EXPECT_TRUE(v.latent.contains(VulnKind::kXss));
}

TEST(TaintValueTest, RevertRevivesLatent) {
    TaintValue v = tainted_get();
    v.apply_sanitizer(kSqliOnly, {"a.php", 2}, "addslashes");
    EXPECT_FALSE(v.tainted(VulnKind::kSqli));
    v.apply_revert(kSqliOnly, {"a.php", 3}, "stripslashes");
    EXPECT_TRUE(v.tainted(VulnKind::kSqli));
    EXPECT_FALSE(v.latent.contains(VulnKind::kSqli));
}

TEST(TaintValueTest, RevertWithoutLatentIsNoop) {
    TaintValue v = TaintValue::clean();
    v.apply_revert(kBothVulns, {"a.php", 1}, "stripslashes");
    EXPECT_FALSE(v.tainted_any());
}

TEST(TaintValueTest, RevertOnlyRevivesMatchingKinds) {
    TaintValue v = tainted_get();
    v.apply_sanitizer(kBothVulns, {"a.php", 2}, "intval");
    v.apply_revert(kXssOnly, {"a.php", 3}, "html_entity_decode");
    EXPECT_TRUE(v.tainted(VulnKind::kXss));
    EXPECT_FALSE(v.tainted(VulnKind::kSqli));
    EXPECT_TRUE(v.latent.contains(VulnKind::kSqli));
}

TEST(TaintValueTest, SanitizeRecordsTraceStep) {
    TaintValue v = tainted_get();
    const size_t before = v.trace.size();
    v.apply_sanitizer(kXssOnly, {"a.php", 2}, "htmlspecialchars");
    EXPECT_EQ(v.trace.size(), before + 1);
    EXPECT_NE(v.trace.back().description.find("htmlspecialchars"),
              std::string::npos);
}

TEST(TaintValueTest, TraceStepsMaterializeInSourceOrder) {
    TaintValue v = tainted_get();
    v.add_step({"a.php", 2}, "assigned to $x");
    v.add_step({"a.php", 3}, "assigned to $y");
    const std::vector<TaintStep> steps = v.trace.steps();
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_NE(steps[0].description.find("source"), std::string::npos);
    EXPECT_EQ(steps[1].description, "assigned to $x");
    EXPECT_EQ(steps[2].description, "assigned to $y");
}

TEST(TaintValueTest, CowCopyIsolatesTraces) {
    // The trace is copy-on-write: extending a copy must never change the
    // original's reported trace (they share the common prefix internally).
    TaintValue original = tainted_get();
    original.add_step({"a.php", 2}, "assigned to $x");
    const std::vector<TaintStep> before = original.trace.steps();

    TaintValue copy = original;
    copy.add_step({"a.php", 3}, "assigned to $y");
    copy.add_step({"a.php", 4}, "assigned to $z");

    const std::vector<TaintStep> after = original.trace.steps();
    ASSERT_EQ(after.size(), before.size());
    for (size_t i = 0; i < after.size(); ++i) {
        EXPECT_EQ(after[i].location, before[i].location) << i;
        EXPECT_EQ(after[i].description, before[i].description) << i;
    }
    EXPECT_EQ(copy.trace.size(), before.size() + 2);
}

TEST(TaintValueTest, CowMergeSharesWithoutAliasing) {
    TaintValue a = TaintValue::clean();
    TaintValue b = tainted_get();
    a.merge(b);  // a adopts b's (tainted) trace
    b.add_step({"a.php", 9}, "later step on b");
    EXPECT_EQ(a.trace.size(), 1u);
    EXPECT_EQ(b.trace.size(), 2u);
    EXPECT_NE(a.trace.back().description.find("source"), std::string::npos);
}

TEST(TaintValueTest, TraceCapped) {
    TaintValue v = tainted_get();
    for (int i = 0; i < 100; ++i) v.add_step({"a.php", i}, "step");
    EXPECT_LE(v.trace.size(), TaintValue::kMaxTraceSteps);
}

TEST(TaintValueTest, ParamFlowsUnionByParam) {
    TaintValue v;
    v.add_param_flow(0, kXssOnly);
    v.add_param_flow(0, kSqliOnly);
    v.add_param_flow(1, kXssOnly);
    ASSERT_EQ(v.param_flows.size(), 2u);
    EXPECT_EQ(v.param_flows[0].kinds, kBothVulns);
}

TEST(TaintValueTest, SanitizerPrunesParamFlows) {
    TaintValue v;
    v.add_param_flow(0, kXssOnly);
    v.apply_sanitizer(kXssOnly, {"a.php", 1}, "htmlspecialchars");
    EXPECT_TRUE(v.param_flows.empty());
}

TEST(TaintValueTest, SanitizerKeepsOtherKindParamFlows) {
    TaintValue v;
    v.add_param_flow(0, kBothVulns);
    v.apply_sanitizer(kXssOnly, {"a.php", 1}, "htmlspecialchars");
    ASSERT_EQ(v.param_flows.size(), 1u);
    EXPECT_EQ(v.param_flows[0].kinds, kSqliOnly);
}

TEST(TaintValueTest, MergePropagatesParamFlows) {
    TaintValue a;
    TaintValue b;
    b.add_param_flow(2, kXssOnly);
    a.merge(b);
    ASSERT_EQ(a.param_flows.size(), 1u);
    EXPECT_EQ(a.param_flows[0].param, 2);
}

TEST(TaintValueTest, ResetClearsEverything) {
    TaintValue v = tainted_get();
    v.add_param_flow(0, kBothVulns);
    v.object_class = "wpdb";
    v.reset();
    EXPECT_FALSE(v.tainted_any());
    EXPECT_TRUE(v.param_flows.empty());
    EXPECT_TRUE(v.object_class.empty());
    EXPECT_TRUE(v.trace.empty());
}

TEST(TaintValueTest, MergePrefersTaintedTrace) {
    TaintValue clean_with_trace = TaintValue::clean();
    clean_with_trace.add_step({"a.php", 1}, "benign");
    const TaintValue tainted = tainted_get();
    clean_with_trace.merge(tainted);
    // After the merge the value is tainted; its trace must lead to a source.
    bool has_source = false;
    for (const TaintStep& step : clean_with_trace.trace.steps())
        if (step.description.find("source") != std::string::npos) has_source = true;
    EXPECT_TRUE(has_source);
}

TEST(TaintValueTest, ViaOopSticksOnMerge) {
    TaintValue a = TaintValue::clean();
    TaintValue b = tainted_get();
    b.via_oop = true;
    a.merge(b);
    EXPECT_TRUE(a.via_oop);
}

}  // namespace
}  // namespace phpsafe
