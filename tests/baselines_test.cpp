// Tests for the tool factories (baselines/analyzers.h): each baseline's
// capability envelope must match what the paper attributes to the tool —
// the envelope, not special-cased behaviour, is what produces Table I.
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"

namespace phpsafe {
namespace {

TEST(ToolFactoryTest, PhpSafeConfiguration) {
    const Tool tool = make_phpsafe_tool();
    EXPECT_EQ(tool.name, "phpSAFE");
    EXPECT_TRUE(tool.options.oop_support);
    EXPECT_TRUE(tool.options.analyze_uncalled_functions);
    EXPECT_FALSE(tool.options.fail_on_oop_file);
    EXPECT_EQ(tool.options.max_include_depth, 8);  // paper §V.E failures
    // WordPress profile loaded out of the box (paper §III.A).
    EXPECT_NE(tool.kb.function("esc_html"), nullptr);
    EXPECT_NE(tool.kb.method("wpdb", "get_results"), nullptr);
    EXPECT_NE(tool.kb.known_global_class("$wpdb"), nullptr);
    EXPECT_FALSE(tool.kb.model_register_globals);
}

TEST(ToolFactoryTest, RipsLikeConfiguration) {
    const Tool tool = make_rips_like_tool();
    EXPECT_EQ(tool.name, "RIPS");
    EXPECT_FALSE(tool.options.oop_support);
    EXPECT_TRUE(tool.options.analyze_uncalled_functions);
    EXPECT_FALSE(tool.options.fail_on_oop_file);
    EXPECT_GT(tool.options.max_include_depth, 8);  // completed every file
    // Generic PHP knowledge only: no WordPress entries.
    EXPECT_EQ(tool.kb.function("esc_html"), nullptr);
    EXPECT_EQ(tool.kb.function("get_option"), nullptr);
    EXPECT_NE(tool.kb.function("htmlspecialchars"), nullptr);
    EXPECT_NE(tool.kb.function("mysql_query"), nullptr);
    EXPECT_FALSE(tool.kb.model_register_globals);
}

TEST(ToolFactoryTest, PixyLikeConfiguration) {
    const Tool tool = make_pixy_like_tool();
    EXPECT_EQ(tool.name, "Pixy");
    EXPECT_FALSE(tool.options.oop_support);
    EXPECT_TRUE(tool.options.fail_on_oop_file);       // predates PHP 5 OOP
    EXPECT_FALSE(tool.options.analyze_uncalled_functions);  // paper §V.A
    EXPECT_FALSE(tool.options.analyze_closures);      // closures are PHP 5.3
    EXPECT_TRUE(tool.kb.model_register_globals);      // 2007-era default
    // 2007-era tables: no mysqli, no WordPress.
    EXPECT_EQ(tool.kb.function("mysqli_real_escape_string"), nullptr);
    EXPECT_EQ(tool.kb.function("esc_html"), nullptr);
    EXPECT_NE(tool.kb.function("htmlentities"), nullptr);
}

TEST(ToolFactoryTest, FactoriesAreIndependent) {
    // Mutating one tool's options must not leak into another instance.
    Tool a = make_phpsafe_tool();
    a.options.oop_support = false;
    const Tool b = make_phpsafe_tool();
    EXPECT_TRUE(b.options.oop_support);
}

TEST(RunToolTest, FillsTimingAndIdentity) {
    php::Project project("timing");
    project.add_file("main.php", "<?php echo $_GET['x'];");
    DiagnosticSink sink;
    project.parse_all(sink);
    const AnalysisResult result = run_tool(make_phpsafe_tool(), project);
    EXPECT_EQ(result.tool, "phpSAFE");
    EXPECT_EQ(result.plugin, "timing");
    EXPECT_GE(result.cpu_seconds, 0.0);
    EXPECT_EQ(result.files_total, 1);
    EXPECT_EQ(result.findings.size(), 1u);
}

TEST(RunToolTest, SameProjectAcrossAllTools) {
    // One parsed project can be analyzed by every tool (analysis is const
    // with respect to the project).
    php::Project project("shared");
    project.add_file("main.php",
                     "<?php echo $_GET['a']; $o = new C(); echo $_POST['b'];");
    DiagnosticSink sink;
    project.parse_all(sink);
    const AnalysisResult phpsafe_r = run_tool(make_phpsafe_tool(), project);
    const AnalysisResult rips_r = run_tool(make_rips_like_tool(), project);
    const AnalysisResult pixy_r = run_tool(make_pixy_like_tool(), project);
    EXPECT_EQ(phpsafe_r.findings.size(), 2u);
    EXPECT_EQ(rips_r.findings.size(), 2u);
    EXPECT_TRUE(pixy_r.findings.empty());  // OOP construct fails the file
    // And phpSAFE again, to confirm no cross-tool state leaked.
    EXPECT_EQ(run_tool(make_phpsafe_tool(), project).findings.size(), 2u);
}

TEST(EngineOptionsTest, MaxCallDepthGuards) {
    Tool tool = make_phpsafe_tool();
    tool.options.max_call_depth = 2;
    php::Project project("depth");
    project.add_file("main.php",
                     "<?php function a($x) { return b($x); }\n"
                     "function b($x) { return c($x); }\n"
                     "function c($x) { return $x; }\n"
                     "echo a($_GET['q']);");
    DiagnosticSink sink;
    project.parse_all(sink);
    // Must terminate; detection may degrade to conservative propagation.
    const AnalysisResult r =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
    EXPECT_GE(r.findings.size(), 1u);
}

TEST(EngineOptionsTest, TrackObjectTypesOffStillSafe) {
    Tool tool = make_phpsafe_tool();
    tool.options.track_object_types = false;
    php::Project project("notrack");
    project.add_file("main.php",
                     "<?php global $wpdb; echo $wpdb->get_var('q');");
    DiagnosticSink sink;
    project.parse_all(sink);
    // Without type tracking the wildcard method entry still matches.
    const AnalysisResult r =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
    EXPECT_EQ(r.findings.size(), 1u);
}

}  // namespace
}  // namespace phpsafe
