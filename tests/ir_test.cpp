// Tests for the flat dataflow IR (core/ir.h): structural assertions on the
// lowered instruction stream — statement gates, loop markers, def/use
// blocks, depth bookkeeping, the per-run lowering cache — plus behavioral
// equivalence of the IR taint backend against the recursive AST evaluator
// it replaces. The full-corpus byte-identity battery lives in
// tests/differential_test.cpp; here the comparisons are small and targeted
// so a failure points at one lowering rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/ir.h"
#include "phpsafe.h"

namespace phpsafe {
namespace {

/// Parses one source file into a project (must parse cleanly).
php::Project parse_one(const std::string& text) {
    php::Project project("ir-test");
    project.add_file("a.php", text);
    DiagnosticSink sink;
    project.parse_all(sink);
    EXPECT_FALSE(project.files().empty());
    EXPECT_FALSE(project.files()[0]->parse_failed);
    return project;
}

/// Lowers the entry file's statement list with the given options.
struct Lowered {
    php::Project project;
    KnowledgeBase kb;
    SymbolTable symbols;
    ir::Module module;
    const ir::Body* body = nullptr;

    explicit Lowered(const std::string& text,
                     AnalysisOptions options = AnalysisOptions::phpsafe())
        : project(parse_one(text)), kb(make_generic_php_kb()) {
        body = &module.lower(kb, options, symbols,
                             project.files()[0]->unit.statements);
    }
};

std::vector<ir::Op> ops_of(const ir::Body& body) {
    std::vector<ir::Op> ops;
    for (uint32_t i = 0; i < body.inst_count; ++i)
        ops.push_back(body.insts[i].op);
    return ops;
}

int count_op(const ir::Body& body, ir::Op op) {
    int n = 0;
    for (uint32_t i = 0; i < body.inst_count; ++i)
        if (body.insts[i].op == op) ++n;
    return n;
}

TEST(IrLoweringTest, InstStaysCacheFriendly) {
    // The executor walks the stream linearly; the 24-byte layout is what
    // keeps typical bodies inside a few cache lines.
    static_assert(sizeof(ir::Inst) == 24);
    static_assert(std::is_trivially_copyable_v<ir::Inst>);
}

TEST(IrLoweringTest, StraightLineLowersToGatedStatements) {
    const Lowered low("<?php $x = $_GET['q']; echo $x;\n");
    const ir::Body& body = *low.body;
    ASSERT_GT(body.inst_count, 0u);

    // The file body is a statement list, so every statement is preceded by
    // one failed-file gate — and nothing else jumps.
    EXPECT_EQ(count_op(body, ir::Op::kStmtGate), 2);
    EXPECT_EQ(count_op(body, ir::Op::kLoopBegin), 0);

    // The taint-relevant ops appear in source order.
    const std::vector<ir::Op> ops = ops_of(body);
    const auto sg = std::find(ops.begin(), ops.end(), ir::Op::kSgArrayRead);
    const auto assign = std::find(ops.begin(), ops.end(), ir::Op::kAssignFinish);
    const auto read = std::find(ops.begin(), ops.end(), ir::Op::kVarRead);
    const auto echo = std::find(ops.begin(), ops.end(), ir::Op::kEchoSink);
    ASSERT_NE(sg, ops.end());
    ASSERT_NE(assign, ops.end());
    ASSERT_NE(read, ops.end());
    ASSERT_NE(echo, ops.end());
    EXPECT_LT(sg, assign);
    EXPECT_LT(assign, read);
    EXPECT_LT(read, echo);
}

TEST(IrLoweringTest, GatesSkipToTheEndOfTheirList) {
    // exec_stmts breaks out of the WHOLE list once the file has failed, so
    // every gate of a flat file body jumps to the same place: past the
    // last instruction of the list.
    const Lowered low("<?php $a = 1; $b = 2; echo $b;\n");
    const ir::Body& body = *low.body;
    int gates = 0;
    for (uint32_t i = 0; i < body.inst_count; ++i) {
        if (body.insts[i].op != ir::Op::kStmtGate) continue;
        ++gates;
        EXPECT_GT(body.insts[i].c, i + 1);  // always forward past something
        EXPECT_EQ(body.insts[i].c, body.inst_count);
    }
    EXPECT_EQ(gates, 3);
}

TEST(IrLoweringTest, SingleTripLoopsLowerInlineWithoutMarkers) {
    // AnalysisOptions::phpsafe() runs loop bodies once, so the lowered
    // stream needs no loop machinery at all — the body is inline.
    const Lowered low("<?php while ($x) { echo $_GET['q']; }\n");
    EXPECT_EQ(count_op(*low.body, ir::Op::kLoopBegin), 0);
    EXPECT_EQ(count_op(*low.body, ir::Op::kLoopEnd), 0);
    EXPECT_EQ(count_op(*low.body, ir::Op::kEchoSink), 1);
}

TEST(IrLoweringTest, MultiTripLoopsGetBoundedBackEdges) {
    const AnalysisOptions options =
        AnalysisOptions::phpsafe().to_builder().loop_iterations(3).build();
    const Lowered low("<?php while ($x) { $y = $y . $_GET['q']; }\n", options);
    const ir::Body& body = *low.body;
    ASSERT_EQ(count_op(body, ir::Op::kLoopBegin), 1);
    ASSERT_EQ(count_op(body, ir::Op::kLoopEnd), 1);
    uint32_t begin = 0, end = 0;
    for (uint32_t i = 0; i < body.inst_count; ++i) {
        if (body.insts[i].op == ir::Op::kLoopBegin) begin = i;
        if (body.insts[i].op == ir::Op::kLoopEnd) end = i;
    }
    EXPECT_LT(begin, end);
    EXPECT_EQ(body.insts[begin].b, 3u);          // trip count
    EXPECT_EQ(body.insts[end].b, begin + 1);     // back edge to first body op
}

TEST(IrLoweringTest, BlocksPartitionTheStreamAndCarryDefUse) {
    Lowered low("<?php $x = $_GET['q']; $y = $x; echo $y;\n");
    const ir::Body& body = *low.body;
    ASSERT_GT(body.block_count, 0u);

    // Blocks tile [0, inst_count) without gaps or overlap.
    uint32_t covered = 0;
    for (uint32_t b = 0; b < body.block_count; ++b) {
        EXPECT_EQ(body.blocks[b].first, covered);
        covered += body.blocks[b].count;
    }
    EXPECT_EQ(covered, body.inst_count);

    // The union of the per-block facts names both assigned variables as
    // defs and both read variables as uses, as interned symbol ids.
    const Symbol x = low.symbols.intern("$x");
    const Symbol y = low.symbols.intern("$y");
    std::vector<Symbol> defs, uses;
    for (uint32_t b = 0; b < body.block_count; ++b) {
        const ir::Block& block = body.blocks[b];
        for (uint32_t i = 0; i < block.defs_count; ++i)
            defs.push_back(body.facts[block.defs_first + i]);
        for (uint32_t i = 0; i < block.uses_count; ++i)
            uses.push_back(body.facts[block.uses_first + i]);
    }
    EXPECT_NE(std::find(defs.begin(), defs.end(), x), defs.end());
    EXPECT_NE(std::find(defs.begin(), defs.end(), y), defs.end());
    EXPECT_NE(std::find(uses.begin(), uses.end(), x), uses.end());
    EXPECT_NE(std::find(uses.begin(), uses.end(), y), uses.end());
}

TEST(IrLoweringTest, MaxDepthTracksExpressionNesting) {
    const Lowered flat("<?php echo $x;\n");
    const Lowered nested("<?php echo f(g(h($x . $y)));\n");
    EXPECT_GT(nested.body->max_depth, flat.body->max_depth);
    // Statement-root expressions sit at depth 1; no op is deeper than the
    // recorded maximum.
    for (uint32_t i = 0; i < nested.body->inst_count; ++i)
        EXPECT_LE(nested.body->insts[i].depth, nested.body->max_depth);
}

TEST(IrLoweringTest, ModuleCachesBodiesByListIdentity) {
    Lowered low("<?php echo $_GET['q'];\n");
    const ir::Body* again = &low.module.lower(
        low.kb, AnalysisOptions::phpsafe(), low.symbols,
        low.project.files()[0]->unit.statements);
    EXPECT_EQ(again, low.body);  // same Body object, not a re-lowering
    EXPECT_EQ(low.module.body_count(), 1u);
    EXPECT_EQ(low.module.find(low.project.files()[0]->unit.statements),
              low.body);
}

/// Runs one source file through a phpSAFE-preset engine on the given
/// backend and renders the canonical result signature.
std::string signature_on(const std::string& text, EngineBackend backend) {
    php::Project project("ir-equiv");
    project.add_file("a.php", text);
    DiagnosticSink sink;
    project.parse_all(sink);
    Tool tool = make_phpsafe_tool();
    tool.options = tool.options.to_builder().engine_backend(backend).build();
    return result_signature(run_tool(tool, project));
}

TEST(IrBackendTest, FindingsAreByteIdenticalOnRepresentativeFlows) {
    const char* cases[] = {
        // direct superglobal → sink
        "<?php echo $_GET['q'];\n",
        // assignment chain + concat
        "<?php $a = $_POST['x']; $b = 'p' . $a; echo $b;\n",
        // sanitizer kills the flow
        "<?php echo htmlspecialchars($_GET['q']);\n",
        // inter-procedural via summary
        "<?php function f($v) { echo $v; } f($_COOKIE['c']);\n",
        // branch-insensitive join
        "<?php if ($c) { $x = $_GET['a']; } else { $x = 'safe'; } echo $x;\n",
        // loop with compound concat assignment
        "<?php $s = ''; for ($i = 0; $i < 3; $i++) { $s .= $_GET['q']; } "
        "echo $s;\n",
        // OOP property flow
        "<?php class C { public $p; } $o = new C(); $o->p = $_GET['q']; "
        "echo $o->p;\n",
        // print/exit sinks and ternary
        "<?php $v = $_REQUEST['r']; print $v ?: 'none';\n",
    };
    for (const char* source : cases) {
        EXPECT_EQ(signature_on(source, EngineBackend::kAst),
                  signature_on(source, EngineBackend::kIr))
            << "diverging source:\n"
            << source;
    }
}

TEST(IrBackendTest, IrRunsExerciseTheIrCountersOnly) {
    const std::string source = "<?php echo $_GET['q'];\n";
    const obs::CounterDelta ast_delta;
    signature_on(source, EngineBackend::kAst);
    const obs::Counters ast = ast_delta.take();
    EXPECT_EQ(ast.ir_body_runs, 0u);
    EXPECT_EQ(ast.ir_bodies_lowered, 0u);

    const obs::CounterDelta ir_delta;
    signature_on(source, EngineBackend::kIr);
    const obs::Counters ir = ir_delta.take();
    EXPECT_GT(ir.ir_body_runs, 0u);
    EXPECT_GT(ir.ir_bodies_lowered, 0u);
    EXPECT_GT(ir.ir_insts_lowered, ir.ir_bodies_lowered);
    EXPECT_GT(ir.ir_blocks_lowered, 0u);
}

TEST(IrBackendTest, DeepNestingFallsBackToTheAstPathIdentically) {
    // A 300-deep expression inside f() plus a 150-deep call site: the
    // function body is entered at eval depth ~150, so entry + max_depth
    // crosses the evaluator's truncation guard. The IR backend must refuse
    // to run that body (ir_fallbacks) and the recursive path must produce
    // the result — including any truncation diagnostics — byte-for-byte.
    // (Both nestings parse cleanly on their own; only their sum trips the
    // guard.)
    std::string inner = "$_GET['q']";
    for (int i = 0; i < 300; ++i) inner = "($a . " + inner + ")";
    std::string call = "f()";
    for (int i = 0; i < 150; ++i) call = "('x' . " + call + ")";
    const std::string source =
        "<?php function f() { echo " + inner + "; }\n$r = " + call + ";\n";

    const obs::CounterDelta delta;
    const std::string ir_sig = signature_on(source, EngineBackend::kIr);
    EXPECT_GT(delta.take().ir_fallbacks, 0u);
    EXPECT_EQ(signature_on(source, EngineBackend::kAst), ir_sig);
}

TEST(IrBackendTest, BackendIsPartOfTheOptionsFingerprint) {
    // Pin both backends explicitly: the unadorned default follows
    // PHPSAFE_BACKEND, and this test must pass under any process default
    // (CI runs the whole suite with PHPSAFE_BACKEND=ir).
    const AnalysisOptions ast = AnalysisOptions::phpsafe()
                                    .to_builder()
                                    .engine_backend(EngineBackend::kAst)
                                    .build();
    const AnalysisOptions ir =
        ast.to_builder().engine_backend(EngineBackend::kIr).build();
    EXPECT_NE(ast.fingerprint(), ir.fingerprint());
    EXPECT_NE(ast.fingerprint().find("ast"), std::string::npos);
    EXPECT_NE(ir.fingerprint().find("ir"), std::string::npos);
}

TEST(IrBackendTest, BackendParsingRoundTrips) {
    EngineBackend backend = EngineBackend::kAst;
    EXPECT_TRUE(backend_from_string("ir", backend));
    EXPECT_EQ(backend, EngineBackend::kIr);
    EXPECT_TRUE(backend_from_string("differential", backend));
    EXPECT_EQ(backend, EngineBackend::kDifferential);
    EXPECT_TRUE(backend_from_string("ast", backend));
    EXPECT_EQ(backend, EngineBackend::kAst);
    backend = EngineBackend::kIr;
    EXPECT_FALSE(backend_from_string("bogus", backend));
    EXPECT_EQ(backend, EngineBackend::kIr);  // out untouched on failure
    EXPECT_EQ(to_string(EngineBackend::kIr), "ir");
}

}  // namespace
}  // namespace phpsafe
