// ProjectGraph tests: fact extraction, include/use linking, analytics
// (hubs, orphans, cycles, dead files, vendor dirs) on hand-built graphs,
// the dependency cone against a brute-force reverse closure, JSON
// round-tripping, and the monorepo generator's structural ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "graph/project_graph.h"
#include "php/project.h"
#include "util/diagnostics.h"

namespace phpsafe::graph {
namespace {

FileFacts facts(std::string name) {
    FileFacts f;
    f.name = std::move(name);
    f.content_hash = 0x1234;
    return f;
}

std::string name_of(const ProjectGraph& g, ProjectGraph::FileId id) {
    return std::string(g.file_name(id));
}

std::vector<std::string> names_of(const ProjectGraph& g,
                                  const std::vector<ProjectGraph::FileId>& ids) {
    std::vector<std::string> names;
    for (const auto id : ids) names.push_back(name_of(g, id));
    return names;
}

TEST(FileFactsTest, ExtractsDeclarationsCallsAndIncludes) {
    php::Project project("facts");
    project.add_file("a.php",
                     "<?php\n"
                     "include 'lib/b.php';\n"
                     "require_once dirname(__FILE__) . '/inc/c.php';\n"
                     "function top_level($x) { return other_fn($x); }\n"
                     "class Widget extends Base {\n"
                     "  function render() { $this->helper(); }\n"
                     "}\n"
                     "$w = new Widget();\n"
                     "Widget::boot();\n");
    DiagnosticSink sink;
    project.parse_all(sink);
    ASSERT_EQ(project.files().size(), 1u);

    const FileFacts f = extract_file_facts(*project.files().front());
    EXPECT_EQ(f.name, "a.php");
    // Path order is walk order, not source order — edges get sorted anyway.
    std::vector<std::string> paths = f.include_paths;
    std::sort(paths.begin(), paths.end());
    // The concat idiom keeps its trailing literal for suffix resolution.
    EXPECT_EQ(paths, (std::vector<std::string>{"/inc/c.php", "lib/b.php"}));
    EXPECT_EQ(f.declared_functions,
              (std::vector<std::string>{"top_level"}));
    EXPECT_EQ(f.declared_classes, (std::vector<std::string>{"widget"}));
    EXPECT_EQ(f.declared_methods,
              (std::vector<std::string>{"widget::render"}));
    EXPECT_TRUE(std::count(f.called_functions.begin(),
                           f.called_functions.end(), "other_fn"));
    EXPECT_TRUE(std::count(f.called_methods.begin(), f.called_methods.end(),
                           "helper"));
    // new + extends + static call all count as class uses.
    EXPECT_TRUE(std::count(f.used_classes.begin(), f.used_classes.end(),
                           "widget"));
    EXPECT_TRUE(std::count(f.used_classes.begin(), f.used_classes.end(),
                           "base"));
}

TEST(ProjectGraphTest, LinksIncludeAndUseEdges) {
    FileFacts a = facts("main.php");
    a.include_paths = {"lib/util.php"};
    a.called_functions = {"helper"};
    FileFacts b = facts("lib/util.php");
    b.declared_functions = {"helper"};

    ProjectGraph g = ProjectGraph::build({a, b});
    ASSERT_EQ(g.file_count(), 2);
    const auto main_id = g.file_id("main.php");
    const auto util_id = g.file_id("lib/util.php");
    ASSERT_NE(main_id, ProjectGraph::kNoFile);
    ASSERT_NE(util_id, ProjectGraph::kNoFile);

    EXPECT_EQ(g.includes_of(main_id),
              (std::vector<ProjectGraph::FileId>{util_id}));
    EXPECT_EQ(g.included_by(util_id),
              (std::vector<ProjectGraph::FileId>{main_id}));
    EXPECT_EQ(g.uses_of(main_id),
              (std::vector<ProjectGraph::FileId>{util_id}));
    EXPECT_EQ(g.used_by(util_id),
              (std::vector<ProjectGraph::FileId>{main_id}));
    EXPECT_EQ(g.include_edge_count(), 1);
    EXPECT_EQ(g.use_edge_count(), 1);

    ASSERT_EQ(g.function_count(), 1);
    EXPECT_EQ(g.function_name(0), "helper");
    EXPECT_EQ(g.declaring_file(0), util_id);
    EXPECT_EQ(g.functions_of(util_id), (std::vector<ProjectGraph::FuncId>{0}));
}

TEST(ProjectGraphTest, IncludeResolutionExactThenSuffixThenBasename) {
    FileFacts a = facts("a.php");
    a.include_paths = {"sub/x.php", "/deep/y.php", "z.php"};
    ProjectGraph g = ProjectGraph::build(
        {a, facts("sub/x.php"), facts("nested/deep/y.php"),
         facts("elsewhere/z.php")});
    const auto edges = names_of(g, g.includes_of(g.file_id("a.php")));
    EXPECT_TRUE(std::count(edges.begin(), edges.end(), "sub/x.php"));
    EXPECT_TRUE(std::count(edges.begin(), edges.end(), "nested/deep/y.php"));
    EXPECT_TRUE(std::count(edges.begin(), edges.end(), "elsewhere/z.php"));
}

TEST(ProjectGraphTest, SuffixMatchRespectsSegmentBoundary) {
    FileFacts a = facts("a.php");
    a.include_paths = {"b.php"};
    // "ab.php" ends with "b.php" but is NOT a path-segment match; the
    // basename fallback must pick the real b.php.
    ProjectGraph g = ProjectGraph::build({a, facts("ab.php"),
                                          facts("lib/b.php")});
    const auto edges = names_of(g, g.includes_of(g.file_id("a.php")));
    EXPECT_EQ(edges, (std::vector<std::string>{"lib/b.php"}));
}

TEST(ProjectGraphTest, AnalyticsHubsOrphansDeadVendor) {
    FileFacts hub = facts("vendor/core.php");
    hub.declared_functions = {"core_fn"};
    FileFacts m1 = facts("one/main.php");
    m1.include_paths = {"vendor/core.php"};
    FileFacts m2 = facts("two/main.php");
    m2.include_paths = {"vendor/core.php"};
    FileFacts orphan = facts("one/unused/extra.php");
    FileFacts entry = facts("three/main.php");  // entry basename: not orphan
    FileFacts dead = facts("one/main.php.bak");
    FileFacts top = facts("index.php");  // top-level: not an orphan

    ProjectGraph g = ProjectGraph::build(
        {hub, m1, m2, orphan, entry, dead, top});
    const ProjectGraph::Analytics a = g.analyze();

    ASSERT_FALSE(a.hubs.empty());
    EXPECT_EQ(name_of(g, a.hubs.front().file), "vendor/core.php");
    EXPECT_EQ(a.hubs.front().fan_in, 2);
    EXPECT_EQ(names_of(g, a.orphans),
              (std::vector<std::string>{"one/unused/extra.php"}));
    EXPECT_EQ(names_of(g, a.dead_files),
              (std::vector<std::string>{"one/main.php.bak"}));
    EXPECT_EQ(a.vendor_dirs, (std::vector<std::string>{"vendor"}));
    EXPECT_TRUE(a.cycles.empty());
}

TEST(ProjectGraphTest, TarjanFindsCyclesAndSelfLoops) {
    FileFacts a = facts("cyc/a.php");
    a.include_paths = {"cyc/b.php"};
    FileFacts b = facts("cyc/b.php");
    b.include_paths = {"cyc/c.php"};
    FileFacts c = facts("cyc/c.php");
    c.include_paths = {"cyc/a.php"};
    FileFacts self = facts("self.php");
    self.include_paths = {"self.php"};
    FileFacts line = facts("straight.php");
    line.include_paths = {"cyc/a.php"};

    ProjectGraph g = ProjectGraph::build({a, b, c, self, line});
    const ProjectGraph::Analytics out = g.analyze();
    ASSERT_EQ(out.cycles.size(), 2u);
    EXPECT_EQ(names_of(g, out.cycles[0]),
              (std::vector<std::string>{"cyc/a.php", "cyc/b.php",
                                        "cyc/c.php"}));
    EXPECT_EQ(names_of(g, out.cycles[1]),
              (std::vector<std::string>{"self.php"}));
}

TEST(ProjectGraphTest, DeepChainDoesNotOverflow) {
    // 20k-deep include chain: the iterative Tarjan must not recurse.
    std::vector<FileFacts> chain;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        FileFacts f = facts("chain/f" + std::to_string(i) + ".php");
        if (i + 1 < n)
            f.include_paths = {"chain/f" + std::to_string(i + 1) + ".php"};
        chain.push_back(std::move(f));
    }
    ProjectGraph g = ProjectGraph::build(std::move(chain));
    EXPECT_TRUE(g.analyze().cycles.empty());
    EXPECT_EQ(static_cast<int>(g.dependency_cone({g.file_id(
                  "chain/f" + std::to_string(n - 1) + ".php")}).size()),
              n);
}

/// Brute-force reverse closure over include + use edges.
std::vector<ProjectGraph::FileId> brute_force_cone(
    const ProjectGraph& g, const std::vector<ProjectGraph::FileId>& changed) {
    std::set<ProjectGraph::FileId> cone(changed.begin(), changed.end());
    bool grew = true;
    while (grew) {
        grew = false;
        for (int i = 0; i < g.file_count(); ++i) {
            const auto id = static_cast<ProjectGraph::FileId>(i);
            if (cone.count(id)) continue;
            bool reaches = false;
            for (const auto to : g.includes_of(id))
                if (cone.count(to)) reaches = true;
            for (const auto to : g.uses_of(id))
                if (cone.count(to)) reaches = true;
            if (reaches) {
                cone.insert(id);
                grew = true;
            }
        }
    }
    return {cone.begin(), cone.end()};
}

TEST(ProjectGraphTest, ConeMatchesBruteForceClosure) {
    // A messy little graph: chains, a diamond, a cycle, an island.
    std::vector<FileFacts> all;
    auto mk = [&](const char* name, std::vector<std::string> inc,
                  std::vector<std::string> calls,
                  std::vector<std::string> decls) {
        FileFacts f = facts(name);
        f.include_paths = std::move(inc);
        f.called_functions = std::move(calls);
        f.declared_functions = std::move(decls);
        all.push_back(std::move(f));
    };
    mk("a.php", {"b.php", "c.php"}, {}, {});
    mk("b.php", {"d.php"}, {"util"}, {});
    mk("c.php", {"d.php"}, {}, {});
    mk("d.php", {}, {}, {"util"});
    mk("e.php", {"f.php"}, {}, {});
    mk("f.php", {"e.php"}, {}, {});
    mk("island.php", {}, {}, {});

    ProjectGraph g = ProjectGraph::build(all);
    for (int i = 0; i < g.file_count(); ++i) {
        const std::vector<ProjectGraph::FileId> changed = {
            static_cast<ProjectGraph::FileId>(i)};
        EXPECT_EQ(g.dependency_cone(changed), brute_force_cone(g, changed))
            << "cone of " << name_of(g, changed[0]);
    }
    // Multi-seed cones too.
    const std::vector<ProjectGraph::FileId> pair = {g.file_id("d.php"),
                                                    g.file_id("island.php")};
    EXPECT_EQ(g.dependency_cone(pair), brute_force_cone(g, pair));
}

TEST(ProjectGraphTest, JsonRoundTripIsExact) {
    FileFacts a = facts("main.php");
    a.include_paths = {"lib/util.php"};
    a.called_functions = {"helper"};
    a.parse_failed = true;
    FileFacts b = facts("lib/util.php");
    b.content_hash = 0xdeadbeefcafef00dULL;
    b.declared_functions = {"helper", "other"};

    const ProjectGraph g = ProjectGraph::build({a, b});
    const std::string json = g.to_json();

    ProjectGraph parsed;
    std::string error;
    ASSERT_TRUE(ProjectGraph::from_json(json, parsed, &error)) << error;
    EXPECT_EQ(parsed.to_json(), json);
    EXPECT_EQ(parsed.file_count(), g.file_count());
    EXPECT_EQ(parsed.function_count(), g.function_count());
    EXPECT_EQ(parsed.include_edge_count(), g.include_edge_count());
    EXPECT_EQ(parsed.use_edge_count(), g.use_edge_count());
    EXPECT_EQ(parsed.file_hash(parsed.file_id("lib/util.php")),
              0xdeadbeefcafef00dULL);
    EXPECT_TRUE(parsed.file_parse_failed(parsed.file_id("main.php")));
}

TEST(ProjectGraphTest, FromJsonRejectsMalformedInput) {
    ProjectGraph g;
    std::string error;
    EXPECT_FALSE(ProjectGraph::from_json("not json", g, &error));
    EXPECT_FALSE(error.empty());
    // Out-of-range edge target.
    EXPECT_FALSE(ProjectGraph::from_json(
        R"({"files":[{"name":"a.php","hash":"0000000000000000","failed":false}],)"
        R"("functions":[],"includes":[[0,7]],"uses":[]})",
        g, &error));
}

TEST(ProjectGraphTest, BuildFromParsedProject) {
    php::Project project("demo");
    project.add_file("main.php",
                     "<?php include 'lib.php'; echo fmt($_GET['q']);");
    project.add_file("lib.php",
                     "<?php function fmt($x) { return htmlentities($x); }");
    DiagnosticSink sink;
    project.parse_all(sink);

    const ProjectGraph g = build_project_graph(project);
    ASSERT_EQ(g.file_count(), 2);
    const auto main_id = g.file_id("main.php");
    const auto lib_id = g.file_id("lib.php");
    EXPECT_EQ(g.includes_of(main_id),
              (std::vector<ProjectGraph::FileId>{lib_id}));
    EXPECT_EQ(g.uses_of(main_id), (std::vector<ProjectGraph::FileId>{lib_id}));
}

TEST(MonorepoTest, DeterministicAndScaled) {
    corpus::MonorepoOptions options;
    options.scale = 0.125;  // 4 plugins
    const corpus::MonorepoSource one = corpus::generate_monorepo(options);
    const corpus::MonorepoSource two = corpus::generate_monorepo(options);
    ASSERT_EQ(one.files.size(), two.files.size());
    for (size_t i = 0; i < one.files.size(); ++i) {
        EXPECT_EQ(one.files[i].first, two.files[i].first);
        EXPECT_EQ(one.files[i].second, two.files[i].second);
    }
    EXPECT_TRUE(std::is_sorted(one.files.begin(), one.files.end()));

    // files = plugins * files_per_plugin + framework (libs + core + cycle
    // + orphans) + 2 backups.
    const int plugins = 4;
    const int framework = 6 + 1 + 3 + 2;
    EXPECT_EQ(static_cast<int>(one.files.size()),
              plugins * options.files_per_plugin + framework + 2);
    EXPECT_FALSE(one.seeded_vulns.empty());

    const corpus::MonorepoSource big =
        corpus::generate_monorepo({1.0, 40, 2015});
    EXPECT_GT(big.files.size(), one.files.size());
}

TEST(MonorepoTest, GraphAnalyticsRecoverGroundTruth) {
    corpus::MonorepoOptions options;
    options.scale = 0.125;
    const corpus::MonorepoSource repo = corpus::generate_monorepo(options);

    std::vector<FileFacts> all;
    php::Project project("monorepo");
    for (const auto& [name, text] : repo.files) project.add_file(name, text);
    DiagnosticSink sink;
    project.parse_all(sink);
    ProjectGraph g = build_project_graph(project);
    const ProjectGraph::Analytics a = g.analyze();

    EXPECT_EQ(names_of(g, a.orphans), repo.truth.orphan_files);
    EXPECT_EQ(names_of(g, a.dead_files), repo.truth.backup_files);
    EXPECT_EQ(a.vendor_dirs, repo.truth.vendor_dirs);
    ASSERT_EQ(a.cycles.size(), repo.truth.include_cycles.size());
    for (size_t i = 0; i < a.cycles.size(); ++i)
        EXPECT_EQ(names_of(g, a.cycles[i]), repo.truth.include_cycles[i]);
    ASSERT_FALSE(a.hubs.empty());
    EXPECT_EQ(name_of(g, a.hubs.front().file), repo.truth.hub_files.front());

    // The hub is included by every plugin main plus the shipped backup.
    EXPECT_EQ(a.hubs.front().fan_in, 4 + 1);

    // Seeded vulns point at real files.
    for (const corpus::SeededVuln& vuln : repo.seeded_vulns)
        EXPECT_NE(g.file_id(vuln.file), ProjectGraph::kNoFile) << vuln.file;
}

TEST(MonorepoTest, ConeOfLeafPartIsSmall) {
    corpus::MonorepoOptions options;
    options.scale = 0.125;
    const corpus::MonorepoSource repo = corpus::generate_monorepo(options);
    php::Project project("monorepo");
    for (const auto& [name, text] : repo.files) project.add_file(name, text);
    DiagnosticSink sink;
    project.parse_all(sink);
    ProjectGraph g = build_project_graph(project);

    // Editing one plugin part invalidates only that part and its main —
    // the cost bound the watch mode exploits.
    const auto part = g.file_id("plugin-001/inc/part-5.php");
    ASSERT_NE(part, ProjectGraph::kNoFile);
    const auto cone = g.dependency_cone({part});
    EXPECT_EQ(names_of(g, cone),
              (std::vector<std::string>{"plugin-001/inc/part-5.php",
                                        "plugin-001/main.php"}));

    // Editing a framework library invalidates a framework-wide cone.
    const auto lib = g.file_id("framework/lib-0.php");
    EXPECT_GT(g.dependency_cone({lib}).size(), cone.size());
}

}  // namespace
}  // namespace phpsafe::graph
