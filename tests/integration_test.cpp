// End-to-end integration tests: run the full three-tool evaluation over a
// reduced-scale corpus and assert the qualitative results the paper reports
// — the Table I ordering, the OOP detection exclusivity, the robustness
// story, the overlap structure, and the inertia findings.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/analyzers.h"
#include "corpus/generator.h"
#include "report/inertia.h"
#include "report/export.h"
#include "report/matching.h"
#include "report/metrics.h"
#include "report/overlap.h"
#include "report/rootcause.h"

namespace phpsafe {
namespace {

struct ToolStats {
    int tp = 0, fp = 0, oop_tp = 0, sqli_tp = 0, failed = 0;
    std::set<std::string> detected;
};

class CorpusEvaluation : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        corpus::CorpusOptions options;
        options.scale = 0.4;
        options.filler_lines_2012 = 8000;
        options.filler_lines_2014 = 16000;
        corpus_ = new corpus::Corpus(corpus::generate_corpus(options));

        const Tool tools[] = {make_phpsafe_tool(), make_rips_like_tool(),
                              make_pixy_like_tool()};
        for (const auto& version : {std::string("2012"), std::string("2014")}) {
            for (const Tool& tool : tools) {
                ToolStats& stats = (*stats_)[version][tool.name];
                for (const corpus::GeneratedPlugin& plugin : corpus_->plugins) {
                    const corpus::PluginVersionSource& src =
                        version == "2012" ? plugin.v2012 : plugin.v2014;
                    DiagnosticSink sink;
                    const php::Project project =
                        corpus::build_project(plugin, src, sink);
                    const AnalysisResult result = run_tool(tool, project);
                    const MatchResult match =
                        match_findings(result.findings, src.truth);
                    stats.tp += match.tp();
                    stats.fp += match.fp();
                    stats.failed += result.files_failed;
                    for (const Finding* f : match.true_positives) {
                        if (f->via_oop) ++stats.oop_tp;
                        if (f->kind == VulnKind::kSqli) ++stats.sqli_tp;
                    }
                    stats.detected.insert(match.detected_ids.begin(),
                                          match.detected_ids.end());
                }
            }
        }
    }

    static void TearDownTestSuite() {
        delete corpus_;
        corpus_ = nullptr;
    }

    static const ToolStats& stats(const std::string& version,
                                  const std::string& tool) {
        return (*stats_)[version][tool];
    }

    static corpus::Corpus* corpus_;
    static std::map<std::string, std::map<std::string, ToolStats>>* stats_;
};

corpus::Corpus* CorpusEvaluation::corpus_ = nullptr;
std::map<std::string, std::map<std::string, ToolStats>>* CorpusEvaluation::stats_ =
    new std::map<std::string, std::map<std::string, ToolStats>>();

TEST_F(CorpusEvaluation, ToolOrderingByTruePositives) {
    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        EXPECT_GT(stats(version, "phpSAFE").tp, stats(version, "RIPS").tp)
            << version;
        EXPECT_GT(stats(version, "RIPS").tp, stats(version, "Pixy").tp) << version;
    }
}

TEST_F(CorpusEvaluation, PhpSafeHasBestPrecision) {
    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        auto precision = [&](const std::string& tool) {
            const ToolStats& s = stats(version, tool);
            return ConfusionMetrics{s.tp, s.fp, 0}.precision();
        };
        EXPECT_GT(precision("phpSAFE"), precision("RIPS")) << version;
        EXPECT_GT(precision("RIPS"), precision("Pixy")) << version;
    }
}

TEST_F(CorpusEvaluation, OnlyPhpSafeDetectsOopVulnerabilities) {
    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        EXPECT_GT(stats(version, "phpSAFE").oop_tp, 0) << version;
        EXPECT_EQ(stats(version, "RIPS").oop_tp, 0) << version;
        EXPECT_EQ(stats(version, "Pixy").oop_tp, 0) << version;
    }
}

TEST_F(CorpusEvaluation, OnlyPhpSafeDetectsSqli) {
    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        EXPECT_GT(stats(version, "phpSAFE").sqli_tp, 0) << version;
        EXPECT_EQ(stats(version, "RIPS").sqli_tp, 0) << version;
        EXPECT_EQ(stats(version, "Pixy").sqli_tp, 0) << version;
    }
}

TEST_F(CorpusEvaluation, RobustnessStory) {
    // phpSAFE fails exactly the deep-include entry files (1 chain in 2012,
    // 3 in 2014); RIPS completes everything; Pixy fails many OOP files.
    EXPECT_EQ(stats("2012", "phpSAFE").failed, 1);
    EXPECT_EQ(stats("2014", "phpSAFE").failed, 3);
    EXPECT_EQ(stats("2012", "RIPS").failed, 0);
    EXPECT_EQ(stats("2014", "RIPS").failed, 0);
    EXPECT_GT(stats("2012", "Pixy").failed, 10);
}

TEST_F(CorpusEvaluation, EveryToolContributesUniqueDetections) {
    // Paper Fig. 2: "different tools also detected many different
    // vulnerabilities" — no silver bullet.
    for (const auto& version : {std::string("2012"), std::string("2014")}) {
        std::map<std::string, std::set<std::string>> detected;
        for (const char* tool : {"phpSAFE", "RIPS", "Pixy"})
            detected[tool] = stats(version, tool).detected;
        const VennRegions regions = compute_overlap(detected);
        EXPECT_GT(regions.only_a + regions.only_b + regions.only_c, 0) << version;
        EXPECT_GT(regions.union_size, regions.total("phpSAFE")) << version;
    }
}

TEST_F(CorpusEvaluation, UnionGrowsAcrossVersions) {
    std::set<std::string> union_2012, union_2014;
    for (const char* tool : {"phpSAFE", "RIPS", "Pixy"}) {
        const auto& d12 = stats("2012", tool).detected;
        const auto& d14 = stats("2014", tool).detected;
        union_2012.insert(d12.begin(), d12.end());
        union_2014.insert(d14.begin(), d14.end());
    }
    EXPECT_GT(union_2014.size(), union_2012.size());
}

TEST_F(CorpusEvaluation, InertiaAround40Percent) {
    std::set<std::string> union_2014;
    for (const char* tool : {"phpSAFE", "RIPS", "Pixy"}) {
        const auto& d = stats("2014", tool).detected;
        union_2014.insert(d.begin(), d.end());
    }
    const InertiaReport report =
        analyze_inertia(corpus_->all_truth("2014"), union_2014);
    EXPECT_GT(report.carried_fraction(), 0.30);
    EXPECT_LT(report.carried_fraction(), 0.55);
}

TEST_F(CorpusEvaluation, FullEvaluationIsDeterministic) {
    // Re-running one tool over one plugin must reproduce identical findings
    // (the whole evaluation pipeline is seedless and deterministic).
    const corpus::GeneratedPlugin& plugin = corpus_->plugins[5];
    const Tool tool = make_phpsafe_tool();
    DiagnosticSink s1, s2;
    const php::Project p1 = corpus::build_project(plugin, plugin.v2014, s1);
    const php::Project p2 = corpus::build_project(plugin, plugin.v2014, s2);
    Engine e1(tool.kb, tool.options), e2(tool.kb, tool.options);
    const AnalysisResult r1 = e1.analyze(p1);
    const AnalysisResult r2 = e2.analyze(p2);
    ASSERT_EQ(r1.findings.size(), r2.findings.size());
    for (size_t i = 0; i < r1.findings.size(); ++i)
        EXPECT_EQ(r1.findings[i].dedup_key(), r2.findings[i].dedup_key());
}

TEST_F(CorpusEvaluation, HtmlAndJsonReportsRenderForRealRuns) {
    const corpus::GeneratedPlugin& plugin = corpus_->plugins[2];
    DiagnosticSink sink;
    const php::Project project = corpus::build_project(plugin, plugin.v2014, sink);
    const AnalysisResult result = run_tool(make_phpsafe_tool(), project);
    const std::string html = render_html_report(result);
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    const std::string json = render_json_report(result);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"findings\""), std::string::npos);
}

TEST_F(CorpusEvaluation, DatabaseIsDominantVector) {
    // Paper Table II: ~62% of confirmed 2014 vulnerabilities are
    // database-mediated.
    std::set<std::string> detected_2012, detected_2014;
    for (const char* tool : {"phpSAFE", "RIPS", "Pixy"}) {
        const auto& d12 = stats("2012", tool).detected;
        const auto& d14 = stats("2014", tool).detected;
        detected_2012.insert(d12.begin(), d12.end());
        detected_2014.insert(d14.begin(), d14.end());
    }
    const VectorTable table =
        classify_vectors(corpus_->all_truth("2012"), corpus_->all_truth("2014"),
                         detected_2012, detected_2014);
    int total = 0;
    for (const auto& [group, count] : table.v2014) total += count;
    ASSERT_GT(total, 0);
    const auto db = table.v2014.find(VectorGroup::kDatabase);
    ASSERT_NE(db, table.v2014.end());
    EXPECT_GT(static_cast<double>(db->second) / total, 0.5);
}

}  // namespace
}  // namespace phpsafe
