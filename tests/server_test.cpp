// The multi-client server stack: sharded AnalysisCache (distribution,
// aggregated stats, pressure shedding order), AnalysisService scheduling
// (priorities, cancellation, admission control), NDJSON framing edge cases
// (oversized lines, truncated final line), pipelined sessions
// (request-order responses, supersede slots, atomic interleaving on a
// shared sink), and the multi-client golden transcripts.
//
// Regenerate the multi-client goldens after an intentional protocol change:
//   ./build/tools/phpsafe_serve --deterministic --workers 2 \
//     --session tests/golden/ndjson_multi_a.in:tests/golden/ndjson_multi_a.out \
//     --session tests/golden/ndjson_multi_b.in:tests/golden/ndjson_multi_b.out
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report/export.h"
#include "service/cache.h"
#include "service/ndjson.h"
#include "service/server.h"
#include "service/service.h"
#include "service/watch.h"
#include "util/json_reader.h"

namespace phpsafe {
namespace {

using service::AnalysisCache;
using service::AnalysisServer;
using service::AnalysisService;
using service::CacheBudgets;
using service::CacheStats;
using service::LineStatus;
using service::ScanRequest;
using service::ScanResponse;
using service::ServerOptions;
using service::ServeOptions;
using service::ServiceOptions;
using service::SyncLineWriter;

ScanRequest one_file(std::string plugin, std::string name, std::string text) {
    ScanRequest request;
    request.plugin = std::move(plugin);
    request.files.push_back({std::move(name), std::move(text)});
    return request;
}

/// Polls until `predicate` holds (multi-threaded tests need a settle
/// window); fails the calling test on timeout.
template <typename Predicate>
void wait_for(Predicate predicate, const char* what) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!predicate()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "timeout waiting for " << what;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

// ---------------------------------------------------------------- sharding

TEST(ShardedCacheTest, DistributesEntriesAndAggregatesStats) {
    AnalysisCache cache;  // default budgets: 8 shards per pool
    EXPECT_EQ(cache.result_shards(), CacheBudgets{}.shards);

    AnalysisResult payload;
    payload.plugin = "shard";
    constexpr uint64_t kEntries = 64;
    for (uint64_t key = 0; key < kEntries; ++key)
        cache.insert_result("preset", key, payload);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.result_entries, kEntries);
    uint64_t shard_entries = 0, shard_bytes = 0;
    int occupied = 0;
    for (const auto& shard : stats.shards) {
        shard_entries += shard.entries;
        shard_bytes += shard.bytes;
        occupied += shard.entries > 0 ? 1 : 0;
    }
    // The lock-free per-shard gauges must reconcile with the pool totals,
    // and fnv1a spreading 64 keys over 8 shards must not degenerate into
    // one hot shard.
    EXPECT_EQ(shard_entries, kEntries);
    EXPECT_EQ(shard_bytes, stats.bytes_resident);
    EXPECT_GT(occupied, 1);
}

TEST(ShardedCacheTest, TinyBudgetCollapsesToOneShard) {
    CacheBudgets budgets;
    budgets.file_bytes = 2048;  // 8 shards would get 256 useless bytes each
    budgets.summary_bytes = 128ull << 10;  // room for exactly two 64K shards
    AnalysisCache cache(budgets);
    EXPECT_EQ(cache.file_shards(), 1);
    EXPECT_EQ(cache.summary_shards(), 2);
    EXPECT_EQ(cache.result_shards(), CacheBudgets{}.shards);
}

TEST(ShardedCacheTest, ShedDropsResultsBeforeParsedFiles) {
    AnalysisService service;
    (void)service.scan(one_file("p1", "a.php", "<?php echo $_GET['a'];"));
    (void)service.scan(one_file("p2", "b.php", "<?php echo $_GET['b'];"));
    const CacheStats before = service.cache_stats();
    ASSERT_EQ(before.result_entries, 2u);
    ASSERT_GT(before.file_entries, 0u);

    // A small target must be satisfied entirely from the result pool: the
    // warm file/summary pools are what keep the queue draining fast.
    const uint64_t freed = service.cache().shed(1);
    EXPECT_GT(freed, 0u);
    const CacheStats after = service.cache_stats();
    EXPECT_LT(after.result_entries, before.result_entries);
    EXPECT_EQ(after.file_entries, before.file_entries);
    EXPECT_EQ(after.summary_entries, before.summary_entries);
    EXPECT_GT(after.shed_entries, 0u);

    // An unbounded target drains every pool, files last but gone too.
    (void)service.cache().shed(~0ull);
    const CacheStats empty = service.cache_stats();
    EXPECT_EQ(empty.result_entries, 0u);
    EXPECT_EQ(empty.file_entries, 0u);
    EXPECT_EQ(empty.summary_entries, 0u);
    EXPECT_EQ(empty.bytes_resident, 0u);
}

// -------------------------------------------------------------- scheduling

TEST(ServerSchedulingTest, HigherPriorityDispatchesFirst) {
    ServiceOptions options;
    options.workers = 1;
    AnalysisService service(options);
    service.pause();

    ScanRequest low_a = one_file("low-a", "a.php", "<?php echo $_GET['a'];");
    ScanRequest low_b = one_file("low-b", "b.php", "<?php echo $_GET['b'];");
    ScanRequest high = one_file("high", "c.php", "<?php echo $_GET['c'];");
    high.priority = 5;

    const auto ticket_a = service.submit(low_a);
    const auto ticket_b = service.submit(low_b);
    const auto ticket_h = service.submit(high);
    service.resume();

    const ScanResponse ra = service.await(ticket_a);
    const ScanResponse rb = service.await(ticket_b);
    const ScanResponse rh = service.await(ticket_h);
    ASSERT_GT(ra.dispatch_seq, 0u);
    ASSERT_GT(rb.dispatch_seq, 0u);
    ASSERT_GT(rh.dispatch_seq, 0u);
    // The high-priority submission queued last but dispatched first; the
    // equal-priority pair kept submission order.
    EXPECT_LT(rh.dispatch_seq, ra.dispatch_seq);
    EXPECT_LT(ra.dispatch_seq, rb.dispatch_seq);
}

TEST(ServerSchedulingTest, CancelQueuedScanAndResubmit) {
    ServiceOptions options;
    options.workers = 1;
    AnalysisService service(options);
    service.pause();

    const ScanRequest request =
        one_file("cancelme", "a.php", "<?php echo $_GET['x'];");
    const auto first = service.submit(request);
    EXPECT_TRUE(service.cancel(first));
    // The fingerprint was released: an identical submit runs fresh instead
    // of coalescing onto the corpse.
    const auto second = service.submit(request);
    service.resume();

    const ScanResponse cancelled = service.await(first);
    EXPECT_TRUE(cancelled.cancelled);
    EXPECT_EQ(cancelled.dispatch_seq, 0u);
    EXPECT_TRUE(cancelled.result.findings.empty());

    const ScanResponse fresh = service.await(second);
    EXPECT_FALSE(fresh.cancelled);
    EXPECT_FALSE(fresh.deduplicated);
    ASSERT_EQ(fresh.result.findings.size(), 1u);

    // A finished scan can no longer be cancelled.
    EXPECT_FALSE(service.cancel(second));
}

TEST(ServerSchedulingTest, CancellingCoalescedTicketAffectsAllAwaiters) {
    ServiceOptions options;
    options.workers = 1;
    AnalysisService service(options);
    service.pause();

    const ScanRequest request =
        one_file("shared", "a.php", "<?php echo $_GET['x'];");
    const auto first = service.submit(request);
    const auto coalesced = service.submit(request);
    EXPECT_TRUE(service.cancel(coalesced));
    service.resume();

    EXPECT_TRUE(service.await(first).cancelled);
    EXPECT_TRUE(service.await(coalesced).cancelled);
}

TEST(ServerSchedulingTest, AdmissionControlRejectsWhenQueueIsFull) {
    ServiceOptions options;
    options.workers = 1;
    options.max_queue_depth = 1;
    AnalysisService service(options);
    service.pause();

    const auto accepted =
        service.submit(one_file("ok", "a.php", "<?php echo $_GET['a'];"));
    const auto rejected =
        service.submit(one_file("no", "b.php", "<?php echo $_GET['b'];"));

    const ScanResponse bounced = service.await(rejected);
    EXPECT_TRUE(bounced.rejected);
    EXPECT_EQ(bounced.dispatch_seq, 0u);
    ASSERT_EQ(bounced.result.diagnostics.size(), 1u);

    service.resume();
    const ScanResponse served = service.await(accepted);
    EXPECT_FALSE(served.rejected);
    ASSERT_EQ(served.result.findings.size(), 1u);
}

TEST(ServerSchedulingTest, QueuePressureShedsCacheBytes) {
    ServiceOptions options;
    options.workers = 1;
    options.max_queue_depth = 16;
    options.pressure_queue_depth = 2;
    AnalysisService service(options);

    // Populate the result pool, then build a backlog past the watermark.
    (void)service.scan(one_file("warm", "a.php", "<?php echo $_GET['a'];"));
    ASSERT_GT(service.cache_stats().bytes_resident, 0u);

    service.pause();
    std::vector<AnalysisService::Ticket> tickets;
    for (int i = 0; i < 4; ++i)
        tickets.push_back(service.submit(one_file(
            "backlog-" + std::to_string(i), "b.php",
            "<?php echo $_GET['b" + std::to_string(i) + "'];")));
    EXPECT_GT(service.cache_stats().shed_entries, 0u);

    service.resume();
    for (const auto& ticket : tickets) (void)service.await(ticket);
}

// ---------------------------------------------------------- NDJSON framing

TEST(NdjsonFramingTest, ReadLineCapsBufferingAndRecovers) {
    std::istringstream in("abcdefgh\nok\nlast");
    std::string line;
    EXPECT_EQ(service::read_ndjson_line(in, line, 4), LineStatus::kOversized);
    EXPECT_EQ(line, "abcd");  // first cap bytes kept, remainder discarded
    EXPECT_EQ(service::read_ndjson_line(in, line, 4), LineStatus::kOk);
    EXPECT_EQ(line, "ok");
    // A truncated final line (no trailing newline) is still delivered.
    EXPECT_EQ(service::read_ndjson_line(in, line, 4), LineStatus::kOk);
    EXPECT_EQ(line, "last");
    EXPECT_EQ(service::read_ndjson_line(in, line, 4), LineStatus::kEof);
}

TEST(NdjsonFramingTest, OversizedRequestLineAnswersErrorAndContinues) {
    ServeOptions options;
    options.deterministic = true;
    options.max_line_bytes = 64;
    std::istringstream in("{\"op\":\"scan\",\"plugin\":\"big\",\"files\":[{"
                          "\"name\":\"a.php\",\"text\":\"" +
                          std::string(200, 'x') +
                          "\"}]}\n"
                          "{\"op\":\"stats\"}\n"
                          "{\"op\":\"quit\"}\n");
    std::ostringstream out;
    EXPECT_EQ(service::serve_ndjson(in, out, options), 3);

    std::istringstream lines(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(line.find("exceeds 64 bytes"), std::string::npos);
    // The session survives: the next requests are answered normally.
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"file_entries\":0"), std::string::npos);
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"bye\":true"), std::string::npos);
}

TEST(NdjsonFramingTest, TruncatedFinalLineWithoutNewlineIsServed) {
    ServeOptions options;
    options.deterministic = true;
    std::istringstream in("{\"op\":\"stats\"}");  // EOF, no '\n'
    std::ostringstream out;
    EXPECT_EQ(service::serve_ndjson(in, out, options), 1);
    EXPECT_NE(out.str().find("\"summary_entries\":0"), std::string::npos);
}

// ------------------------------------------------------- pipelined sessions

TEST(ServerSessionTest, PipelinedSessionMatchesSerialLoopByteForByte) {
    const std::string script =
        "{\"op\":\"scan\",\"plugin\":\"p1\",\"files\":[{\"name\":\"a.php\","
        "\"text\":\"<?php echo $_GET['a'];\"}]}\n"
        "{\"op\":\"scan\",\"plugin\":\"p2\",\"files\":[{\"name\":\"b.php\","
        "\"text\":\"<?php echo $_GET['b'];\"}]}\n"
        "{\"op\":\"stats\"}\n"
        "{\"op\":\"validate\",\"plugin\":\"p1\",\"files\":[{\"name\":\"a.php\","
        "\"text\":\"<?php echo $_GET['a'];\"}]}\n"
        "{\"op\":\"scan\",\"plugin\":\"p3\",\"files\":[{\"name\":\"c.php\","
        "\"text\":\"<?php $v = $_POST['c']; echo $v;\"}]}\n"
        "{\"op\":\"quit\"}\n";

    std::ostringstream serial_out;
    {
        ServeOptions options;
        options.deterministic = true;
        std::istringstream in(script);
        service::serve_ndjson(in, serial_out, options);
    }

    std::ostringstream session_out;
    {
        ServerOptions options;
        options.service.workers = 1;
        options.deterministic = true;
        AnalysisServer server(options);
        std::istringstream in(script);
        EXPECT_EQ(server.serve_session(in, session_out), 6);
    }
    EXPECT_EQ(session_out.str(), serial_out.str());
}

TEST(ServerSessionTest, SlotSupersedesStillQueuedScan) {
    ServiceOptions service_options;
    service_options.workers = 1;
    AnalysisService service(service_options);
    service.pause();  // hold the queue so the second request catches the first

    ServerOptions options;
    options.deterministic = true;
    AnalysisServer server(service, options);

    std::istringstream in(
        "{\"op\":\"scan\",\"plugin\":\"editor\",\"slot\":\"buf\","
        "\"files\":[{\"name\":\"a.php\",\"text\":\"<?php echo "
        "$_GET['old'];\"}]}\n"
        "{\"op\":\"scan\",\"plugin\":\"editor\",\"slot\":\"buf\","
        "\"files\":[{\"name\":\"a.php\",\"text\":\"<?php echo "
        "$_GET['new'];\"}]}\n"
        "{\"op\":\"quit\"}\n");
    std::ostringstream out;
    std::thread session([&] { server.serve_session(in, out); });
    wait_for([&] { return service.queue_depth() >= 2; }, "both scans queued");
    service.resume();
    session.join();

    std::istringstream lines(out.str());
    std::string line;
    // The superseded scan is still answered, in order, as cancelled.
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"cancelled\":true"), std::string::npos);
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("$_GET['new']"), std::string::npos)
        << "latest slot revision must be analyzed: " << line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"bye\":true"), std::string::npos);
}

TEST(ServerSessionTest, TwoSessionsInterleaveWholeLinesOnSharedSink) {
    ServerOptions options;
    options.deterministic = true;
    options.service.workers = 2;
    AnalysisServer server(options);

    const auto script = [](const std::string& tag) {
        std::string s;
        for (int i = 0; i < 4; ++i)
            s += "{\"op\":\"scan\",\"plugin\":\"" + tag + std::to_string(i) +
                 "\",\"files\":[{\"name\":\"f.php\",\"text\":\"<?php echo "
                 "$_GET['" +
                 tag + std::to_string(i) + "'];\"}]}\n";
        return s + "{\"op\":\"quit\"}\n";
    };

    std::ostringstream shared;
    SyncLineWriter sink(shared);
    std::istringstream in_a(script("a")), in_b(script("b"));
    std::thread ta([&] { server.serve_session(in_a, sink); });
    std::thread tb([&] { server.serve_session(in_b, sink); });
    ta.join();
    tb.join();

    // 10 whole lines, every one of them standalone valid JSON: concurrent
    // sessions may interleave lines but never bytes.
    std::istringstream lines(shared.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        ++count;
        JsonValue value;
        std::string error;
        EXPECT_TRUE(JsonReader::parse(line, value, &error))
            << "torn line: " << line << " (" << error << ")";
        EXPECT_TRUE(value.is_object());
    }
    EXPECT_EQ(count, 10);
}

TEST(ServerSessionTest, ConcurrentClientsMatchSerialReferenceReports) {
    // Four pipelined clients over one shared 4-worker service; every scan's
    // report must equal the serial single-worker reference for the same
    // request — the standing byte-identity invariant under real overlap.
    std::vector<ScanRequest> requests;
    for (int i = 0; i < 8; ++i)
        requests.push_back(one_file(
            "plug" + std::to_string(i), "f.php",
            "<?php $v = $_GET['k" + std::to_string(i) + "']; echo $v;"));

    std::vector<std::string> reference;
    {
        ServiceOptions options;
        options.workers = 1;
        AnalysisService serial(options);
        for (const ScanRequest& request : requests)
            reference.push_back(render_json_report(serial.scan(request).result));
    }

    ServiceOptions options;
    options.workers = 4;
    AnalysisService shared(options);
    std::vector<std::thread> clients;
    std::vector<int> mismatches(4, 0);
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = 0; i < requests.size(); ++i) {
                const size_t pick = (i + static_cast<size_t>(t) * 3) % requests.size();
                if (render_json_report(shared.scan(requests[pick]).result) !=
                    reference[pick])
                    ++mismatches[static_cast<size_t>(t)];
            }
        });
    }
    for (std::thread& t : clients) t.join();
    for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0);
}

// ----------------------------------------------------------- watch mode

std::vector<std::string> finding_keys(const std::vector<Finding>& findings) {
    std::vector<std::string> keys;
    for (const Finding& f : findings) keys.push_back(finding_json(f));
    return keys;
}

/// The delta oracle: diff two full reports by canonical serialization,
/// honoring multiplicity, added in new order / removed in old order —
/// exactly what a client diffing two cold re-scans would compute.
void cold_diff(const std::vector<Finding>& before,
               const std::vector<Finding>& after,
               std::vector<std::string>& added,
               std::vector<std::string>& removed) {
    std::multiset<std::string> old_keys, new_keys;
    for (const Finding& f : before) old_keys.insert(finding_json(f));
    for (const Finding& f : after) new_keys.insert(finding_json(f));
    for (const Finding& f : after) {
        const auto it = old_keys.find(finding_json(f));
        if (it != old_keys.end())
            old_keys.erase(it);
        else
            added.push_back(finding_json(f));
    }
    for (const Finding& f : before) {
        const auto it = new_keys.find(finding_json(f));
        if (it != new_keys.end())
            new_keys.erase(it);
        else
            removed.push_back(finding_json(f));
    }
}

/// Watch-mode byte-identity: the delta an edit answers must equal the diff
/// of two *cold* scans on fresh services — at any worker count and any
/// backend, with a mixed upsert + remove batch.
void expect_delta_matches_cold_rescan(int workers, const std::string& backend) {
    using FileSet = std::vector<std::pair<std::string, std::string>>;
    const FileSet before = {
        {"app.php",
         "<?php include 'lib.php'; echo wrap($_GET['q']); echo $_GET['r'];"},
        {"lib.php", "<?php function wrap($x) { return htmlentities($x); }"},
        {"other.php", "<?php echo $_COOKIE['c'];"},
    };
    const FileSet after = {
        {"app.php",
         "<?php include 'lib.php'; echo wrap($_GET['q']); echo $_GET['r'];"},
        {"lib.php", "<?php function wrap($x) { return $x; }"},
    };

    auto cold_scan = [&](const FileSet& files) {
        ServiceOptions so;
        so.workers = 1;
        AnalysisService fresh(so);
        ScanRequest request;
        request.plugin = "delta";
        request.backend = backend;
        for (const auto& [name, text] : files)
            request.files.push_back({name, text});
        return fresh.scan(request).result.findings;
    };
    const std::vector<Finding> cold_before = cold_scan(before);
    const std::vector<Finding> cold_after = cold_scan(after);
    std::vector<std::string> want_added, want_removed;
    cold_diff(cold_before, cold_after, want_added, want_removed);
    ASSERT_FALSE(want_added.empty());    // the sanitizer regression
    ASSERT_FALSE(want_removed.empty());  // the removed file's finding

    ServiceOptions so;
    so.workers = workers;
    AnalysisService service(so);
    service::WatchSession watch(service);
    ScanRequest open;
    open.plugin = "delta";
    open.backend = backend;
    for (const auto& [name, text] : before)
        open.files.push_back({name, text});
    const ScanResponse opened = watch.open(std::move(open));
    ASSERT_FALSE(opened.rejected);
    EXPECT_EQ(finding_keys(opened.result.findings), finding_keys(cold_before));

    service::WatchEditBatch batch;
    batch.upserts.push_back(
        {"lib.php", "<?php function wrap($x) { return $x; }"});
    batch.removals.push_back("other.php");
    const service::WatchDelta delta = watch.edit(batch);
    ASSERT_TRUE(delta.ok) << delta.error;
    EXPECT_EQ(delta.changed_files, 2);
    EXPECT_GE(delta.cone_files, 3);  // lib + app (includes it) + other
    EXPECT_EQ(finding_keys(delta.added), want_added);
    EXPECT_EQ(finding_keys(delta.removed), want_removed);
    // The warm re-scan's full report equals the cold one, not just the diff.
    EXPECT_EQ(finding_keys(delta.response.result.findings),
              finding_keys(cold_after));
}

TEST(WatchModeTest, DeltaMatchesColdRescanDiffSerial) {
    expect_delta_matches_cold_rescan(1, "");
}

TEST(WatchModeTest, DeltaMatchesColdRescanDiffParallel) {
    expect_delta_matches_cold_rescan(4, "");
}

TEST(WatchModeTest, DeltaMatchesColdRescanDiffIrBackend) {
    expect_delta_matches_cold_rescan(4, "ir");
}

TEST(ServerSessionTest, PipelinedWatchSessionMatchesSerialLoopByteForByte) {
    const std::string script =
        "{\"op\":\"watch\",\"plugin\":\"w\",\"files\":[{\"name\":\"a.php\","
        "\"text\":\"<?php include 'b.php'; echo esc($_GET['x']);\"},"
        "{\"name\":\"b.php\",\"text\":\"<?php function esc($v) { return "
        "htmlentities($v); }\"}]}\n"
        "{\"op\":\"edit\",\"files\":[{\"name\":\"b.php\",\"text\":\"<?php "
        "function esc($v) { return $v; }\"}]}\n"
        "{\"op\":\"graph\"}\n"
        "{\"op\":\"edit\",\"remove\":[\"b.php\"]}\n"
        "{\"op\":\"stats\"}\n"
        "{\"op\":\"quit\"}\n";

    std::ostringstream serial_out;
    {
        ServeOptions options;
        options.deterministic = true;
        std::istringstream in(script);
        service::serve_ndjson(in, serial_out, options);
    }

    std::ostringstream session_out;
    {
        ServerOptions options;
        options.service.workers = 4;
        options.deterministic = true;
        AnalysisServer server(options);
        std::istringstream in(script);
        EXPECT_EQ(server.serve_session(in, session_out), 6);
    }
    EXPECT_EQ(session_out.str(), serial_out.str());
}

TEST(NdjsonFramingTest, UnknownKeysRejectedWithUniformErrorShape) {
    // Every unknown-key rejection — whichever loop parses it — must be the
    // one structured {"ok":false,"error":...} shape with the same message.
    const std::string script =
        "{\"op\":\"stats\",\"extra\":1}\n"
        "{\"op\":\"clear\",\"slot\":\"x\"}\n"
        "{\"op\":\"scan\",\"plugin\":\"p\",\"detail\":true,"
        "\"files\":[{\"name\":\"a.php\",\"text\":\"<?php\"}]}\n"
        "{\"op\":\"graph\",\"slot\":\"x\"}\n"
        "{\"op\":\"validate\",\"bogus\":1}\n"
        "{\"op\":\"quit\"}\n";
    const std::string expected =
        service::render_error_line("unknown key \"extra\" for op \"stats\"") +
        "\n" +
        service::render_error_line("unknown key \"slot\" for op \"clear\"") +
        "\n" +
        service::render_error_line("unknown key \"detail\" for op \"scan\"") +
        "\n" +
        service::render_error_line("unknown key \"slot\" for op \"graph\"") +
        "\n" +
        service::render_error_line(
            "unknown key \"bogus\" for op \"validate\"") +
        "\n" + service::render_bye_line() + "\n";

    std::ostringstream serial_out;
    {
        ServeOptions options;
        options.deterministic = true;
        std::istringstream in(script);
        service::serve_ndjson(in, serial_out, options);
    }
    EXPECT_EQ(serial_out.str(), expected);

    std::ostringstream session_out;
    {
        ServerOptions options;
        options.deterministic = true;
        AnalysisServer server(options);
        std::istringstream in(script);
        server.serve_session(in, session_out);
    }
    EXPECT_EQ(session_out.str(), expected);
}

// ------------------------------------------------------ multi-client golden

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(GoldenNdjsonProtocol, MultiClientTranscriptsMatch) {
    const std::string dir = PHPSAFE_GOLDEN_DIR;
    const std::string in_a = read_file(dir + "/ndjson_multi_a.in");
    const std::string in_b = read_file(dir + "/ndjson_multi_b.in");

    ServerOptions options;
    options.deterministic = true;
    options.service.workers = 2;
    AnalysisServer server(options);

    std::istringstream stream_a(in_a), stream_b(in_b);
    std::ostringstream out_a, out_b;
    std::thread ta([&] { server.serve_session(stream_a, out_a); });
    std::thread tb([&] { server.serve_session(stream_b, out_b); });
    ta.join();
    tb.join();

    // Disjoint plugin contents mean zero cross-client cache interaction, so
    // each client's transcript is deterministic despite true concurrency.
    EXPECT_EQ(out_a.str(), read_file(dir + "/ndjson_multi_a.out"));
    EXPECT_EQ(out_b.str(), read_file(dir + "/ndjson_multi_b.out"));
}

}  // namespace
}  // namespace phpsafe
