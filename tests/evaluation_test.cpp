// Tests for the public evaluation driver (report/evaluation.h): the
// programmatic form of the paper's §IV.B procedure.
#include <gtest/gtest.h>

#include "report/evaluation.h"

namespace phpsafe {
namespace {

class EvaluationApiTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        EvaluationOptions options;
        options.corpus_scale = 0.25;
        evaluation_ = new Evaluation(
            run_corpus_evaluation(paper_tool_set(), options));
    }
    static void TearDownTestSuite() {
        delete evaluation_;
        evaluation_ = nullptr;
    }
    static Evaluation* evaluation_;
};

Evaluation* EvaluationApiTest::evaluation_ = nullptr;

TEST_F(EvaluationApiTest, PaperToolSetNames) {
    ASSERT_EQ(evaluation_->tool_names.size(), 3u);
    EXPECT_EQ(evaluation_->tool_names[0], "phpSAFE");
    EXPECT_EQ(evaluation_->tool_names[1], "RIPS");
    EXPECT_EQ(evaluation_->tool_names[2], "Pixy");
}

TEST_F(EvaluationApiTest, StatsForBothVersions) {
    for (const char* version : {"2012", "2014"}) {
        ASSERT_TRUE(evaluation_->stats.count(version)) << version;
        for (const std::string& tool : evaluation_->tool_names)
            ASSERT_TRUE(evaluation_->stats.at(version).count(tool))
                << version << "/" << tool;
    }
}

TEST_F(EvaluationApiTest, UnionDetectedIsSuperset) {
    const auto all = evaluation_->union_detected("2014");
    for (const std::string& tool : evaluation_->tool_names) {
        const auto& detected =
            evaluation_->stats.at("2014").at(tool).detected_ids;
        for (const std::string& id : detected)
            EXPECT_TRUE(all.count(id)) << tool << " " << id;
    }
    EXPECT_GT(all.size(),
              evaluation_->stats.at("2014").at("RIPS").detected_ids.size());
}

TEST_F(EvaluationApiTest, PaperFnConsistentWithUnion) {
    const auto fn = evaluation_->paper_false_negatives("2012");
    const auto all = evaluation_->union_detected("2012");
    for (const std::string& tool : evaluation_->tool_names) {
        const auto& s = evaluation_->stats.at("2012").at(tool);
        EXPECT_EQ(fn.at(tool),
                  static_cast<int>(all.size() - s.detected_ids.size()))
            << tool;
    }
}

TEST_F(EvaluationApiTest, TimingAccumulated) {
    for (const std::string& tool : evaluation_->tool_names)
        EXPECT_GT(evaluation_->stats.at("2014").at(tool).cpu_seconds(), 0.0)
            << tool;
}

TEST_F(EvaluationApiTest, KindSplitsSumToGlobal) {
    for (const char* version : {"2012", "2014"}) {
        for (const std::string& tool : evaluation_->tool_names) {
            const EvaluationStats& s = evaluation_->stats.at(version).at(tool);
            EXPECT_EQ(s.tp, s.tp_xss + s.tp_sqli) << version << "/" << tool;
            EXPECT_EQ(s.fp, s.fp_xss + s.fp_sqli) << version << "/" << tool;
        }
    }
}

TEST_F(EvaluationApiTest, ParseSecondsIsPartOfCpuSeconds) {
    for (const char* version : {"2012", "2014"}) {
        for (const std::string& tool : evaluation_->tool_names) {
            const EvaluationStats& s = evaluation_->stats.at(version).at(tool);
            EXPECT_GT(s.parse_seconds(), 0.0) << version << "/" << tool;
            EXPECT_LE(s.parse_seconds(), s.cpu_seconds())
                << version << "/" << tool;
        }
    }
}

TEST_F(EvaluationApiTest, StageBreakdownIsConsistent) {
    for (const char* version : {"2012", "2014"}) {
        for (const std::string& tool : evaluation_->tool_names) {
            const StageBreakdown& st =
                evaluation_->stats.at(version).at(tool).stages;
            EXPECT_GE(st.lex, 0.0) << version << "/" << tool;
            EXPECT_GE(st.include, 0.0) << version << "/" << tool;
            EXPECT_DOUBLE_EQ(st.total(), st.model() + st.analysis());
            // The compatibility accessors are pure views over the stages.
            const EvaluationStats& s = evaluation_->stats.at(version).at(tool);
            EXPECT_DOUBLE_EQ(s.cpu_seconds(), st.total());
            EXPECT_DOUBLE_EQ(s.parse_seconds(), st.model());
        }
    }
}

TEST_F(EvaluationApiTest, CountersAccumulated) {
    for (const char* version : {"2012", "2014"}) {
        for (const std::string& tool : evaluation_->tool_names) {
            const obs::Counters& c =
                evaluation_->stats.at(version).at(tool).counters;
            // Model counters are credited to every tool, so even Pixy (which
            // fails OOP files) reports lexed tokens and parsed files.
            EXPECT_GT(c.tokens_lexed, 0u) << version << "/" << tool;
            EXPECT_GT(c.ast_nodes, 0u) << version << "/" << tool;
            EXPECT_GT(c.files_parsed, 0u) << version << "/" << tool;
            EXPECT_GT(c.sink_checks, 0u) << version << "/" << tool;
        }
    }
}

// Serial/parallel equivalence lives in determinism_test.cpp.

}  // namespace
}  // namespace phpsafe
