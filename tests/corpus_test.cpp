// Corpus-generator tests: determinism, budgets, ground-truth line accuracy,
// evolution (carried-over) modeling — plus the per-family detection matrix
// that encodes which capability envelope catches which pattern class (the
// mechanism behind the Table I shape).
#include <gtest/gtest.h>

#include <map>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "corpus/generator.h"
#include "corpus/patterns.h"
#include "php/project.h"
#include "report/matching.h"
#include "util/strings.h"

namespace phpsafe::corpus {
namespace {

TEST(PatternsTest, EveryFamilyEmitsCode) {
    for (Family family : kAllFamilies) {
        const Snippet snippet = emit(family, "t0", 0);
        EXPECT_FALSE(snippet.lines.empty()) << to_string(family);
        if (traits(family).vulnerable) {
            EXPECT_FALSE(snippet.sink_line_offsets.empty()) << to_string(family);
        }
    }
}

TEST(PatternsTest, SinkOffsetsInRange) {
    for (Family family : kAllFamilies) {
        const Snippet snippet = emit(family, "t1", 3);
        for (int offset : snippet.sink_line_offsets) {
            EXPECT_GE(offset, 0);
            EXPECT_LT(offset, static_cast<int>(snippet.lines.size()));
        }
    }
}

TEST(PatternsTest, VariantsDiffer) {
    const Snippet a = emit(Family::kXssGetEcho, "t2", 0);
    const Snippet b = emit(Family::kXssGetEcho, "t2", 1);
    EXPECT_NE(a.lines, b.lines);
}

TEST(PatternsTest, TagMakesIdentifiersUnique) {
    const Snippet a = emit(Family::kXssGetViaFunction, "aa", 0);
    const Snippet b = emit(Family::kXssGetViaFunction, "bb", 0);
    ASSERT_FALSE(a.declared_functions.empty());
    EXPECT_NE(a.declared_functions[0], b.declared_functions[0]);
}

TEST(PatternsTest, FillerScalesWithWeight) {
    const Snippet small = emit_filler("f", 0, 5);
    const Snippet big = emit_filler("f", 0, 50);
    EXPECT_GT(big.lines.size(), small.lines.size());
    EXPECT_GE(static_cast<int>(big.lines.size()), 50);
}

// ---------------------------------------------------------------------------
// Detection matrix: family → expected findings per tool (count on one
// isolated snippet instance). This encodes the capability story the paper
// tells: phpSAFE's OOP+WordPress awareness vs RIPS vs Pixy.
// ---------------------------------------------------------------------------

struct MatrixRow {
    Family family;
    int phpsafe;
    int rips;
    int pixy;
};

const MatrixRow kMatrix[] = {
    {Family::kXssGetEcho, 1, 1, 1},
    {Family::kXssPostEcho, 1, 1, 1},
    {Family::kXssCookieEcho, 1, 1, 1},
    {Family::kXssRequestPrint, 1, 1, 1},
    {Family::kXssGetViaFunction, 1, 1, 1},
    {Family::kXssDbProcedural, 1, 1, 1},
    {Family::kXssFileSource, 1, 1, 1},
    {Family::kXssUncalledFn, 1, 1, 0},
    {Family::kXssDeepInclude, 1, 1, 1},  // chain behaviour tested separately
    {Family::kXssPrintfGet, 1, 1, 1},
    // Pixy's register_globals modeling also fires here: it cannot see the
    // preg_match write, so the capture array reads as an injectable global.
    {Family::kXssPregMatchFlow, 1, 1, 1},
    {Family::kXssExitMessage, 1, 1, 1},
    {Family::kXssWpdbRows, 1, 0, 0},
    {Family::kXssWpdbVar, 1, 0, 0},
    {Family::kXssWpdbRevert, 1, 0, 0},
    {Family::kXssOopProperty, 1, 0, 0},
    {Family::kXssWpOption, 1, 0, 0},
    {Family::kXssWpPostmeta, 1, 0, 0},
    {Family::kSqliWpdbQuery, 1, 0, 0},
    {Family::kSqliWpdbGetResults, 1, 0, 0},
    {Family::kSqliMysqliOop, 1, 0, 0},
    {Family::kXssRegisterGlobals, 0, 0, 1},
    {Family::kXssWrongContextSanitizer, 0, 1, 1},
    {Family::kSafeSanitizedEcho, 0, 0, 0},
    {Family::kSafeEscHtml, 0, 1, 1},
    {Family::kSafeGuardExit, 1, 1, 1},
    {Family::kSafeWhitelistTernary, 1, 1, 1},
    {Family::kSafeIssetEcho, 0, 0, 1},
    {Family::kSafeIntval, 0, 0, 0},
    {Family::kSafePrepare, 0, 0, 0},
    {Family::kSafeSprintfD, 1, 1, 1},
    {Family::kSafeJsonEncode, 0, 0, 1},
    {Family::kSafeCast, 0, 0, 0},
    {Family::kSafeSqliGuard, 1, 0, 0},
};

class DetectionMatrixTest : public ::testing::TestWithParam<MatrixRow> {};

int run_count(const std::string& code, const Tool& tool) {
    php::Project project("snippet");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    const Analyzer analyzer = Analyzer::borrowing(tool.kb, tool.options);
    return static_cast<int>(analyzer.scan(project).result.findings.size());
}

TEST_P(DetectionMatrixTest, ToolsDetectPerCapabilities) {
    const MatrixRow row = GetParam();
    const Snippet snippet = emit(row.family, "m0", 2);
    std::string code = "<?php\n";
    for (const std::string& line : snippet.lines) code += line + "\n";

    EXPECT_EQ(run_count(code, make_phpsafe_tool()), row.phpsafe)
        << to_string(row.family) << " (phpSAFE)\n" << code;
    EXPECT_EQ(run_count(code, make_rips_like_tool()), row.rips)
        << to_string(row.family) << " (RIPS)\n" << code;
    EXPECT_EQ(run_count(code, make_pixy_like_tool()), row.pixy)
        << to_string(row.family) << " (Pixy)\n" << code;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DetectionMatrixTest,
                         ::testing::ValuesIn(kMatrix),
                         [](const ::testing::TestParamInfo<MatrixRow>& info) {
                             return to_string(info.param.family);
                         });

// Structural variants of the superglobal→echo families (direct concat,
// interpolation, chained .=, propagation built-ins) must all stay
// detectable by phpSAFE — variation is cosmetic, the flow is the same.
class VariantSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(VariantSweepTest, AllVariantsDetected) {
    const int variant = GetParam();
    for (Family family : {Family::kXssGetEcho, Family::kXssPostEcho,
                          Family::kXssCookieEcho}) {
        const Snippet snippet = emit(family, "vv0", variant);
        std::string code = "<?php\n";
        for (const std::string& line : snippet.lines) code += line + "\n";
        EXPECT_EQ(run_count(code, make_phpsafe_tool()), 1)
            << to_string(family) << " variant " << variant << "\n" << code;
        // Ground-truth sink offset must point at the reporting line.
        php::Project project("v");
        project.add_file("main.php", code);
        DiagnosticSink sink;
        project.parse_all(sink);
        const Tool tool = make_phpsafe_tool();
        const auto result =
            Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
        ASSERT_EQ(result.findings.size(), 1u);
        ASSERT_EQ(snippet.sink_line_offsets.size(), 1u);
        EXPECT_EQ(result.findings[0].location.line,
                  snippet.sink_line_offsets[0] + 2)  // "<?php" is line 1
            << to_string(family) << " variant " << variant;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantSweepTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Generator-level properties (small scale for speed).
// ---------------------------------------------------------------------------

CorpusOptions small_options() {
    CorpusOptions options;
    options.scale = 0.25;
    options.filler_lines_2012 = 4000;
    options.filler_lines_2014 = 8000;
    return options;
}

TEST(GeneratorTest, Deterministic) {
    const Corpus a = generate_corpus(small_options());
    const Corpus b = generate_corpus(small_options());
    ASSERT_EQ(a.plugins.size(), b.plugins.size());
    for (size_t i = 0; i < a.plugins.size(); ++i) {
        ASSERT_EQ(a.plugins[i].v2012.files.size(), b.plugins[i].v2012.files.size());
        for (size_t f = 0; f < a.plugins[i].v2012.files.size(); ++f)
            EXPECT_EQ(a.plugins[i].v2012.files[f].second,
                      b.plugins[i].v2012.files[f].second);
    }
}

TEST(GeneratorTest, PluginAndFileCounts) {
    const Corpus corpus = generate_corpus(small_options());
    EXPECT_EQ(corpus.plugins.size(), 35u);
    int oop = 0;
    for (const GeneratedPlugin& p : corpus.plugins) oop += p.oop ? 1 : 0;
    EXPECT_EQ(oop, 19);
    EXPECT_GT(corpus.total_files("2014"), corpus.total_files("2012"));
    EXPECT_GT(corpus.total_lines("2014"), corpus.total_lines("2012"));
}

TEST(GeneratorTest, TruthGrowsBetweenVersions) {
    const Corpus corpus = generate_corpus(small_options());
    const auto truth_2012 = corpus.all_truth("2012");
    const auto truth_2014 = corpus.all_truth("2014");
    EXPECT_GT(truth_2014.size(), truth_2012.size());
    // Roughly +50% (paper: 394 → 586).
    const double growth =
        static_cast<double>(truth_2014.size()) / truth_2012.size();
    EXPECT_GT(growth, 1.2);
    EXPECT_LT(growth, 2.0);
}

TEST(GeneratorTest, CarriedOverFractionMatchesPaper) {
    const Corpus corpus = generate_corpus(small_options());
    const auto truth_2014 = corpus.all_truth("2014");
    int carried = 0;
    for (const SeededVuln& v : truth_2014) carried += v.carried_over ? 1 : 0;
    const double fraction = static_cast<double>(carried) / truth_2014.size();
    // Paper §V.D: 42% of the 2014 vulnerabilities were already disclosed.
    EXPECT_GT(fraction, 0.30);
    EXPECT_LT(fraction, 0.55);
}

TEST(GeneratorTest, GroundTruthLinesPointAtSinks) {
    const Corpus corpus = generate_corpus(small_options());
    int checked = 0;
    for (const GeneratedPlugin& plugin : corpus.plugins) {
        std::map<std::string, const std::string*> by_name;
        for (const auto& [name, text] : plugin.v2012.files) by_name[name] = &text;
        for (const SeededVuln& vuln : plugin.v2012.truth) {
            ASSERT_TRUE(by_name.count(vuln.file)) << vuln.id;
            SourceFile file(vuln.file, *by_name[vuln.file]);
            const std::string_view line = file.line(vuln.line);
            const bool looks_like_sink =
                line.find("echo") != std::string_view::npos ||
                line.find("print") != std::string_view::npos ||
                line.find("query") != std::string_view::npos ||
                line.find("die(") != std::string_view::npos ||
                line.find("get_results") != std::string_view::npos;
            EXPECT_TRUE(looks_like_sink)
                << vuln.id << " line " << vuln.line << ": " << line;
            ++checked;
        }
    }
    EXPECT_GT(checked, 50);
}

TEST(GeneratorTest, EveryVulnerableFamilyPresent) {
    const Corpus corpus = generate_corpus(small_options());
    std::map<Family, int> seen;
    for (const SeededVuln& v : corpus.all_truth("2012")) ++seen[v.family];
    for (Family family : kAllFamilies) {
        if (!traits(family).vulnerable) continue;
        EXPECT_GT(seen[family], 0) << to_string(family);
    }
}

TEST(GeneratorTest, ProjectsParseWithoutFatalErrors) {
    const Corpus corpus = generate_corpus(small_options());
    for (const GeneratedPlugin& plugin : corpus.plugins) {
        DiagnosticSink sink;
        const php::Project project = build_project(plugin, plugin.v2012, sink);
        EXPECT_EQ(sink.count(Severity::kFatal), 0) << plugin.name;
        EXPECT_EQ(sink.count(Severity::kError), 0) << plugin.name;
    }
}

TEST(GeneratorTest, DeepChainMakesPhpSafeFailOneFilePerChain) {
    const Corpus corpus = generate_corpus(small_options());
    // Plugin 0 carries the 2012 chain.
    const GeneratedPlugin& plugin = corpus.plugins[0];
    DiagnosticSink sink;
    const php::Project project = build_project(plugin, plugin.v2012, sink);
    const Tool tool = make_phpsafe_tool();
    const auto result =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
    EXPECT_EQ(result.files_failed, 1);

    const Tool rips = make_rips_like_tool();
    const Analyzer rips_analyzer = Analyzer::borrowing(rips.kb, rips.options);
    EXPECT_EQ(rips_analyzer.scan(project).result.files_failed, 0);
}

TEST(GeneratorTest, ScaleChangesVolume) {
    CorpusOptions big = small_options();
    big.scale = 0.5;
    const Corpus small_corpus = generate_corpus(small_options());
    const Corpus big_corpus = generate_corpus(big);
    EXPECT_GT(big_corpus.all_truth("2012").size(),
              small_corpus.all_truth("2012").size());
}

TEST(GeneratorTest, OopSnippetsOnlyInOopPlugins) {
    // OOP-requiring families must land in OOP plugins (only they have OOP
    // file slots); otherwise the 19-vs-16 plugin split loses its meaning.
    const Corpus corpus = generate_corpus(small_options());
    for (const GeneratedPlugin& plugin : corpus.plugins) {
        if (plugin.oop) continue;
        for (const SeededVuln& vuln : plugin.v2012.truth)
            EXPECT_FALSE(traits(vuln.family).requires_oop_file)
                << plugin.name << " " << vuln.id;
    }
}

TEST(GeneratorTest, FileLayoutGrowsIn2014) {
    const Corpus corpus = generate_corpus(small_options());
    for (const GeneratedPlugin& plugin : corpus.plugins) {
        EXPECT_GT(plugin.v2014.files.size(), plugin.v2012.files.size())
            << plugin.name;
    }
}

TEST(GeneratorTest, ChainFilesOnlyInChainPlugins) {
    const Corpus corpus = generate_corpus(small_options());
    for (size_t p = 0; p < corpus.plugins.size(); ++p) {
        bool has_chain_2012 = false, has_chain_2014 = false;
        for (const auto& [name, text] : corpus.plugins[p].v2012.files)
            if (name.find("deep/chain-") != std::string::npos) has_chain_2012 = true;
        for (const auto& [name, text] : corpus.plugins[p].v2014.files)
            if (name.find("deep/chain-") != std::string::npos) has_chain_2014 = true;
        EXPECT_EQ(has_chain_2012, p == 0) << p;
        EXPECT_EQ(has_chain_2014, p <= 2) << p;
    }
}

TEST(GeneratorTest, DeepVulnsLiveInChainEntries) {
    const Corpus corpus = generate_corpus(small_options());
    for (const SeededVuln& vuln : corpus.all_truth("2014")) {
        if (vuln.family != Family::kXssDeepInclude) continue;
        EXPECT_EQ(vuln.file, "deep/chain-0.php") << vuln.id;
    }
}

TEST(GeneratorTest, CarriedIdsExistIn2012) {
    // A carried 2014 vulnerability must reference an id that exists in the
    // 2012 ground truth (same unfixed defect).
    const Corpus corpus = generate_corpus(small_options());
    std::map<std::string, int> ids_2012;
    for (const SeededVuln& v : corpus.all_truth("2012")) ++ids_2012[v.id];
    for (const SeededVuln& v : corpus.all_truth("2014")) {
        if (v.carried_over)
            EXPECT_TRUE(ids_2012.count(v.id)) << v.id;
        else
            EXPECT_FALSE(ids_2012.count(v.id)) << v.id;
    }
}

TEST(GeneratorTest, BudgetsHonored) {
    const auto budget = family_budget("2012", 1.0);
    const Corpus corpus = generate_corpus(CorpusOptions{});
    std::map<Family, int> seen;
    for (const SeededVuln& v : corpus.all_truth("2012")) ++seen[v.family];
    for (const auto& [family, expected] : budget) {
        if (!traits(family).vulnerable) continue;
        EXPECT_EQ(seen[family], expected) << to_string(family);
    }
}

}  // namespace
}  // namespace phpsafe::corpus
