// Parser unit tests: AST construction for the PHP subset used by plugins,
// verified through compact s-expression dumps.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "php/parser.h"
#include "util/source.h"

namespace phpsafe::php {
namespace {

/// Owns the source text and arena a parsed unit's nodes point into; kept
/// alive for the whole test run so returned FileUnits never dangle.
struct ParseKeeper {
    explicit ParseKeeper(std::string code)
        : file("test.php", std::move(code)) {}
    SourceFile file;
    Arena arena;
};

FileUnit parse(const std::string& code, DiagnosticSink* sink_out = nullptr) {
    static std::vector<std::unique_ptr<ParseKeeper>> keepers;
    keepers.push_back(std::make_unique<ParseKeeper>(code));
    ParseKeeper& k = *keepers.back();
    DiagnosticSink sink;
    Parser parser(k.file, k.arena, sink);
    FileUnit unit = parser.parse();
    if (sink_out) *sink_out = sink;
    return unit;
}

/// Parses `<?php` + code and dumps the first statement.
std::string first_stmt(const std::string& code) {
    FileUnit unit = parse("<?php " + code);
    if (unit.statements.empty()) return "<none>";
    return dump(*unit.statements.front());
}

TEST(ParserTest, SimpleAssignment) {
    EXPECT_EQ(first_stmt("$x = 1;"), "(= $x 1)");
}

TEST(ParserTest, ConcatAssignment) {
    EXPECT_EQ(first_stmt("$x .= $y;"), "(.= $x $y)");
}

TEST(ParserTest, SuperglobalIndex) {
    EXPECT_EQ(first_stmt("$m = $_GET['msg'];"), "(= $m (index $_GET \"msg\"))");
}

TEST(ParserTest, EchoMultipleArgs) {
    EXPECT_EQ(first_stmt("echo $a, $b;"), "(echo $a $b)");
}

TEST(ParserTest, ConcatPrecedenceWithComparison) {
    // '.' binds tighter than '=='.
    EXPECT_EQ(first_stmt("$r = $a . $b == $c;"), "(= $r (== (. $a $b) $c))");
}

TEST(ParserTest, ArithmeticPrecedence) {
    EXPECT_EQ(first_stmt("$r = 1 + 2 * 3;"), "(= $r (+ 1 (* 2 3)))");
}

TEST(ParserTest, RightAssociativeAssignment) {
    EXPECT_EQ(first_stmt("$a = $b = 1;"), "(= $a (= $b 1))");
}

TEST(ParserTest, WordOperatorsBindLooserThanAssignment) {
    // `$a = $b or die()` groups as ($a = $b) or die().
    EXPECT_EQ(first_stmt("$a = $b or $c;"), "(|| (= $a $b) $c)");
}

TEST(ParserTest, TernaryAndElvis) {
    EXPECT_EQ(first_stmt("$x = $c ? 1 : 2;"), "(= $x (?: $c 1 2))");
    EXPECT_EQ(first_stmt("$x = $c ?: 2;"), "(= $x (?: $c <elvis> 2))");
}

TEST(ParserTest, MethodCall) {
    EXPECT_EQ(first_stmt("$wpdb->query($sql);"), "(mcall $wpdb query $sql)");
}

TEST(ParserTest, ChainedPropertyAndMethod) {
    EXPECT_EQ(first_stmt("$a->b->c($d);"), "(mcall (prop $a b) c $d)");
}

TEST(ParserTest, StaticCallAndProperty) {
    EXPECT_EQ(first_stmt("Foo::bar($x);"), "(scall Foo bar $x)");
    EXPECT_EQ(first_stmt("$v = Foo::$prop;"), "(= $v (sprop Foo prop))");
    EXPECT_EQ(first_stmt("$v = Foo::BAR;"), "(= $v (cconst Foo BAR))");
}

TEST(ParserTest, NewWithArgs) {
    EXPECT_EQ(first_stmt("$o = new Widget($a);"), "(= $o (new Widget $a))");
}

TEST(ParserTest, NewWithoutParens) {
    EXPECT_EQ(first_stmt("$o = new Widget;"), "(= $o (new Widget))");
}

TEST(ParserTest, ArrayLiteralBothSyntaxes) {
    EXPECT_EQ(first_stmt("$a = array(1, 2);"), "(= $a (array 1 2))");
    EXPECT_EQ(first_stmt("$a = [1, 'k' => 2];"), "(= $a (array 1 [\"k\"]=2))");
}

TEST(ParserTest, InterpolatedString) {
    EXPECT_EQ(first_stmt("$s = \"hi $name!\";"),
              "(= $s (interp \"hi \" $name \"!\"))");
}

TEST(ParserTest, InterpolatedPropertyAccess) {
    EXPECT_EQ(first_stmt("$s = \"v {$row->name} w\";"),
              "(= $s (interp \"v \" (prop $row name) \" w\"))");
}

TEST(ParserTest, IfElseChain) {
    EXPECT_EQ(first_stmt("if ($a) { $x = 1; } elseif ($b) { $x = 2; } else { $x = 3; }"),
              "(if $a (block (= $x 1)) (if $b (block (= $x 2)) (block (= $x 3))))");
}

TEST(ParserTest, AlternativeIfSyntax) {
    EXPECT_EQ(first_stmt("if ($a): $x = 1; else: $x = 2; endif;"),
              "(if $a (block (= $x 1)) (block (= $x 2)))");
}

TEST(ParserTest, WhileLoop) {
    EXPECT_EQ(first_stmt("while ($r = next_row()) { echo $r; }"),
              "(while (= $r (call next_row)) (block (echo $r)))");
}

TEST(ParserTest, ForLoop) {
    EXPECT_EQ(first_stmt("for ($i = 0; $i < 5; $i++) { echo $i; }"),
              "(for (= $i 0) ; (< $i 5) ; (post++ $i) (block (echo $i)))");
}

TEST(ParserTest, ForeachWithKey) {
    EXPECT_EQ(first_stmt("foreach ($rows as $k => $v) { echo $v; }"),
              "(foreach $rows as $k => $v (block (echo $v)))");
}

TEST(ParserTest, ForeachAlternativeSyntax) {
    EXPECT_EQ(first_stmt("foreach ($rows as $v): echo $v; endforeach;"),
              "(foreach $rows as $v (block (echo $v)))");
}

TEST(ParserTest, SwitchCases) {
    EXPECT_EQ(first_stmt("switch ($x) { case 1: echo $a; break; default: echo $b; }"),
              "(switch $x (case 1 (echo $a) (break)) (case default (echo $b)))");
}

TEST(ParserTest, FunctionDeclWithDefaults) {
    EXPECT_EQ(first_stmt("function f($a, $b = 1) { return $a; }"),
              "(function f ($a $b) (return $a))");
}

TEST(ParserTest, FunctionWithTypeHintsAndByRef) {
    EXPECT_EQ(first_stmt("function g(array $a, &$b, ...$rest) {}"),
              "(function g ($a $b $rest))");
}

TEST(ParserTest, ClassWithEverything) {
    const std::string code =
        "class Widget extends Base implements I1, I2 {\n"
        "  const VERSION = '1.0';\n"
        "  public static $count = 0;\n"
        "  private $name;\n"
        "  public function __construct($n) { $this->name = $n; }\n"
        "  public function render() { echo $this->name; }\n"
        "}";
    EXPECT_EQ(first_stmt(code),
              "(class Widget extends Base $count $name "
              "(function __construct ($n) (= (prop $this name) $n)) "
              "(function render () (echo (prop $this name))))");
}

TEST(ParserTest, GlobalStatement) {
    EXPECT_EQ(first_stmt("global $wpdb, $post;"), "(global $wpdb $post)");
}

TEST(ParserTest, UnsetStatement) {
    EXPECT_EQ(first_stmt("unset($a, $b['k']);"), "(unset $a (index $b \"k\"))");
}

TEST(ParserTest, IncludeRequire) {
    EXPECT_EQ(first_stmt("require_once 'inc.php';"), "(require_once \"inc.php\")");
    EXPECT_EQ(first_stmt("include dirname(__FILE__) . '/x.php';"),
              "(include (. (call dirname \"\") \"/x.php\"))");
}

TEST(ParserTest, ClosureWithUse) {
    EXPECT_EQ(first_stmt("$f = function ($a) use ($b) { echo $a . $b; };"),
              "(= $f (closure ($a) (echo (. $a $b))))");
}

TEST(ParserTest, TryCatchFinally) {
    EXPECT_EQ(first_stmt("try { risky(); } catch (Exception $e) { log_it($e); } "
                         "finally { done(); }"),
              "(try (call risky) (catch $e (call log_it $e)) "
              "(finally (call done)))");
}

TEST(ParserTest, ListAssignment) {
    EXPECT_EQ(first_stmt("list($a, $b) = $pair;"), "(= (list $a $b) $pair)");
}

TEST(ParserTest, CastExpression) {
    EXPECT_EQ(first_stmt("$n = (int) $_GET['n'];"),
              "(= $n (cast int (index $_GET \"n\")))");
}

TEST(ParserTest, ErrorSuppression) {
    EXPECT_EQ(first_stmt("$c = @file_get_contents($p);"),
              "(= $c (@ (call file_get_contents $p)))");
}

TEST(ParserTest, PrintIsExpression) {
    EXPECT_EQ(first_stmt("$ok = print $msg;"), "(= $ok (print $msg))");
}

TEST(ParserTest, ExitWithMessage) {
    EXPECT_EQ(first_stmt("exit('bye');"), "(exit \"bye\")");
    EXPECT_EQ(first_stmt("die;"), "(exit)");
}

TEST(ParserTest, InstanceOf) {
    EXPECT_EQ(first_stmt("$ok = $o instanceof WP_Error;"),
              "(= $ok (instanceof $o WP_Error))");
}

TEST(ParserTest, InlineHtmlBetweenPhpBlocks) {
    FileUnit unit = parse("<?php $a = 1; ?><b>html</b><?php echo $a;");
    ASSERT_EQ(unit.statements.size(), 3u);
    EXPECT_EQ(unit.statements[0]->kind, NodeKind::kExprStmt);
    EXPECT_EQ(unit.statements[1]->kind, NodeKind::kInlineHtmlStmt);
    EXPECT_EQ(unit.statements[2]->kind, NodeKind::kEchoStmt);
}

TEST(ParserTest, OpenTagEchoBecomesEchoStmt) {
    FileUnit unit = parse("<?= $msg ?>");
    ASSERT_EQ(unit.statements.size(), 1u);
    ASSERT_EQ(unit.statements[0]->kind, NodeKind::kEchoStmt);
    EXPECT_TRUE(static_cast<const EchoStmt&>(*unit.statements[0]).from_open_tag);
}

TEST(ParserTest, HtmlInsideIfBody) {
    FileUnit unit =
        parse("<?php if ($show) { ?><div>x</div><?php } echo 'done';");
    ASSERT_GE(unit.statements.size(), 2u);
    EXPECT_EQ(unit.statements[0]->kind, NodeKind::kIfStmt);
}

TEST(ParserTest, StaticVariableDeclaration) {
    EXPECT_EQ(first_stmt("static $cache = null;"), "(static $cache=null)");
}

TEST(ParserTest, StaticMethodCallNotVarDecl) {
    EXPECT_EQ(first_stmt("static::helper($x);"), "(scall static helper $x)");
}

TEST(ParserTest, NamespaceAndUse) {
    FileUnit unit = parse("<?php namespace Acme\\Plugin; use WP\\DB as Database;");
    ASSERT_EQ(unit.statements.size(), 2u);
    EXPECT_EQ(unit.statements[0]->kind, NodeKind::kNamespaceStmt);
    EXPECT_EQ(static_cast<const NamespaceStmt&>(*unit.statements[0]).name,
              "Acme\\Plugin");
    EXPECT_EQ(unit.statements[1]->kind, NodeKind::kUseStmt);
}

TEST(ParserTest, HeredocInExpression) {
    FileUnit unit = parse("<?php $html = <<<EOT\n<b>$name</b>\nEOT;\necho $html;");
    ASSERT_GE(unit.statements.size(), 2u);
    EXPECT_EQ(dump(*unit.statements[0]), "(= $html (interp \"<b>\" $name \"</b>\"))");
}

TEST(ParserTest, LineNumbersOnNodes) {
    FileUnit unit = parse("<?php\n\n$x = 1;\necho $x;");
    ASSERT_EQ(unit.statements.size(), 2u);
    EXPECT_EQ(unit.statements[0]->line, 3);
    EXPECT_EQ(unit.statements[1]->line, 4);
}

TEST(ParserTest, RecoversFromGarbage) {
    DiagnosticSink sink;
    FileUnit unit = parse("<?php $a = 1; ^^^ ; echo $a;", &sink);
    EXPECT_GE(sink.count(Severity::kError) + sink.count(Severity::kWarning), 1);
    // The echo after the garbage must still be parsed.
    bool has_echo = false;
    for (const StmtPtr& s : unit.statements)
        if (s && s->kind == NodeKind::kEchoStmt) has_echo = true;
    EXPECT_TRUE(has_echo);
}

TEST(ParserTest, DynamicVariableVariable) {
    EXPECT_EQ(first_stmt("$$name = 1;"), "(= $$name 1)");
}

TEST(ParserTest, CompactArrowFn) {
    EXPECT_EQ(first_stmt("$f = fn($x) => $x * 2;"),
              "(= $f (closure ($x) (return (* $x 2))))");
}

TEST(ParserTest, ReferenceAssignment) {
    EXPECT_EQ(first_stmt("$a =& $b;"), "(=& $a $b)");
}

TEST(ParserTest, InterfaceDecl) {
    FileUnit unit = parse("<?php interface Renderable { public function render(); }");
    ASSERT_EQ(unit.statements.size(), 1u);
    const auto& cls = static_cast<const ClassDecl&>(*unit.statements[0]);
    EXPECT_EQ(cls.class_kind, ClassDecl::Kind::kInterface);
    ASSERT_EQ(cls.methods.size(), 1u);
    EXPECT_TRUE(cls.methods[0]->body.empty());
}

TEST(ParserTest, TraitUseInsideClass) {
    FileUnit unit = parse("<?php class A { use Loggable; public $x; }");
    const auto& cls = static_cast<const ClassDecl&>(*unit.statements[0]);
    ASSERT_EQ(cls.interfaces.size(), 1u);
    EXPECT_EQ(cls.interfaces[0], "Loggable");
    ASSERT_EQ(cls.properties.size(), 1u);
}

TEST(ParserTest, NestedFunctionInsideIf) {
    FileUnit unit = parse(
        "<?php if (!function_exists('helper')) { function helper($x) { return $x; } }");
    ASSERT_EQ(unit.statements.size(), 1u);
    EXPECT_EQ(unit.statements[0]->kind, NodeKind::kIfStmt);
}

TEST(ParserTest, ParseExpressionText) {
    DiagnosticSink sink;
    Arena arena;
    ExprPtr expr =
        Parser::parse_expression_text("$a->b['c']", "f.php", 7, sink, arena);
    ASSERT_NE(expr, nullptr);
    EXPECT_EQ(dump(*expr), "(index (prop $a b) \"c\")");
    EXPECT_EQ(expr->line, 7);
}

}  // namespace
}  // namespace phpsafe::php
