// Utility-layer tests: source files/locations, diagnostics, string helpers,
// the symbol interner and flat maps behind engine scopes, and the evaluation
// worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/diagnostics.h"
#include "util/flat_map.h"
#include "util/interner.h"
#include "util/source.h"
#include "util/strings.h"
#include "util/worker_pool.h"

namespace phpsafe {
namespace {

TEST(SourceFileTest, LineCount) {
    EXPECT_EQ(SourceFile("f", "").line_count(), 0);
    EXPECT_EQ(SourceFile("f", "one").line_count(), 1);
    EXPECT_EQ(SourceFile("f", "one\n").line_count(), 1);
    EXPECT_EQ(SourceFile("f", "one\ntwo").line_count(), 2);
    EXPECT_EQ(SourceFile("f", "one\ntwo\n\n").line_count(), 3);
}

TEST(SourceFileTest, LineAccess) {
    SourceFile file("f", "first\nsecond\nthird");
    EXPECT_EQ(file.line(1), "first");
    EXPECT_EQ(file.line(2), "second");
    EXPECT_EQ(file.line(3), "third");
    EXPECT_EQ(file.line(4), "");
    EXPECT_EQ(file.line(0), "");
}

TEST(SourceLocationTest, Validity) {
    SourceLocation loc;
    EXPECT_FALSE(loc.valid());
    EXPECT_EQ(to_string(loc), "<unknown>");
    loc = {"a.php", 12};
    EXPECT_TRUE(loc.valid());
    EXPECT_EQ(to_string(loc), "a.php:12");
}

TEST(DiagnosticsTest, CountsBySeverity) {
    DiagnosticSink sink;
    sink.add(Severity::kWarning, {"a.php", 1}, "w");
    sink.add(Severity::kError, {"a.php", 2}, "e");
    sink.add(Severity::kFatal, {"b.php", 3}, "f");
    EXPECT_EQ(sink.count(Severity::kWarning), 1);
    EXPECT_EQ(sink.count(Severity::kError), 1);
    EXPECT_EQ(sink.count(Severity::kFatal), 1);
    EXPECT_TRUE(sink.has_fatal());
}

TEST(DiagnosticsTest, FailedFilesUniqued) {
    DiagnosticSink sink;
    sink.add(Severity::kFatal, {"a.php", 1}, "x");
    sink.add(Severity::kFatal, {"a.php", 9}, "y");
    sink.add(Severity::kFatal, {"b.php", 2}, "z");
    sink.add(Severity::kError, {"c.php", 3}, "not fatal");
    const auto failed = sink.failed_files();
    ASSERT_EQ(failed.size(), 2u);
    EXPECT_EQ(failed[0], "a.php");
    EXPECT_EQ(failed[1], "b.php");
}

TEST(StringsTest, AsciiLower) {
    EXPECT_EQ(ascii_lower("MySQLQuery"), "mysqlquery");
    EXPECT_EQ(ascii_lower(""), "");
}

TEST(StringsTest, IEquals) {
    EXPECT_TRUE(iequals("WPDB", "wpdb"));
    EXPECT_TRUE(iequals("", ""));
    EXPECT_FALSE(iequals("a", "ab"));
    EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(StringsTest, StartsEndsWith) {
    EXPECT_TRUE(starts_with("includes/utils.php", "includes/"));
    EXPECT_FALSE(starts_with("a", "ab"));
    EXPECT_TRUE(ends_with("includes/utils.php", ".php"));
    EXPECT_FALSE(ends_with(".php", "x.php"));
}

TEST(StringsTest, SplitAndJoin) {
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join({"x", "y", "z"}, "::"), "x::y::z");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, Trim) {
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ReplaceAll) {
    EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(SymbolTableTest, InternIsIdempotent) {
    SymbolTable table;
    const Symbol a = table.intern("$user");
    const Symbol b = table.intern("$user");
    const Symbol c = table.intern("$other");
    EXPECT_EQ(a, b);
    EXPECT_NE(a.id(), c.id());
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.name(a), "$user");
    EXPECT_EQ(table.name(c), "$other");
}

TEST(SymbolTableTest, VariablesCaseSensitiveFunctionsFolded) {
    SymbolTable table;
    // PHP: $User and $user are distinct variables...
    EXPECT_NE(table.intern("$User"), table.intern("$user"));
    // ...but MyFunc and myfunc are the same function.
    EXPECT_EQ(table.intern_folded("MyFunc"), table.intern_folded("myfunc"));
}

TEST(SymbolTableTest, SurvivesRehashWithStableNames) {
    SymbolTable table;
    std::vector<Symbol> symbols;
    for (int i = 0; i < 500; ++i)
        symbols.push_back(table.intern("$var" + std::to_string(i)));
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(table.name(symbols[i]), "$var" + std::to_string(i));
        EXPECT_EQ(table.intern("$var" + std::to_string(i)), symbols[i]);
    }
    EXPECT_EQ(table.size(), 500u);
    table.clear();
    EXPECT_EQ(table.size(), 0u);
}

TEST(SymbolMapTest, InsertFindErase) {
    SymbolMap<int> map;
    EXPECT_TRUE(map.empty());
    map[Symbol{1}] = 10;
    map[Symbol{2}] = 20;
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(Symbol{1}), nullptr);
    EXPECT_EQ(*map.find(Symbol{1}), 10);
    EXPECT_EQ(map.find(Symbol{3}), nullptr);
    EXPECT_TRUE(map.erase(Symbol{1}));
    EXPECT_FALSE(map.erase(Symbol{1}));
    EXPECT_EQ(map.find(Symbol{1}), nullptr);
    EXPECT_EQ(map.size(), 1u);
}

TEST(SymbolMapTest, FindAfterEraseProbesPastTombstone) {
    // Keys that collide under the initial capacity: ids 0 and 16 both land
    // in slot 0 when mask == 15, so 16 probes past 0. Erasing 0 must leave
    // a tombstone that keeps 16 reachable.
    SymbolMap<int> map;
    map[Symbol{0}] = 1;
    map[Symbol{16}] = 2;
    EXPECT_TRUE(map.erase(Symbol{0}));
    ASSERT_NE(map.find(Symbol{16}), nullptr);
    EXPECT_EQ(*map.find(Symbol{16}), 2);
    // Re-inserting reuses capacity and finds the right slot again.
    map[Symbol{0}] = 3;
    EXPECT_EQ(*map.find(Symbol{0}), 3);
    EXPECT_EQ(*map.find(Symbol{16}), 2);
}

TEST(SymbolMapTest, GrowthPreservesEntries) {
    SymbolMap<int> map;
    for (uint32_t i = 0; i < 300; ++i) map[Symbol{i}] = static_cast<int>(i * 7);
    EXPECT_EQ(map.size(), 300u);
    for (uint32_t i = 0; i < 300; ++i) {
        ASSERT_NE(map.find(Symbol{i}), nullptr) << i;
        EXPECT_EQ(*map.find(Symbol{i}), static_cast<int>(i * 7));
    }
    size_t visited = 0;
    map.for_each([&](Symbol, int) { ++visited; });
    EXPECT_EQ(visited, 300u);
}

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
    WorkerPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    std::vector<std::atomic<int>> hits(1000);
    pool.run(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
    // Reusable: a second dispatch on the same pool works.
    std::atomic<int> total{0};
    pool.run(257, [&](size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 257);
}

TEST(WorkerPoolTest, SingleThreadRunsInline) {
    WorkerPool pool(1);
    EXPECT_EQ(pool.thread_count(), 1);
    const auto caller = std::this_thread::get_id();
    bool all_inline = true;
    pool.run(16, [&](size_t) {
        if (std::this_thread::get_id() != caller) all_inline = false;
    });
    EXPECT_TRUE(all_inline);
}

TEST(WorkerPoolTest, RethrowsWorkerException) {
    WorkerPool pool(2);
    EXPECT_THROW(
        pool.run(8,
                 [](size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // Pool is still usable after an exception.
    std::atomic<int> total{0};
    pool.run(4, [&](size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 4);
}

TEST(WorkerPoolTest, ResolveParallelismHonorsEnv) {
    EXPECT_EQ(WorkerPool::resolve_parallelism(3), 3);
    setenv("PHPSAFE_JOBS", "5", 1);
    EXPECT_EQ(WorkerPool::resolve_parallelism(0), 5);
    setenv("PHPSAFE_JOBS", "garbage", 1);
    EXPECT_GE(WorkerPool::resolve_parallelism(0), 1);
    unsetenv("PHPSAFE_JOBS");
    EXPECT_GE(WorkerPool::resolve_parallelism(-1), 1);
}

}  // namespace
}  // namespace phpsafe
