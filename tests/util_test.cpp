// Utility-layer tests: source files/locations, diagnostics, string helpers.
#include <gtest/gtest.h>

#include "util/diagnostics.h"
#include "util/source.h"
#include "util/strings.h"

namespace phpsafe {
namespace {

TEST(SourceFileTest, LineCount) {
    EXPECT_EQ(SourceFile("f", "").line_count(), 0);
    EXPECT_EQ(SourceFile("f", "one").line_count(), 1);
    EXPECT_EQ(SourceFile("f", "one\n").line_count(), 1);
    EXPECT_EQ(SourceFile("f", "one\ntwo").line_count(), 2);
    EXPECT_EQ(SourceFile("f", "one\ntwo\n\n").line_count(), 3);
}

TEST(SourceFileTest, LineAccess) {
    SourceFile file("f", "first\nsecond\nthird");
    EXPECT_EQ(file.line(1), "first");
    EXPECT_EQ(file.line(2), "second");
    EXPECT_EQ(file.line(3), "third");
    EXPECT_EQ(file.line(4), "");
    EXPECT_EQ(file.line(0), "");
}

TEST(SourceLocationTest, Validity) {
    SourceLocation loc;
    EXPECT_FALSE(loc.valid());
    EXPECT_EQ(to_string(loc), "<unknown>");
    loc = {"a.php", 12};
    EXPECT_TRUE(loc.valid());
    EXPECT_EQ(to_string(loc), "a.php:12");
}

TEST(DiagnosticsTest, CountsBySeverity) {
    DiagnosticSink sink;
    sink.add(Severity::kWarning, {"a.php", 1}, "w");
    sink.add(Severity::kError, {"a.php", 2}, "e");
    sink.add(Severity::kFatal, {"b.php", 3}, "f");
    EXPECT_EQ(sink.count(Severity::kWarning), 1);
    EXPECT_EQ(sink.count(Severity::kError), 1);
    EXPECT_EQ(sink.count(Severity::kFatal), 1);
    EXPECT_TRUE(sink.has_fatal());
}

TEST(DiagnosticsTest, FailedFilesUniqued) {
    DiagnosticSink sink;
    sink.add(Severity::kFatal, {"a.php", 1}, "x");
    sink.add(Severity::kFatal, {"a.php", 9}, "y");
    sink.add(Severity::kFatal, {"b.php", 2}, "z");
    sink.add(Severity::kError, {"c.php", 3}, "not fatal");
    const auto failed = sink.failed_files();
    ASSERT_EQ(failed.size(), 2u);
    EXPECT_EQ(failed[0], "a.php");
    EXPECT_EQ(failed[1], "b.php");
}

TEST(StringsTest, AsciiLower) {
    EXPECT_EQ(ascii_lower("MySQLQuery"), "mysqlquery");
    EXPECT_EQ(ascii_lower(""), "");
}

TEST(StringsTest, IEquals) {
    EXPECT_TRUE(iequals("WPDB", "wpdb"));
    EXPECT_TRUE(iequals("", ""));
    EXPECT_FALSE(iequals("a", "ab"));
    EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(StringsTest, StartsEndsWith) {
    EXPECT_TRUE(starts_with("includes/utils.php", "includes/"));
    EXPECT_FALSE(starts_with("a", "ab"));
    EXPECT_TRUE(ends_with("includes/utils.php", ".php"));
    EXPECT_FALSE(ends_with(".php", "x.php"));
}

TEST(StringsTest, SplitAndJoin) {
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join({"x", "y", "z"}, "::"), "x::y::z");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, Trim) {
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ReplaceAll) {
    EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replace_all("x", "", "y"), "x");
}

}  // namespace
}  // namespace phpsafe
