// Report-layer tests: metrics math, finding↔truth matching, Venn overlap,
// root-cause classification, inertia analysis and table rendering.
#include <gtest/gtest.h>

#include "report/inertia.h"
#include "report/matching.h"
#include "report/metrics.h"
#include "report/overlap.h"
#include "report/render.h"
#include "report/rootcause.h"

namespace phpsafe {
namespace {

using corpus::Family;
using corpus::SeededVuln;

Finding make_finding(VulnKind kind, const std::string& file, int line) {
    Finding f;
    f.kind = kind;
    f.location = {file, line};
    f.sink = "echo";
    f.variable = "$v";
    return f;
}

SeededVuln make_vuln(const std::string& id, VulnKind kind, const std::string& file,
                     int line, InputVector vector = InputVector::kGet,
                     bool carried = false, bool easy = false) {
    SeededVuln v;
    v.id = id;
    v.family = Family::kXssGetEcho;
    v.kind = kind;
    v.file = file;
    v.line = line;
    v.vector = vector;
    v.carried_over = carried;
    v.easy_exploit = easy;
    return v;
}

// -- metrics -----------------------------------------------------------------

TEST(MetricsTest, PrecisionRecallFscore) {
    ConfusionMetrics m{80, 20, 20};
    EXPECT_DOUBLE_EQ(m.precision(), 0.8);
    EXPECT_DOUBLE_EQ(m.recall(), 0.8);
    EXPECT_DOUBLE_EQ(m.f_score(), 0.8);
}

TEST(MetricsTest, UndefinedWhenNoPositives) {
    ConfusionMetrics m{0, 0, 5};
    EXPECT_LT(m.precision(), 0.0);
    EXPECT_DOUBLE_EQ(m.recall(), 0.0);
    EXPECT_LT(m.f_score(), 0.0);
}

TEST(MetricsTest, PerfectTool) {
    ConfusionMetrics m{10, 0, 0};
    EXPECT_DOUBLE_EQ(m.precision(), 1.0);
    EXPECT_DOUBLE_EQ(m.recall(), 1.0);
    EXPECT_DOUBLE_EQ(m.f_score(), 1.0);
}

TEST(MetricsTest, FormatPct) {
    EXPECT_EQ(format_pct(0.834), "83%");
    EXPECT_EQ(format_pct(1.0), "100%");
    EXPECT_EQ(format_pct(-1.0), "-");
    EXPECT_EQ(format_pct(0.005), "1%");
}

TEST(MetricsTest, PaperStyleFalseNegatives) {
    std::map<std::string, std::set<std::string>> detected;
    detected["A"] = {"v1", "v2", "v3"};
    detected["B"] = {"v2", "v4"};
    detected["C"] = {};
    const auto fn = paper_style_false_negatives(detected);
    EXPECT_EQ(fn.at("A"), 1);  // misses v4
    EXPECT_EQ(fn.at("B"), 2);  // misses v1, v3
    EXPECT_EQ(fn.at("C"), 4);  // misses all
}

// -- matching ----------------------------------------------------------------

TEST(MatchingTest, ExactMatchIsTruePositive) {
    std::vector<Finding> findings = {make_finding(VulnKind::kXss, "a.php", 10)};
    std::vector<SeededVuln> truth = {make_vuln("v1", VulnKind::kXss, "a.php", 10)};
    const MatchResult r = match_findings(findings, truth);
    EXPECT_EQ(r.tp(), 1);
    EXPECT_EQ(r.fp(), 0);
    EXPECT_EQ(r.fn_oracle(), 0);
    EXPECT_TRUE(r.detected_ids.count("v1"));
}

TEST(MatchingTest, WrongLineIsFalsePositive) {
    std::vector<Finding> findings = {make_finding(VulnKind::kXss, "a.php", 11)};
    std::vector<SeededVuln> truth = {make_vuln("v1", VulnKind::kXss, "a.php", 10)};
    const MatchResult r = match_findings(findings, truth);
    EXPECT_EQ(r.tp(), 0);
    EXPECT_EQ(r.fp(), 1);
    EXPECT_EQ(r.fn_oracle(), 1);
}

TEST(MatchingTest, WrongKindIsFalsePositive) {
    std::vector<Finding> findings = {make_finding(VulnKind::kSqli, "a.php", 10)};
    std::vector<SeededVuln> truth = {make_vuln("v1", VulnKind::kXss, "a.php", 10)};
    const MatchResult r = match_findings(findings, truth);
    EXPECT_EQ(r.tp(), 0);
    EXPECT_EQ(r.fp(), 1);
}

TEST(MatchingTest, KindFilterRestricts) {
    std::vector<Finding> findings = {make_finding(VulnKind::kXss, "a.php", 10),
                                     make_finding(VulnKind::kSqli, "b.php", 5)};
    std::vector<SeededVuln> truth = {make_vuln("v1", VulnKind::kXss, "a.php", 10),
                                     make_vuln("v2", VulnKind::kSqli, "b.php", 5)};
    const MatchResult xss = match_findings(findings, truth, VulnKind::kXss);
    EXPECT_EQ(xss.tp(), 1);
    const MatchResult sqli = match_findings(findings, truth, VulnKind::kSqli);
    EXPECT_EQ(sqli.tp(), 1);
}

TEST(MatchingTest, MissedVulnIsOracleFalseNegative) {
    std::vector<Finding> findings;
    std::vector<SeededVuln> truth = {make_vuln("v1", VulnKind::kXss, "a.php", 10)};
    const MatchResult r = match_findings(findings, truth);
    EXPECT_EQ(r.fn_oracle(), 1);
    ASSERT_EQ(r.missed.size(), 1u);
    EXPECT_EQ(r.missed[0]->id, "v1");
}

// -- overlap -----------------------------------------------------------------

TEST(OverlapTest, DisjointSets) {
    std::map<std::string, std::set<std::string>> detected;
    detected["A"] = {"1", "2"};
    detected["B"] = {"3"};
    detected["C"] = {"4", "5", "6"};
    const VennRegions r = compute_overlap(detected);
    EXPECT_EQ(r.union_size, 6);
    EXPECT_EQ(r.only_a, 2);
    EXPECT_EQ(r.only_b, 1);
    EXPECT_EQ(r.only_c, 3);
    EXPECT_EQ(r.abc, 0);
}

TEST(OverlapTest, FullOverlap) {
    std::map<std::string, std::set<std::string>> detected;
    detected["A"] = {"1", "2"};
    detected["B"] = {"1", "2"};
    detected["C"] = {"1", "2"};
    const VennRegions r = compute_overlap(detected);
    EXPECT_EQ(r.union_size, 2);
    EXPECT_EQ(r.abc, 2);
    EXPECT_EQ(r.only_a + r.only_b + r.only_c + r.ab + r.ac + r.bc, 0);
}

TEST(OverlapTest, PairwiseRegions) {
    std::map<std::string, std::set<std::string>> detected;
    detected["A"] = {"1", "2", "3"};
    detected["B"] = {"2", "3", "4"};
    detected["C"] = {"3"};
    const VennRegions r = compute_overlap(detected);
    EXPECT_EQ(r.union_size, 4);
    EXPECT_EQ(r.abc, 1);   // "3"
    EXPECT_EQ(r.ab, 1);    // "2"
    EXPECT_EQ(r.only_a, 1);
    EXPECT_EQ(r.only_b, 1);
    EXPECT_EQ(r.total("A"), 3);
    EXPECT_EQ(r.total("B"), 3);
    EXPECT_EQ(r.total("C"), 1);
}

TEST(OverlapTest, RenderMentionsAllRegions) {
    std::map<std::string, std::set<std::string>> detected;
    detected["phpSAFE"] = {"1"};
    detected["RIPS"] = {"1"};
    detected["Pixy"] = {};
    const std::string text = render_overlap(compute_overlap(detected));
    EXPECT_NE(text.find("phpSAFE"), std::string::npos);
    EXPECT_NE(text.find("union"), std::string::npos);
}

// -- root cause ---------------------------------------------------------------

TEST(RootCauseTest, VectorGroupMapping) {
    EXPECT_EQ(vector_group(InputVector::kPost), VectorGroup::kPost);
    EXPECT_EQ(vector_group(InputVector::kGet), VectorGroup::kGet);
    EXPECT_EQ(vector_group(InputVector::kCookie), VectorGroup::kPostGetCookie);
    EXPECT_EQ(vector_group(InputVector::kRequest), VectorGroup::kPostGetCookie);
    EXPECT_EQ(vector_group(InputVector::kDatabase), VectorGroup::kDatabase);
    EXPECT_EQ(vector_group(InputVector::kFile), VectorGroup::kFileFunctionArray);
    EXPECT_EQ(vector_group(InputVector::kFunction), VectorGroup::kFileFunctionArray);
}

TEST(RootCauseTest, ClassifiesDetectedOnly) {
    std::vector<SeededVuln> t2012 = {
        make_vuln("a", VulnKind::kXss, "f.php", 1, InputVector::kGet),
        make_vuln("b", VulnKind::kXss, "f.php", 2, InputVector::kDatabase),
    };
    std::vector<SeededVuln> t2014 = {
        make_vuln("a", VulnKind::kXss, "f.php", 1, InputVector::kGet),
        make_vuln("c", VulnKind::kXss, "f.php", 3, InputVector::kPost),
    };
    const VectorTable table = classify_vectors(t2012, t2014, {"a"}, {"a", "c"});
    EXPECT_EQ(table.v2012.at(VectorGroup::kGet), 1);
    EXPECT_EQ(table.v2012.count(VectorGroup::kDatabase), 0u);  // "b" undetected
    EXPECT_EQ(table.v2014.at(VectorGroup::kPost), 1);
    EXPECT_EQ(table.both.at(VectorGroup::kGet), 1);  // "a" in both
    EXPECT_EQ(table.both.count(VectorGroup::kPost), 0u);
}

// -- inertia -------------------------------------------------------------------

TEST(InertiaTest, CountsCarriedAndEasy) {
    std::vector<SeededVuln> truth = {
        make_vuln("a", VulnKind::kXss, "f.php", 1, InputVector::kGet, true, true),
        make_vuln("b", VulnKind::kXss, "f.php", 2, InputVector::kDatabase, true,
                  false),
        make_vuln("c", VulnKind::kXss, "f.php", 3, InputVector::kGet, false, true),
    };
    const InertiaReport r = analyze_inertia(truth, {"a", "b", "c"});
    EXPECT_EQ(r.total_2014, 3);
    EXPECT_EQ(r.carried_from_2012, 2);
    EXPECT_EQ(r.carried_easy_exploit, 1);
    EXPECT_NEAR(r.carried_fraction(), 2.0 / 3, 1e-9);
    EXPECT_NEAR(r.easy_fraction_of_carried(), 0.5, 1e-9);
}

TEST(InertiaTest, UndetectedVulnsExcluded) {
    std::vector<SeededVuln> truth = {
        make_vuln("a", VulnKind::kXss, "f.php", 1, InputVector::kGet, true, true),
    };
    const InertiaReport r = analyze_inertia(truth, {});
    EXPECT_EQ(r.total_2014, 0);
    EXPECT_EQ(r.carried_from_2012, 0);
}

// -- render ---------------------------------------------------------------------

TEST(RenderTest, AlignsColumns) {
    TextTable table;
    table.add_row({"Tool", "TP"});
    table.add_row({"phpSAFE", "315"});
    table.add_row({"Pixy", "50"});
    const std::string text = table.to_string();
    EXPECT_NE(text.find("| Tool    | TP  |"), std::string::npos);
    EXPECT_NE(text.find("| phpSAFE | 315 |"), std::string::npos);
    EXPECT_NE(text.find("| Pixy    | 50  |"), std::string::npos);
}

TEST(RenderTest, EmptyTableRendersEmpty) {
    TextTable table;
    EXPECT_TRUE(table.to_string().empty());
}

// -- finding --------------------------------------------------------------------

TEST(FindingTest, DedupRemovesDuplicates) {
    std::vector<Finding> findings = {make_finding(VulnKind::kXss, "a.php", 5),
                                     make_finding(VulnKind::kXss, "a.php", 5),
                                     make_finding(VulnKind::kSqli, "a.php", 5)};
    deduplicate(findings);
    EXPECT_EQ(findings.size(), 2u);
}

TEST(FindingTest, DedupSortsByLocation) {
    std::vector<Finding> findings = {make_finding(VulnKind::kXss, "b.php", 9),
                                     make_finding(VulnKind::kXss, "a.php", 5),
                                     make_finding(VulnKind::kXss, "a.php", 2)};
    deduplicate(findings);
    ASSERT_EQ(findings.size(), 3u);
    EXPECT_EQ(findings[0].location.line, 2);
    EXPECT_EQ(findings[1].location.line, 5);
    EXPECT_EQ(findings[2].location.file, "b.php");
}

TEST(FindingTest, CountByKind) {
    AnalysisResult r;
    r.findings = {make_finding(VulnKind::kXss, "a.php", 1),
                  make_finding(VulnKind::kXss, "a.php", 2),
                  make_finding(VulnKind::kSqli, "a.php", 3)};
    EXPECT_EQ(r.count(VulnKind::kXss), 2);
    EXPECT_EQ(r.count(VulnKind::kSqli), 1);
}

}  // namespace
}  // namespace phpsafe
