// Tests for the run-statistics API (paper §III.D reviewer data) and the
// generic AST walkers in php/walk.h.
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/parser.h"
#include "php/project.h"
#include "php/walk.h"

namespace phpsafe {
namespace {

AnalysisResult analyze(const std::string& code) {
    php::Project project("stats");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    return Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
}

TEST(StatsTest, CountsFunctionsSummarized) {
    const auto r = analyze(
        "<?php function a() {} function b() {} class C { public function m() {} }\n"
        "a(); b();");
    EXPECT_EQ(r.stats.functions_summarized, 3);  // a, b, C::m (uncalled pass)
    EXPECT_EQ(r.stats.uncalled_functions, 1);    // C::m
}

TEST(StatsTest, CountsSinkChecksAndSources) {
    const auto r = analyze(
        "<?php echo $_GET['a']; echo 'safe'; echo $_POST['b'];");
    EXPECT_EQ(r.stats.sink_checks, 3);
    EXPECT_EQ(r.stats.sources_seen, 2);
}

TEST(StatsTest, CountsIncludesFollowed) {
    php::Project project("inc");
    project.add_file("main.php", "<?php include 'x.php'; include 'y.php';");
    project.add_file("x.php", "<?php $a = 1;");
    project.add_file("y.php", "<?php $b = 2;");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    const AnalysisResult r =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
    // main includes x and y; when x / y run as entries no further includes.
    EXPECT_EQ(r.stats.includes_followed, 2);
}

TEST(StatsTest, TracksVariableSlots) {
    const auto r = analyze("<?php $a = 1; $b = 2; $c = 3;");
    EXPECT_GE(r.stats.variables_tracked, 3);
}

TEST(StatsTest, StatsResetBetweenRuns) {
    php::Project project("reset");
    project.add_file("main.php", "<?php echo $_GET['x'];");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    const Analyzer analyzer = Analyzer::borrowing(tool.kb, tool.options);
    const auto r1 = analyzer.scan(project).result;
    const auto r2 = analyzer.scan(project).result;
    EXPECT_EQ(r1.stats.sink_checks, r2.stats.sink_checks);
    EXPECT_EQ(r1.stats.sources_seen, r2.stats.sources_seen);
}

// -- walkers -------------------------------------------------------------------

php::FileUnit parse_unit(const std::string& code) {
    // The returned unit's nodes and name views live in the arena/source, so
    // both must outlive the caller's use; keep the latest pair alive.
    static phpsafe::SourceFile* file = nullptr;
    static phpsafe::Arena* arena = nullptr;
    delete file;
    delete arena;
    file = new phpsafe::SourceFile("w.php", code);
    arena = new phpsafe::Arena();
    DiagnosticSink sink;
    php::Parser parser(*file, *arena, sink);
    return parser.parse();
}

TEST(WalkTest, VisitsAllExpressions) {
    const auto unit = parse_unit("<?php $a = $b + f($c, $d->e);");
    int variables = 0, calls = 0, props = 0;
    for (const php::StmtPtr& s : unit.statements) {
        php::walk_stmt(
            *s,
            [&](const php::Expr& e) {
                if (e.kind == php::NodeKind::kVariable) ++variables;
                if (e.kind == php::NodeKind::kFunctionCall) ++calls;
                if (e.kind == php::NodeKind::kPropertyAccess) ++props;
            },
            [](const php::Stmt&) {});
    }
    EXPECT_EQ(variables, 4);  // $a, $b, $c, $d
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(props, 1);
}

TEST(WalkTest, VisitsNestedStatements) {
    const auto unit = parse_unit(
        "<?php if ($a) { while ($b) { echo $c; } } else { foreach ($d as $e) {} }");
    int stmts = 0;
    for (const php::StmtPtr& s : unit.statements)
        php::walk_stmt(*s, [](const php::Expr&) {},
                       [&](const php::Stmt&) { ++stmts; });
    // if, block, while, block, echo, block, foreach, block
    EXPECT_EQ(stmts, 8);
}

TEST(WalkTest, DescendsIntoFunctionsAndClasses) {
    const auto unit = parse_unit(
        "<?php class C { public function m() { echo $this->x; } }\n"
        "function f() { return $_GET['q']; }");
    int echo_count = 0, superglobal = 0;
    for (const php::StmtPtr& s : unit.statements) {
        php::walk_stmt(
            *s,
            [&](const php::Expr& e) {
                if (e.kind == php::NodeKind::kVariable &&
                    static_cast<const php::Variable&>(e).name == "$_GET")
                    ++superglobal;
            },
            [&](const php::Stmt& st) {
                if (st.kind == php::NodeKind::kEchoStmt) ++echo_count;
            });
    }
    EXPECT_EQ(echo_count, 1);
    EXPECT_EQ(superglobal, 1);
}

TEST(WalkTest, DescendsIntoClosures) {
    const auto unit = parse_unit(
        "<?php $f = function () { echo $_POST['x']; };");
    int superglobal = 0;
    for (const php::StmtPtr& s : unit.statements)
        php::walk_stmt(
            *s,
            [&](const php::Expr& e) {
                if (e.kind == php::NodeKind::kVariable &&
                    static_cast<const php::Variable&>(e).name == "$_POST")
                    ++superglobal;
            },
            [](const php::Stmt&) {});
    EXPECT_EQ(superglobal, 1);
}

}  // namespace
}  // namespace phpsafe
