// Golden reproduction test: pins the full-scale Table I headline numbers
// this repository reproduces exactly (see EXPERIMENTS.md). If a change to
// the engine, the knowledge base or the corpus moves any of these, this
// test fails — the reproduction contract is part of the test suite.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "report/evaluation.h"
#include "service/ndjson.h"

namespace phpsafe {
namespace {

class GoldenReproduction : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        evaluation_ = new Evaluation(
            run_corpus_evaluation(paper_tool_set(), EvaluationOptions{}));
    }
    static void TearDownTestSuite() {
        delete evaluation_;
        evaluation_ = nullptr;
    }
    static const EvaluationStats& stats(const char* version, const char* tool) {
        return evaluation_->stats.at(version).at(tool);
    }
    static Evaluation* evaluation_;
};

Evaluation* GoldenReproduction::evaluation_ = nullptr;

TEST_F(GoldenReproduction, GlobalTruePositivesMatchPaperExactly) {
    // Paper Table I global TP row: phpSAFE 315/387, RIPS 134/304.
    EXPECT_EQ(stats("2012", "phpSAFE").tp, 315);
    EXPECT_EQ(stats("2014", "phpSAFE").tp, 387);
    EXPECT_EQ(stats("2012", "RIPS").tp, 134);
    EXPECT_EQ(stats("2014", "RIPS").tp, 304);
}

TEST_F(GoldenReproduction, PixyInPaperRange) {
    // Paper: 50/20. Calibration keeps it within a few counts.
    EXPECT_NEAR(stats("2012", "Pixy").tp, 50, 10);
    EXPECT_NEAR(stats("2014", "Pixy").tp, 20, 8);
}

TEST_F(GoldenReproduction, FalsePositivesNearPaper) {
    EXPECT_NEAR(stats("2012", "phpSAFE").fp, 65, 5);
    EXPECT_NEAR(stats("2014", "phpSAFE").fp, 62, 5);
    EXPECT_NEAR(stats("2012", "RIPS").fp, 79, 5);
    EXPECT_NEAR(stats("2014", "RIPS").fp, 79, 5);
    EXPECT_NEAR(stats("2012", "Pixy").fp, 187, 15);
    EXPECT_NEAR(stats("2014", "Pixy").fp, 208, 15);
}

TEST_F(GoldenReproduction, SqliOnlyPhpSafe) {
    // Paper: phpSAFE SQLi TP 8 (2012) / 9 (2014); RIPS and Pixy 0.
    EXPECT_EQ(stats("2012", "phpSAFE").tp_sqli, 8);
    EXPECT_EQ(stats("2014", "phpSAFE").tp_sqli, 9);
    EXPECT_EQ(stats("2012", "RIPS").tp_sqli, 0);
    EXPECT_EQ(stats("2014", "RIPS").tp_sqli, 0);
    EXPECT_EQ(stats("2012", "Pixy").tp_sqli, 0);
    EXPECT_EQ(stats("2014", "Pixy").tp_sqli, 0);
}

TEST_F(GoldenReproduction, OopVulnerabilitiesMatchPaperExactly) {
    // Paper §V.A: 151 (2012) / 179 (2014) OOP vulns, phpSAFE only.
    EXPECT_EQ(stats("2012", "phpSAFE").tp_oop, 151);
    EXPECT_EQ(stats("2014", "phpSAFE").tp_oop, 179);
    EXPECT_EQ(stats("2012", "RIPS").tp_oop, 0);
    EXPECT_EQ(stats("2012", "Pixy").tp_oop, 0);
}

TEST_F(GoldenReproduction, UnionMatchesFig2Exactly) {
    // Paper Fig. 2: 394 distinct vulnerabilities in 2012, 586 in 2014.
    EXPECT_EQ(evaluation_->union_detected("2012").size(), 394u);
    EXPECT_EQ(evaluation_->union_detected("2014").size(), 586u);
}

TEST_F(GoldenReproduction, RobustnessMatchesPaperExactly) {
    // Paper §V.E: phpSAFE failed 1 file (2012) / 3 (2014); RIPS none.
    EXPECT_EQ(stats("2012", "phpSAFE").files_failed, 1);
    EXPECT_EQ(stats("2014", "phpSAFE").files_failed, 3);
    EXPECT_EQ(stats("2012", "RIPS").files_failed, 0);
    EXPECT_EQ(stats("2014", "RIPS").files_failed, 0);
    EXPECT_GT(stats("2012", "Pixy").files_failed, 30);
}

TEST_F(GoldenReproduction, CorpusVitals) {
    EXPECT_EQ(evaluation_->corpus.plugins.size(), 35u);
    EXPECT_EQ(evaluation_->truth.at("2012").size(), 394u);
    EXPECT_EQ(evaluation_->truth.at("2014").size(), 586u);
}

// -- NDJSON protocol transcript ----------------------------------------------

// Drives the phpsafe_serve protocol (service/ndjson.h) with the scripted
// session checked in at tests/golden/ndjson_session.in and compares every
// response line against the checked-in transcript. Covers scan (cold +
// result-cache hit + rips preset), stats before/after clear, malformed
// JSON, unknown ops, and quit. Regenerate the fixture after an intentional
// protocol change with:
//   ./build/tools/phpsafe_serve --deterministic
//     < tests/golden/ndjson_session.in > tests/golden/ndjson_session.out
// (one command; wrapped here for line length)
void expect_transcript_matches(const std::string& stem) {
    const std::string dir = PHPSAFE_GOLDEN_DIR;
    std::ifstream script(dir + "/" + stem + ".in", std::ios::binary);
    std::ifstream expected(dir + "/" + stem + ".out", std::ios::binary);
    ASSERT_TRUE(script) << "missing " << dir << "/" << stem << ".in";
    ASSERT_TRUE(expected) << "missing " << dir << "/" << stem << ".out";

    std::ostringstream actual;
    service::ServeOptions options;
    options.deterministic = true;
    service::serve_ndjson(script, actual, options);

    std::istringstream got(actual.str());
    std::string want_line, got_line;
    int line_no = 0;
    while (std::getline(expected, want_line)) {
        ++line_no;
        ASSERT_TRUE(std::getline(got, got_line))
            << "response ended early at transcript line " << line_no;
        EXPECT_EQ(got_line, want_line) << "transcript line " << line_no;
    }
    EXPECT_FALSE(std::getline(got, got_line))
        << "extra response beyond the transcript: " << got_line;
}

TEST(GoldenNdjsonProtocol, SessionTranscriptMatches) {
    expect_transcript_matches("ndjson_session");
}

// The watch-mode transcript: edit before watch, open, delta after a
// sanitizer regression, graph analytics (± detail), a new-file edit, a
// mixed upsert+remove batch, the error shapes (unknown remove target,
// unknown key, slot on watch), and a standalone graph payload with a
// self-include cycle and a dead file. Regenerate like ndjson_session.
TEST(GoldenNdjsonProtocol, WatchTranscriptMatches) {
    expect_transcript_matches("ndjson_watch");
}

// The validate-op transcript: scan + payload validate (tiers, quickfixes,
// confidence in the report), the validate-cache replay on a byte-identical
// request, the strict error shapes (unknown key, stray keys without a
// payload, no open session), and session-aware validate against an open
// watch. Regenerate like ndjson_session.
TEST(GoldenNdjsonProtocol, ValidateTranscriptMatches) {
    expect_transcript_matches("ndjson_validate");
}

}  // namespace
}  // namespace phpsafe
