// Second wave of lexer/parser tests: edge constructs from real plugin code
// — template mixing, odd operators, nested structures, magic constants,
// casts vs parens, and precedence corners.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "php/lexer.h"
#include "php/parser.h"
#include "util/source.h"

namespace phpsafe::php {
namespace {

/// Owns the source text and arena a parsed unit's nodes point into; kept
/// alive for the whole test run so returned FileUnits never dangle.
struct ParseKeeper {
    explicit ParseKeeper(std::string code)
        : file("edge.php", std::move(code)) {}
    SourceFile file;
    Arena arena;
};

FileUnit parse(const std::string& code) {
    static std::vector<std::unique_ptr<ParseKeeper>> keepers;
    keepers.push_back(std::make_unique<ParseKeeper>(code));
    ParseKeeper& k = *keepers.back();
    DiagnosticSink sink;
    Parser parser(k.file, k.arena, sink);
    return parser.parse();
}

std::string first_stmt(const std::string& code) {
    FileUnit unit = parse("<?php " + code);
    if (unit.statements.empty()) return "<none>";
    return dump(*unit.statements.front());
}

TEST(ParserEdgeTest, NestedTernary) {
    EXPECT_EQ(first_stmt("$x = $a ? 1 : ($b ? 2 : 3);"),
              "(= $x (?: $a 1 (?: $b 2 3)))");
}

TEST(ParserEdgeTest, ChainedMethodCalls) {
    EXPECT_EQ(first_stmt("$db->table('x')->where($c)->get();"),
              "(mcall (mcall (mcall $db table \"x\") where $c) get)");
}

TEST(ParserEdgeTest, ArrayAccessOnMethodResult) {
    EXPECT_EQ(first_stmt("$v = $o->rows()[0];"),
              "(= $v (index (mcall $o rows) 0))");
}

TEST(ParserEdgeTest, NewInParenthesesThenMethod) {
    EXPECT_EQ(first_stmt("$v = (new Widget())->render();"),
              "(= $v (mcall (new Widget) render))");
}

TEST(ParserEdgeTest, NegativeNumbersAndUnaryChains) {
    EXPECT_EQ(first_stmt("$x = -1 + - $y;"), "(= $x (+ (- 1) (- $y)))");
    EXPECT_EQ(first_stmt("$b = !!$a;"), "(= $b (! (! $a)))");
}

TEST(ParserEdgeTest, PowerIsRightAssociative) {
    EXPECT_EQ(first_stmt("$x = 2 ** 3 ** 2;"), "(= $x (** 2 (** 3 2)))");
}

TEST(ParserEdgeTest, CoalesceIsRightAssociative) {
    EXPECT_EQ(first_stmt("$x = $a ?? $b ?? 'd';"),
              "(= $x (?? $a (?? $b \"d\")))");
}

TEST(ParserEdgeTest, ConcatChainsLeftAssociative) {
    EXPECT_EQ(first_stmt("$s = 'a' . 'b' . 'c';"),
              "(= $s (. (. \"a\" \"b\") \"c\"))");
}

TEST(ParserEdgeTest, CastBindsTighterThanConcat) {
    EXPECT_EQ(first_stmt("$s = (int) $a . 'x';"),
              "(= $s (. (cast int $a) \"x\"))");
}

TEST(ParserEdgeTest, ParenthesizedExpressionNotCast) {
    // (int) is a cast; ($int) is a parenthesized variable read... and
    // (intval) would be a constant, not a cast.
    EXPECT_EQ(first_stmt("$x = (5);"), "(= $x 5)");
}

TEST(ParserEdgeTest, MagicConstantsAreConstants) {
    EXPECT_EQ(first_stmt("$f = __FILE__;"), "(= $f \"\")");
}

TEST(ParserEdgeTest, KeywordAsMethodName) {
    // `list`, `print`, `unset` are valid method names after ->.
    EXPECT_EQ(first_stmt("$q->list();"), "(mcall $q list)");
    EXPECT_EQ(first_stmt("$q->print($x);"), "(mcall $q print $x)");
}

TEST(ParserEdgeTest, PropertyNamedLikeKeyword) {
    EXPECT_EQ(first_stmt("$v = $o->default;"), "(= $v (prop $o default))");
}

TEST(ParserEdgeTest, DynamicPropertyAccess) {
    EXPECT_EQ(first_stmt("$v = $o->$name;"), "(= $v (prop $o <dyn>))");
}

TEST(ParserEdgeTest, NestedArrayLiterals) {
    EXPECT_EQ(first_stmt("$a = array('k' => array(1, 2), 'j' => [3]);"),
              "(= $a (array [\"k\"]=(array 1 2) [\"j\"]=(array 3)))");
}

TEST(ParserEdgeTest, TrailingCommasAccepted) {
    EXPECT_EQ(first_stmt("$a = array(1, 2,);"), "(= $a (array 1 2))");
    EXPECT_EQ(first_stmt("f($x, $y,);"), "(call f $x $y)");
}

TEST(ParserEdgeTest, ByRefArgument) {
    EXPECT_EQ(first_stmt("preg_match($re, $s, $m);"),
              "(call preg_match $re $s $m)");
}

TEST(ParserEdgeTest, MultipleStatementsPerLine) {
    FileUnit unit = parse("<?php $a = 1; $b = 2; $c = 3;");
    EXPECT_EQ(unit.statements.size(), 3u);
}

TEST(ParserEdgeTest, EmptyClassAndFunction) {
    FileUnit unit = parse("<?php class Empty1 {} function empty2() {}");
    EXPECT_EQ(unit.statements.size(), 2u);
}

TEST(ParserEdgeTest, AbstractClassWithAbstractMethod) {
    FileUnit unit = parse(
        "<?php abstract class A { abstract public function run($x); }");
    const auto& cls = static_cast<const ClassDecl&>(*unit.statements[0]);
    EXPECT_TRUE(cls.is_abstract);
    ASSERT_EQ(cls.methods.size(), 1u);
    EXPECT_TRUE(cls.methods[0]->is_abstract);
    EXPECT_TRUE(cls.methods[0]->body.empty());
}

TEST(ParserEdgeTest, FinalClass) {
    FileUnit unit = parse("<?php final class F {}");
    EXPECT_TRUE(static_cast<const ClassDecl&>(*unit.statements[0]).is_final);
}

TEST(ParserEdgeTest, VarKeywordProperty) {
    FileUnit unit = parse("<?php class Old { var $legacy = 1; }");
    const auto& cls = static_cast<const ClassDecl&>(*unit.statements[0]);
    ASSERT_EQ(cls.properties.size(), 1u);
    EXPECT_EQ(cls.properties[0].visibility, "public");
}

TEST(ParserEdgeTest, MultiplePropertiesOneDeclaration) {
    FileUnit unit = parse("<?php class C { public $a, $b = 2, $c; }");
    const auto& cls = static_cast<const ClassDecl&>(*unit.statements[0]);
    EXPECT_EQ(cls.properties.size(), 3u);
}

TEST(ParserEdgeTest, ConstantsInClass) {
    FileUnit unit = parse("<?php class C { const A = 1, B = 'two'; }");
    const auto& cls = static_cast<const ClassDecl&>(*unit.statements[0]);
    EXPECT_EQ(cls.constants.size(), 2u);
}

TEST(ParserEdgeTest, DoWhileWithComplexBody) {
    EXPECT_EQ(first_stmt("do { $i++; } while ($i < 3);"),
              "(do (block (post++ $i)) (< $i 3))");
}

TEST(ParserEdgeTest, BreakContinueWithLevels) {
    FileUnit unit = parse("<?php while (1) { break 2; continue 1; }");
    EXPECT_EQ(unit.statements.size(), 1u);  // parsed without error
}

TEST(ParserEdgeTest, GlobalThenUse) {
    EXPECT_EQ(first_stmt("global $wpdb;"), "(global $wpdb)");
}

TEST(ParserEdgeTest, StringOffsetOldSyntax) {
    EXPECT_EQ(first_stmt("$c = $s{0};"), "(= $c (index $s 0))");
}

TEST(ParserEdgeTest, SuppressedInclude) {
    EXPECT_EQ(first_stmt("@include 'x.php';"), "(@ (include \"x.php\"))");
}

TEST(ParserEdgeTest, CloneExpression) {
    EXPECT_EQ(first_stmt("$b = clone $a;"), "(= $b (call clone $a))");
}

TEST(ParserEdgeTest, InstanceofInCondition) {
    EXPECT_EQ(first_stmt("if ($e instanceof WP_Error) { log_it($e); }"),
              "(if (instanceof $e WP_Error) (block (call log_it $e)))");
}

TEST(ParserEdgeTest, ReturnWithoutValue) {
    EXPECT_EQ(first_stmt("function f() { return; }"),
              "(function f () (return))");
}

TEST(ParserEdgeTest, EchoBeforeCloseTagWithoutSemicolon) {
    // PHP allows omitting the final semicolon before ?>.
    FileUnit unit = parse("<?php echo $x ?>");
    ASSERT_EQ(unit.statements.size(), 1u);
    EXPECT_EQ(dump(*unit.statements[0]), "(echo $x)");
}

TEST(ParserEdgeTest, HtmlBetweenCases) {
    FileUnit unit = parse(
        "<?php switch ($t) { case 1: ?><b>one</b><?php break; }");
    ASSERT_EQ(unit.statements.size(), 1u);
    EXPECT_EQ(unit.statements[0]->kind, NodeKind::kSwitchStmt);
}

TEST(ParserEdgeTest, NamespacedFunctionCall) {
    EXPECT_EQ(first_stmt("\\Acme\\Util\\render($x);"),
              "(call \\Acme\\Util\\render $x)");
}

TEST(ParserEdgeTest, ClosureImmediatelyInvoked) {
    EXPECT_EQ(first_stmt("$r = (function ($x) { return $x; })(5);"),
              "(= $r (call <expr> 5))");
}

TEST(LexerEdgeTest, DollarBraceInterpolation) {
    SourceFile file("t.php", "<?php \"pre ${name} post\";");
    DiagnosticSink sink;
    Arena arena;
    Lexer lexer(file, arena, sink);
    const auto tokens = lexer.tokenize();
    ASSERT_TRUE(tokens[1].has_interpolation());
    EXPECT_EQ(tokens[1].parts[1].text, "$name");
}

TEST(LexerEdgeTest, ConsecutiveInterpolations) {
    SourceFile file("t.php", "<?php \"$a$b\";");
    DiagnosticSink sink;
    Arena arena;
    Lexer lexer(file, arena, sink);
    const auto tokens = lexer.tokenize();
    ASSERT_EQ(tokens[1].parts.size(), 2u);
    EXPECT_EQ(tokens[1].parts[0].text, "$a");
    EXPECT_EQ(tokens[1].parts[1].text, "$b");
}

TEST(LexerEdgeTest, DollarWithoutNameIsLiteral) {
    SourceFile file("t.php", "<?php \"costs $5\";");
    DiagnosticSink sink;
    Arena arena;
    Lexer lexer(file, arena, sink);
    const auto tokens = lexer.tokenize();
    EXPECT_FALSE(tokens[1].has_interpolation());
    EXPECT_EQ(tokens[1].value, "costs $5");
}

TEST(LexerEdgeTest, WindowsLineEndings) {
    SourceFile file("t.php", "<?php\r\n$a = 1;\r\n$b = 2;\r\n");
    DiagnosticSink sink;
    Arena arena;
    Lexer lexer(file, arena, sink);
    const auto tokens = lexer.tokenize();
    EXPECT_EQ(tokens[1].text, "$a");
    EXPECT_EQ(tokens[1].line, 2);
}

// -- adversarial inputs the byte fuzzer surfaces first ----------------------

/// Parses with default options and returns the collected diagnostics.
std::vector<Diagnostic> parse_diags(const std::string& code,
                                    ParserOptions options = {}) {
    SourceFile file("edge.php", code);
    DiagnosticSink sink;
    Arena arena;
    Parser parser(file, arena, sink, options);
    (void)parser.parse();
    return sink.diagnostics();
}

bool any_diag_contains(const std::vector<Diagnostic>& diags,
                       std::string_view needle) {
    for (const auto& d : diags)
        if (d.message.find(needle) != std::string::npos) return true;
    return false;
}

TEST(ParserEdgeTest, UnterminatedSingleQuoteAtEofDiagnosed) {
    EXPECT_TRUE(any_diag_contains(parse_diags("<?php $x = 'abc"),
                                  "unterminated string literal"));
}

TEST(ParserEdgeTest, UnterminatedDoubleQuoteAtEofDiagnosed) {
    EXPECT_TRUE(any_diag_contains(parse_diags("<?php echo \"hello $name"),
                                  "unterminated string literal"));
}

TEST(ParserEdgeTest, UnterminatedHeredocAtEofDiagnosed) {
    EXPECT_TRUE(any_diag_contains(parse_diags("<?php $x = <<<EOT\nbody text"),
                                  "unterminated heredoc"));
}

TEST(ParserEdgeTest, UnterminatedBlockCommentAtEofDiagnosed) {
    EXPECT_TRUE(any_diag_contains(parse_diags("<?php $a = 1; /* trailing"),
                                  "unterminated block comment"));
}

TEST(ParserEdgeTest, NulBytesDoNotAbortParsing) {
    std::string code = "<?php $a = 1; ";
    code.push_back('\0');
    code += " $b = 2;";
    const FileUnit unit = parse(code);
    // Both assignments around the nul byte must survive.
    ASSERT_GE(unit.statements.size(), 2u);
}

TEST(ParserEdgeTest, NulByteInsideStringLiteralPreserved) {
    std::string code = "<?php $x = 'a";
    code.push_back('\0');
    code += "b';";
    const FileUnit unit = parse(code);
    ASSERT_EQ(unit.statements.size(), 1u);
}

TEST(ParserEdgeTest, DeepParenNestingEmitsRecursionDiagnostic) {
    std::string code = "<?php $x = ";
    for (int i = 0; i < 5000; ++i) code += '(';
    code += '1';
    for (int i = 0; i < 5000; ++i) code += ')';
    code += ';';
    const auto diags = parse_diags(code);
    EXPECT_TRUE(any_diag_contains(diags, "nesting deeper than"));
}

TEST(ParserEdgeTest, DeepUnaryChainEmitsRecursionDiagnostic) {
    std::string code = "<?php $x = ";
    code.append(5000, '!');
    code += "$y;";
    EXPECT_TRUE(any_diag_contains(parse_diags(code), "nesting deeper than"));
}

TEST(ParserEdgeTest, MaxDepthOptionIsConfigurable) {
    ParserOptions tight;
    tight.max_depth = 8;
    const std::string code = "<?php $x = ((((((1))))));";
    EXPECT_TRUE(any_diag_contains(parse_diags(code, tight),
                                  "nesting deeper than 8 levels"));
    // The default limit admits the same input without complaint.
    EXPECT_FALSE(any_diag_contains(parse_diags(code), "nesting deeper than"));
}

}  // namespace
}  // namespace phpsafe::php
