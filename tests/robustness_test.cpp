// Robustness / failure-injection tests: the analyzer must terminate and
// produce a result on arbitrary malformed input (paper §IV.A: "robustness
// is the ability to finish the analysis and produce a result... a tool
// must be able to analyze any given file and deliver the results in due
// time using a reasonable amount of resources").
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/parser.h"
#include "php/project.h"

namespace phpsafe {
namespace {

/// Analyzes arbitrary (possibly malformed) input; the assertion is simply
/// that we return rather than crash, hang, or blow the stack.
AnalysisResult analyze_garbage(const std::string& code) {
    php::Project project("garbage");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    return Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
}

class MalformedInputSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedInputSweep, TerminatesWithoutCrash) {
    const AnalysisResult r = analyze_garbage(GetParam());
    SUCCEED() << "findings: " << r.findings.size();
}

INSTANTIATE_TEST_SUITE_P(
    Fragments, MalformedInputSweep,
    ::testing::Values(
        "",
        "<?php",
        "<?php ;;;;;",
        "<?php $",
        "<?php $x =",
        "<?php $x = ;",
        "<?php if (",
        "<?php if ($a { echo $a; }",
        "<?php while",
        "<?php foreach ($a as) {}",
        "<?php function",
        "<?php function f(",
        "<?php function f($a {}",
        "<?php class",
        "<?php class C {",
        "<?php class C { public function }",
        "<?php class C extends {}",
        "<?php echo 'unterminated",
        "<?php echo \"unterminated $x",
        "<?php $x = <<<EOT\nnever closed",
        "<?php /* never closed",
        "<?php )))((( }{ ][",
        "<?php $a->;",
        "<?php $a->->b;",
        "<?php new;",
        "<?php X::;",
        "<?php echo $_GET[;",
        "<?php @@@@;",
        "<?php ?????;",
        "<?php $x = array(1, => 2);",
        "<?php switch ($x) { case }",
        "<?php try {} catch {}",
        "<?php global;",
        "<?php 0x 0b;",
        "<?php \xFF\xFE binary \x00 junk",
        "no php at all <b>html</b>",
        "<?php echo $_GET['x'] <?php echo $_GET['y'];"));

TEST(RobustnessTest, DeeplyNestedExpressionsTerminate) {
    std::string code = "<?php $x = ";
    for (int i = 0; i < 200; ++i) code += "(1 + ";
    code += "2";
    for (int i = 0; i < 200; ++i) code += ")";
    code += "; echo $x;";
    analyze_garbage(code);
    SUCCEED();
}

TEST(RobustnessTest, DeeplyNestedBlocksTerminate) {
    std::string code = "<?php ";
    for (int i = 0; i < 300; ++i) code += "if ($a) { ";
    code += "echo $_GET['x'];";
    for (int i = 0; i < 300; ++i) code += " }";
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_GE(r.findings.size(), 1u);
}

TEST(RobustnessTest, PathologicalNestingFailsTheFileNotTheProcess) {
    // 100k nested parens would overflow the stack without the parser's
    // recursion-depth limit; with it, the file is marked failed and the
    // analysis still returns a result.
    std::string code = "<?php $x = ";
    code.append(100000, '(');
    code += '1';
    code.append(100000, ')');
    code += ';';
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_EQ(r.files_failed, 1);
}

TEST(RobustnessTest, PathologicalBlockNestingFailsTheFileNotTheProcess) {
    std::string code = "<?php ";
    for (int i = 0; i < 50000; ++i) code += "if($a){";
    code += "echo 1;";
    for (int i = 0; i < 50000; ++i) code += '}';
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_EQ(r.files_failed, 1);
}

TEST(RobustnessTest, NulBytesInsideCodeStillFindTaint) {
    std::string code = "<?php echo $_GET['x']; ";
    code.push_back('\0');
    code += " echo $_GET['y'];";
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_GE(r.findings.size(), 2u);
}

TEST(RobustnessTest, LongConcatenationChain) {
    std::string code = "<?php $s = $_GET['x']";
    for (int i = 0; i < 2000; ++i) code += " . 'part'";
    code += "; echo $s;";
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(RobustnessTest, ManyVariablesManyFindings) {
    std::string code = "<?php\n";
    for (int i = 0; i < 500; ++i) {
        code += "$v" + std::to_string(i) + " = $_GET['k" + std::to_string(i) +
                "'];\n";
        code += "echo $v" + std::to_string(i) + ";\n";
    }
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_EQ(r.findings.size(), 500u);
}

TEST(RobustnessTest, MutualRecursionTerminates) {
    const AnalysisResult r = analyze_garbage(
        "<?php function a($x) { return b($x); }\n"
        "function b($x) { return a($x); }\n"
        "echo a($_GET['q']);");
    SUCCEED() << r.findings.size();
}

TEST(RobustnessTest, SelfIncludeDoesNotLoop) {
    php::Project project("loop");
    project.add_file("main.php", "<?php include 'main.php'; echo $_GET['x'];");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    const AnalysisResult r =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(RobustnessTest, MutualIncludesDoNotLoop) {
    php::Project project("loop");
    project.add_file("a.php", "<?php include 'b.php'; echo $_GET['a'];");
    project.add_file("b.php", "<?php include 'a.php'; echo $_GET['b'];");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    const AnalysisResult r =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
    EXPECT_EQ(r.findings.size(), 2u);
}

TEST(RobustnessTest, GiantFileCompletesQuickly) {
    std::string code = "<?php\n";
    for (int i = 0; i < 20000; ++i)
        code += "$line" + std::to_string(i % 97) + " = 'text';\n";
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_TRUE(r.findings.empty());
}

TEST(RobustnessTest, ErrorCapAbortsPathologicalFile) {
    std::string garbage = "<?php ";
    for (int i = 0; i < 500; ++i) garbage += ")( ";
    const AnalysisResult r = analyze_garbage(garbage);
    EXPECT_EQ(r.files_failed, 1);
}

// Found by phpsafe_fuzz (byte mutation, seed 2): a class whose property
// default `new`s its own class re-entered default initialization forever
// and blew the stack. Replayed from tests/fuzz_corpus/regressions/ too;
// this is the direct engine-level form.
TEST(RobustnessTest, SelfReferentialPropertyDefaultTerminates) {
    const AnalysisResult r = analyze_garbage(
        "<?php\n"
        "class C { public $p = new C(); }\n"
        "$o = new C();\n"
        "echo $_GET['x'];\n");
    EXPECT_EQ(r.files_failed, 0);
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(RobustnessTest, MutuallyRecursivePropertyDefaultsTerminate) {
    const AnalysisResult r = analyze_garbage(
        "<?php\n"
        "class A { public $p = new B(); }\n"
        "class B { public $q = new A(); }\n"
        "$o = new A();\n");
    EXPECT_EQ(r.files_failed, 0);
}

// Expressions nested beyond the engine's eval budget are truncated with a
// warning diagnostic instead of risking the process stack (engine frames
// are far larger than parser frames, especially under sanitizers).
TEST(RobustnessTest, EvalDepthBackstopTruncatesWithWarning) {
    std::string code = "<?php\n$x = ";
    const int depth = 450;  // parser admits this; engine truncates at 400
    for (int i = 0; i < depth; ++i) code += "!";
    code += "$_GET['q'];\n";
    const AnalysisResult r = analyze_garbage(code);
    EXPECT_EQ(r.files_failed, 0);
    bool warned = false;
    for (const Diagnostic& d : r.diagnostics)
        warned |= d.message.find("taint evaluation truncated") != std::string::npos;
    EXPECT_TRUE(warned);
}

TEST(RobustnessTest, AllToolsSurviveGarbageSweep) {
    const char* samples[] = {"<?php class {", "<?php $a->", "<?php if(((("};
    for (const Tool& tool :
         {make_phpsafe_tool(), make_rips_like_tool(), make_pixy_like_tool()}) {
        for (const char* code : samples) {
            php::Project project("g");
            project.add_file("main.php", code);
            DiagnosticSink sink;
            project.parse_all(sink);
            Analyzer::borrowing(tool.kb, tool.options).scan(project);
        }
    }
    SUCCEED();
}

}  // namespace
}  // namespace phpsafe
