// Knowledge-base tests: VulnSet algebra, lookup semantics (case folding,
// method wildcards), and the content of the three shipped profiles.
#include <gtest/gtest.h>

#include "config/knowledge.h"

namespace phpsafe {
namespace {

TEST(VulnSetTest, BasicAlgebra) {
    VulnSet s = kXssOnly;
    EXPECT_TRUE(s.contains(VulnKind::kXss));
    EXPECT_FALSE(s.contains(VulnKind::kSqli));
    s |= kSqliOnly;
    EXPECT_EQ(s, kBothVulns);
    s -= kXssOnly;
    EXPECT_EQ(s, kSqliOnly);
    EXPECT_TRUE((kXssOnly & kSqliOnly).empty());
    EXPECT_EQ(kXssOnly | kSqliOnly, VulnSet::all());
}

TEST(VulnSetTest, ToString) {
    EXPECT_EQ(to_string(kXssOnly), "XSS");
    EXPECT_EQ(to_string(kSqliOnly), "SQLi");
    EXPECT_EQ(to_string(kBothVulns), "XSS+SQLi");
    EXPECT_EQ(to_string(VulnSet::none()), "none");
}

TEST(KnowledgeBaseTest, FunctionLookupIsCaseInsensitive) {
    const KnowledgeBase kb = make_generic_php_kb();
    EXPECT_NE(kb.function("HTMLSpecialChars"), nullptr);
    EXPECT_NE(kb.function("MYSQL_QUERY"), nullptr);
    EXPECT_EQ(kb.function("no_such_function"), nullptr);
}

TEST(KnowledgeBaseTest, SuperglobalsRegistered) {
    const KnowledgeBase kb = make_generic_php_kb();
    const SuperglobalInfo* get = kb.superglobal("$_GET");
    ASSERT_NE(get, nullptr);
    EXPECT_EQ(get->vector, InputVector::kGet);
    EXPECT_EQ(get->taint, kBothVulns);
    ASSERT_NE(kb.superglobal("$_POST"), nullptr);
    ASSERT_NE(kb.superglobal("$_COOKIE"), nullptr);
    ASSERT_NE(kb.superglobal("$_REQUEST"), nullptr);
    ASSERT_NE(kb.superglobal("$_SERVER"), nullptr);
    // Variables are case-sensitive in PHP; $_get is not a superglobal.
    EXPECT_EQ(kb.superglobal("$_get"), nullptr);
}

TEST(KnowledgeBaseTest, SanitizerKindsAreSpecific) {
    const KnowledgeBase kb = make_generic_php_kb();
    const FunctionInfo* html = kb.function("htmlspecialchars");
    ASSERT_NE(html, nullptr);
    EXPECT_EQ(html->sanitizes, kXssOnly);
    const FunctionInfo* sql = kb.function("mysql_real_escape_string");
    ASSERT_NE(sql, nullptr);
    EXPECT_EQ(sql->sanitizes, kSqliOnly);
    const FunctionInfo* intval = kb.function("intval");
    ASSERT_NE(intval, nullptr);
    EXPECT_EQ(intval->sanitizes, kBothVulns);
}

TEST(KnowledgeBaseTest, RevertsRegistered) {
    const KnowledgeBase kb = make_generic_php_kb();
    const FunctionInfo* strip = kb.function("stripslashes");
    ASSERT_NE(strip, nullptr);
    EXPECT_EQ(strip->reverts, kSqliOnly);
    const FunctionInfo* decode = kb.function("html_entity_decode");
    ASSERT_NE(decode, nullptr);
    EXPECT_EQ(decode->reverts, kXssOnly);
}

TEST(KnowledgeBaseTest, QuerySinksAreAlsoSources) {
    // mysql_query: SQLi sink on the query argument, DB source on the result.
    const KnowledgeBase kb = make_generic_php_kb();
    const FunctionInfo* q = kb.function("mysql_query");
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(q->is_sink());
    EXPECT_EQ(q->sink_kinds, kSqliOnly);
    EXPECT_TRUE(q->is_source);
    EXPECT_EQ(q->source_vector, InputVector::kDatabase);
}

TEST(KnowledgeBaseTest, MethodWildcardFallback) {
    KnowledgeBase kb;
    FunctionInfo info;
    info.name = "get_results";
    info.is_source = true;
    kb.add_any_method(info);
    EXPECT_NE(kb.method("", "get_results"), nullptr);
    EXPECT_NE(kb.method("unknownclass", "get_results"), nullptr);
}

TEST(KnowledgeBaseTest, ClassSpecificMethodPreferred) {
    KnowledgeBase kb;
    FunctionInfo specific;
    specific.name = "query";
    specific.sink_kinds = kSqliOnly;
    kb.add_method("wpdb", specific);
    FunctionInfo generic;
    generic.name = "query";
    kb.add_any_method(generic);
    const FunctionInfo* found = kb.method("wpdb", "query");
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(found->is_sink());
    const FunctionInfo* fallback = kb.method("other", "query");
    ASSERT_NE(fallback, nullptr);
    EXPECT_FALSE(fallback->is_sink());
}

TEST(WordPressProfileTest, WpdbMethodsConfigured) {
    KnowledgeBase kb = make_generic_php_kb();
    add_wordpress_profile(kb);
    const FunctionInfo* gr = kb.method("wpdb", "get_results");
    ASSERT_NE(gr, nullptr);
    EXPECT_TRUE(gr->is_source);
    EXPECT_EQ(gr->source_vector, InputVector::kDatabase);
    EXPECT_TRUE(gr->is_sink());
    EXPECT_EQ(gr->sink_kinds, kSqliOnly);

    const FunctionInfo* prepare = kb.method("wpdb", "prepare");
    ASSERT_NE(prepare, nullptr);
    EXPECT_EQ(prepare->sanitizes, kSqliOnly);

    const std::string* cls = kb.known_global_class("$wpdb");
    ASSERT_NE(cls, nullptr);
    EXPECT_EQ(*cls, "wpdb");
}

TEST(WordPressProfileTest, EscapingApiConfigured) {
    KnowledgeBase kb = make_generic_php_kb();
    add_wordpress_profile(kb);
    for (const char* fn : {"esc_html", "esc_attr", "esc_js", "wp_kses_post"}) {
        const FunctionInfo* info = kb.function(fn);
        ASSERT_NE(info, nullptr) << fn;
        EXPECT_EQ(info->sanitizes, kXssOnly) << fn;
    }
    const FunctionInfo* stf = kb.function("sanitize_text_field");
    ASSERT_NE(stf, nullptr);
    EXPECT_EQ(stf->sanitizes, kBothVulns);
    const FunctionInfo* sql = kb.function("esc_sql");
    ASSERT_NE(sql, nullptr);
    EXPECT_EQ(sql->sanitizes, kSqliOnly);
}

TEST(WordPressProfileTest, OptionAccessorsAreDbSources) {
    KnowledgeBase kb = make_generic_php_kb();
    add_wordpress_profile(kb);
    for (const char* fn : {"get_option", "get_post_meta", "get_user_meta"}) {
        const FunctionInfo* info = kb.function(fn);
        ASSERT_NE(info, nullptr) << fn;
        EXPECT_TRUE(info->is_source) << fn;
        EXPECT_EQ(info->source_vector, InputVector::kDatabase) << fn;
    }
}

TEST(WordPressProfileTest, WpUnslashIsRevert) {
    KnowledgeBase kb = make_generic_php_kb();
    add_wordpress_profile(kb);
    const FunctionInfo* unslash = kb.function("wp_unslash");
    ASSERT_NE(unslash, nullptr);
    EXPECT_EQ(unslash->reverts, kSqliOnly);
}

TEST(PixyEraProfileTest, LacksModernKnowledge) {
    const KnowledgeBase kb = make_pixy_era_kb();
    EXPECT_EQ(kb.function("mysqli_real_escape_string"), nullptr);
    EXPECT_EQ(kb.function("esc_html"), nullptr);
    EXPECT_EQ(kb.function("get_option"), nullptr);
    EXPECT_TRUE(kb.model_register_globals);
    // 2007-era basics are present.
    EXPECT_NE(kb.function("htmlentities"), nullptr);
    EXPECT_NE(kb.function("mysql_query"), nullptr);
}

TEST(PixyEraProfileTest, GenericProfileHasNoRegisterGlobals) {
    const KnowledgeBase kb = make_generic_php_kb();
    EXPECT_FALSE(kb.model_register_globals);
}

TEST(KnowledgeBaseTest, ProfileSizes) {
    const KnowledgeBase generic = make_generic_php_kb();
    KnowledgeBase wp = make_generic_php_kb();
    add_wordpress_profile(wp);
    const KnowledgeBase pixy = make_pixy_era_kb();
    EXPECT_GT(wp.function_count(), generic.function_count());
    EXPECT_GT(wp.method_count(), generic.method_count());
    EXPECT_LT(pixy.function_count(), generic.function_count());
}

TEST(KnowledgeBaseTest, RefFlowsForPregMatch) {
    const KnowledgeBase kb = make_generic_php_kb();
    const FunctionInfo* pm = kb.function("preg_match");
    ASSERT_NE(pm, nullptr);
    ASSERT_EQ(pm->ref_flows.size(), 1u);
    EXPECT_EQ(pm->ref_flows[0].first, 1);
    EXPECT_EQ(pm->ref_flows[0].second, 2);
    EXPECT_EQ(pm->ret, FunctionInfo::Return::kSafe);
}

TEST(InputVectorTest, ToStringCoversAll) {
    EXPECT_EQ(to_string(InputVector::kGet), "GET");
    EXPECT_EQ(to_string(InputVector::kDatabase), "DB");
    EXPECT_EQ(to_string(VectorGroup::kPostGetCookie), "POST/GET/COOKIE");
    EXPECT_EQ(to_string(VectorGroup::kFileFunctionArray), "File/Function/Array");
}

}  // namespace
}  // namespace phpsafe
