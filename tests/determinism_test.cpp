// Determinism of the parse-once evaluation pipeline: a parallel evaluation
// must produce statistics byte-identical to a serial one — same counters,
// same detected-id sets, same derived paper metrics. Timing fields are the
// only machine-dependent outputs and are excluded. Run this test in a
// -DPHPSAFE_SANITIZE=thread build to race-check the pipeline (ctest -R
// Determinism).
#include <gtest/gtest.h>

#include "report/evaluation.h"

namespace phpsafe {
namespace {

void expect_identical_stats(const Evaluation& a, const Evaluation& b) {
    ASSERT_EQ(a.tool_names, b.tool_names);
    for (const char* version : {"2012", "2014"}) {
        ASSERT_TRUE(a.stats.count(version));
        ASSERT_TRUE(b.stats.count(version));
        for (const std::string& tool : a.tool_names) {
            const EvaluationStats& sa = a.stats.at(version).at(tool);
            const EvaluationStats& sb = b.stats.at(version).at(tool);
            EXPECT_EQ(sa.tp, sb.tp) << version << "/" << tool;
            EXPECT_EQ(sa.fp, sb.fp) << version << "/" << tool;
            EXPECT_EQ(sa.tp_xss, sb.tp_xss) << version << "/" << tool;
            EXPECT_EQ(sa.fp_xss, sb.fp_xss) << version << "/" << tool;
            EXPECT_EQ(sa.tp_sqli, sb.tp_sqli) << version << "/" << tool;
            EXPECT_EQ(sa.fp_sqli, sb.fp_sqli) << version << "/" << tool;
            EXPECT_EQ(sa.tp_oop, sb.tp_oop) << version << "/" << tool;
            EXPECT_EQ(sa.files_failed, sb.files_failed) << version << "/" << tool;
            EXPECT_EQ(sa.error_messages, sb.error_messages)
                << version << "/" << tool;
            EXPECT_EQ(sa.detected_ids, sb.detected_ids) << version << "/" << tool;
            EXPECT_EQ(sa.detected_ids_xss, sb.detected_ids_xss)
                << version << "/" << tool;
            EXPECT_EQ(sa.detected_ids_sqli, sb.detected_ids_sqli)
                << version << "/" << tool;
            // Observability counters are exact event counts, captured as
            // per-thread deltas and merged in a fixed order — they must be
            // byte-identical at any parallelism (field-wise == via the
            // X-macro-generated comparison).
            EXPECT_TRUE(sa.counters == sb.counters)
                << version << "/" << tool << ": counter totals differ ("
                << sa.counters.total() << " vs " << sb.counters.total() << ")";
        }
        EXPECT_EQ(a.union_detected(version), b.union_detected(version));
        EXPECT_EQ(a.paper_false_negatives(version),
                  b.paper_false_negatives(version));
        ASSERT_TRUE(a.truth.count(version) && b.truth.count(version));
        EXPECT_EQ(a.truth.at(version).size(), b.truth.at(version).size());
    }
}

TEST(DeterminismTest, ParallelEvaluationMatchesSerial) {
    EvaluationOptions serial;
    serial.corpus_scale = 0.2;
    serial.parallelism = 1;
    EvaluationOptions parallel = serial;
    parallel.parallelism = 4;
    const Evaluation a = run_corpus_evaluation(paper_tool_set(), serial);
    const Evaluation b = run_corpus_evaluation(paper_tool_set(), parallel);
    expect_identical_stats(a, b);
}

TEST(DeterminismTest, RepeatedParallelRunsAreStable) {
    EvaluationOptions options;
    options.corpus_scale = 0.1;
    options.parallelism = 3;
    const Evaluation a = run_corpus_evaluation(paper_tool_set(), options);
    const Evaluation b = run_corpus_evaluation(paper_tool_set(), options);
    expect_identical_stats(a, b);
}

}  // namespace
}  // namespace phpsafe
