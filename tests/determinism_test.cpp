// Determinism of the parse-once evaluation pipeline: a parallel evaluation
// must produce statistics byte-identical to a serial one — same counters,
// same detected-id sets, same derived paper metrics. Timing fields are the
// only machine-dependent outputs and are excluded. Run this test in a
// -DPHPSAFE_SANITIZE=thread build to race-check the pipeline (ctest -R
// Determinism).
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "report/evaluation.h"
#include "report/export.h"
#include "service/service.h"
#include "validate/validate.h"

namespace phpsafe {
namespace {

void expect_identical_stats(const Evaluation& a, const Evaluation& b) {
    ASSERT_EQ(a.tool_names, b.tool_names);
    for (const char* version : {"2012", "2014"}) {
        ASSERT_TRUE(a.stats.count(version));
        ASSERT_TRUE(b.stats.count(version));
        for (const std::string& tool : a.tool_names) {
            const EvaluationStats& sa = a.stats.at(version).at(tool);
            const EvaluationStats& sb = b.stats.at(version).at(tool);
            EXPECT_EQ(sa.tp, sb.tp) << version << "/" << tool;
            EXPECT_EQ(sa.fp, sb.fp) << version << "/" << tool;
            EXPECT_EQ(sa.tp_xss, sb.tp_xss) << version << "/" << tool;
            EXPECT_EQ(sa.fp_xss, sb.fp_xss) << version << "/" << tool;
            EXPECT_EQ(sa.tp_sqli, sb.tp_sqli) << version << "/" << tool;
            EXPECT_EQ(sa.fp_sqli, sb.fp_sqli) << version << "/" << tool;
            EXPECT_EQ(sa.tp_oop, sb.tp_oop) << version << "/" << tool;
            EXPECT_EQ(sa.files_failed, sb.files_failed) << version << "/" << tool;
            EXPECT_EQ(sa.error_messages, sb.error_messages)
                << version << "/" << tool;
            EXPECT_EQ(sa.detected_ids, sb.detected_ids) << version << "/" << tool;
            EXPECT_EQ(sa.detected_ids_xss, sb.detected_ids_xss)
                << version << "/" << tool;
            EXPECT_EQ(sa.detected_ids_sqli, sb.detected_ids_sqli)
                << version << "/" << tool;
            // Observability counters are exact event counts, captured as
            // per-thread deltas and merged in a fixed order — they must be
            // byte-identical at any parallelism (field-wise == via the
            // X-macro-generated comparison).
            EXPECT_TRUE(sa.counters == sb.counters)
                << version << "/" << tool << ": counter totals differ ("
                << sa.counters.total() << " vs " << sb.counters.total() << ")";
        }
        EXPECT_EQ(a.union_detected(version), b.union_detected(version));
        EXPECT_EQ(a.paper_false_negatives(version),
                  b.paper_false_negatives(version));
        ASSERT_TRUE(a.truth.count(version) && b.truth.count(version));
        EXPECT_EQ(a.truth.at(version).size(), b.truth.at(version).size());
    }
}

TEST(DeterminismTest, ParallelEvaluationMatchesSerial) {
    EvaluationOptions serial;
    serial.corpus_scale = 0.2;
    serial.parallelism = 1;
    EvaluationOptions parallel = serial;
    parallel.parallelism = 4;
    const Evaluation a = run_corpus_evaluation(paper_tool_set(), serial);
    const Evaluation b = run_corpus_evaluation(paper_tool_set(), parallel);
    expect_identical_stats(a, b);
}

TEST(DeterminismTest, RepeatedParallelRunsAreStable) {
    EvaluationOptions options;
    options.corpus_scale = 0.1;
    options.parallelism = 3;
    const Evaluation a = run_corpus_evaluation(paper_tool_set(), options);
    const Evaluation b = run_corpus_evaluation(paper_tool_set(), options);
    expect_identical_stats(a, b);
}

// The analysis service must be invisible in the output: findings are a
// function of (plugin content, preset) alone — not of cache state and not
// of the worker count. Serve the corpus's first plugins through services in
// every combination of {cold, warm-after-edit} x {1 worker, 4 workers} and
// require byte-identical reports.
TEST(DeterminismTest, ServiceFindingsIndependentOfCacheStateAndWorkers) {
    corpus::CorpusOptions corpus_options;
    corpus_options.scale = 0.05;
    const corpus::Corpus corpus = corpus::generate_corpus(corpus_options);

    std::vector<service::ScanRequest> requests;
    for (size_t i = 0; i < 3 && i < corpus.plugins.size(); ++i) {
        service::ScanRequest request;
        request.plugin = corpus.plugins[i].name;
        for (const auto& [name, text] : corpus.plugins[i].v2014.files)
            request.files.push_back({name, text});
        // The edited revision every arm is judged on.
        request.files[0].text += "\n// rev 2\n";
        requests.push_back(std::move(request));
    }

    std::vector<std::vector<std::string>> arms;
    for (const int workers : {1, 4}) {
        for (const bool warm : {false, true}) {
            service::ServiceOptions options;
            options.workers = workers;
            service::AnalysisService svc(options);
            if (warm) {
                // Prime with the pre-edit revision so the judged scan runs
                // against populated file and summary pools.
                for (service::ScanRequest request : requests) {
                    request.files[0].text.resize(
                        request.files[0].text.size() - 10);
                    (void)svc.scan(std::move(request));
                }
            }
            std::vector<std::string> reports;
            for (const service::ScanRequest& request : requests)
                reports.push_back(render_json_report(svc.scan(request).result));
            arms.push_back(std::move(reports));
        }
    }
    for (size_t i = 1; i < arms.size(); ++i)
        EXPECT_EQ(arms[0], arms[i]) << "arm " << i << " diverged";
}

// Arena-lifetime probe: with a parsed-file pool too small to hold anything,
// every scan's arenas (and all string_views into them) are destroyed as soon
// as the scan finishes, while the summary pool keeps artifacts computed from
// those arenas alive across scans. Re-editing only the entry file forces the
// next scan to re-resolve includes and validate those surviving summaries
// against hashes and names captured during the evicted scan — anything a
// summary or finding kept by view instead of by copy dangles here, which a
// -DPHPSAFE_SANITIZE=address build turns into a hard failure. Findings must
// also stay byte-identical to an eviction-free service.
TEST(DeterminismTest, SummariesSurviveParsedFileEviction) {
    const std::vector<service::SourceFileSpec> files = {
        {"lib.php", "<?php function wrap($v) { return inner($v); }"},
        {"util.php", "<?php function inner($v) { return $v; }"},
        {"main.php",
         "<?php include 'lib.php'; include 'util.php'; "
         "echo wrap($_GET['x']);"}};
    auto make_request = [&](int rev) {
        service::ScanRequest request;
        request.plugin = "evict-probe";
        request.files = files;
        request.files.back().text += "\n// rev " + std::to_string(rev) + "\n";
        return request;
    };

    service::ServiceOptions starved;
    // Holds roughly one parsed file: admitting the next file evicts the
    // previous one, so arenas churn constantly while summaries persist.
    starved.budgets.file_bytes = 768;
    starved.budgets.result_bytes = 0;  // force the full pipeline every scan
    service::AnalysisService churn(starved);
    service::AnalysisService reference;

    std::vector<std::string> churn_reports, reference_reports;
    for (int rev = 0; rev < 4; ++rev) {
        const service::ScanRequest request = make_request(rev);
        churn_reports.push_back(render_json_report(churn.scan(request).result));
        reference_reports.push_back(
            render_json_report(reference.scan(request).result));
    }
    EXPECT_GT(churn.cache_stats().evictions, 0u);
    EXPECT_EQ(churn_reports, reference_reports);
}

// The batch validation + remediation pipeline must render the same
// validation_signature (tiers, replay verdicts, verified fix edits) at any
// worker count and under either taint backend. Run under TSan this also
// race-checks the replay fan-out and the parallel fix verification.
TEST(DeterminismTest, ValidationSignatureStableAcrossWorkersAndBackends) {
    const std::string code =
        "<?php\n"
        "echo '<p>' . $_GET['msg'] . '</p>';\n"
        "echo '<i>' . $_POST['note'] . '</i>';\n"
        "echo htmlspecialchars($_GET['safe']);\n"
        "$id = $_GET['id'];\n"
        "global $wpdb;\n"
        "$wpdb->query(\"DELETE FROM t WHERE id = '$id'\");\n"
        "echo $_GET['raw'];\n";

    std::vector<std::string> backend_signatures;
    for (const EngineBackend backend : {EngineBackend::kAst, EngineBackend::kIr}) {
        Tool tool = make_phpsafe_tool();
        tool.options =
            tool.options.to_builder().engine_backend(backend).build();
        php::Project project("determinism");
        project.add_file("main.php", code);
        DiagnosticSink sink;
        project.parse_all(sink);
        const AnalysisResult result =
            Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
        ASSERT_FALSE(result.findings.empty());

        std::vector<std::string> signatures;
        for (const int workers : {1, 4}) {
            validate::ValidateOptions vopts;
            vopts.workers = workers;
            const validate::ValidationReport report = validate::validate_result(
                project, tool.kb, tool.options, result, vopts);
            signatures.push_back(validate::validation_signature(result, report));
        }
        EXPECT_EQ(signatures[0], signatures[1])
            << "signature differs between 1 and 4 workers";
        backend_signatures.push_back(signatures[0]);
    }
    EXPECT_EQ(backend_signatures[0], backend_signatures[1])
        << "signature differs between ast and ir backends";
}

}  // namespace
}  // namespace phpsafe
