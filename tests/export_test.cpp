// Exporter tests: HTML report and JSON serialization, including the
// escaping invariants (a security tool's report must not itself be
// injectable through malicious variable names).
#include <gtest/gtest.h>

#include "report/export.h"

namespace phpsafe {
namespace {

AnalysisResult sample_result() {
    AnalysisResult r;
    r.tool = "phpSAFE";
    r.plugin = "demo-plugin";
    r.files_total = 3;
    r.files_failed = 1;
    Finding f;
    f.kind = VulnKind::kXss;
    f.location = {"main.php", 12};
    f.sink = "echo";
    f.variable = "$msg";
    f.vector = InputVector::kGet;
    f.via_oop = true;
    f.trace.push_back({{"main.php", 10}, "source: $_GET['msg']"});
    f.trace.push_back({{"main.php", 12}, "reaches sink echo"});
    r.findings.push_back(std::move(f));
    Finding s;
    s.kind = VulnKind::kSqli;
    s.location = {"db.php", 4};
    s.sink = "wpdb::query";
    s.variable = "\"DELETE ... $id\"";
    s.vector = InputVector::kPost;
    r.findings.push_back(std::move(s));
    return r;
}

TEST(HtmlEscapeTest, EscapesMetacharacters) {
    EXPECT_EQ(html_escape("<b>&\"'"), "&lt;b&gt;&amp;&quot;&#39;");
    EXPECT_EQ(html_escape("plain"), "plain");
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(HtmlReportTest, ContainsFindingsAndTraces) {
    const std::string html = render_html_report(sample_result());
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("demo-plugin"), std::string::npos);
    EXPECT_NE(html.find("main.php:12"), std::string::npos);
    EXPECT_NE(html.find("XSS"), std::string::npos);
    EXPECT_NE(html.find("SQLi"), std::string::npos);
    EXPECT_NE(html.find("source: $_GET["), std::string::npos);
    EXPECT_NE(html.find("(via OOP)"), std::string::npos);
}

TEST(HtmlReportTest, EscapesMaliciousVariableNames) {
    AnalysisResult r = sample_result();
    r.findings[0].variable = "<script>alert(1)</script>";
    const std::string html = render_html_report(r);
    EXPECT_EQ(html.find("<script>alert(1)</script>"), std::string::npos);
    EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(JsonReportTest, WellFormedShape) {
    const std::string json = render_json_report(sample_result());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"tool\":\"phpSAFE\""), std::string::npos);
    EXPECT_NE(json.find("\"findings\":["), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"XSS\""), std::string::npos);
    EXPECT_NE(json.find("\"line\":12"), std::string::npos);
    EXPECT_NE(json.find("\"via_oop\":true"), std::string::npos);
    EXPECT_NE(json.find("\"trace\":["), std::string::npos);
}

TEST(JsonReportTest, BalancedBracesAndQuotes) {
    const std::string json = render_json_report(sample_result());
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        if (c == '{') ++braces;
        if (c == '}') --braces;
        if (c == '[') ++brackets;
        if (c == ']') --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);
}

TEST(JsonReportTest, EmptyFindingsIsEmptyArray) {
    AnalysisResult r;
    r.tool = "phpSAFE";
    r.plugin = "clean";
    const std::string json = render_json_report(r);
    EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
}

}  // namespace
}  // namespace phpsafe
