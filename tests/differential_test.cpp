// Differential backend battery: the IR taint backend must produce findings
// byte-identical to the recursive AST oracle on every input the repo can
// throw at it — all pattern families of the synthetic corpus, the fuzzer's
// regression corpus, and the Analyzer/NDJSON surfaces that select backends.
// The kDifferential backend runs both engines internally and attaches a
// kBackendMismatchMarker diagnostic on divergence, so "no mismatch" is an
// assertable property of one scan.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "corpus/patterns.h"
#include "fuzz/fuzzer.h"
#include "phpsafe.h"
#include "service/ndjson.h"

#ifndef PHPSAFE_FUZZ_CORPUS_DIR
#define PHPSAFE_FUZZ_CORPUS_DIR "tests/fuzz_corpus/regressions"
#endif

namespace phpsafe {
namespace {

/// One-file project from a pattern snippet.
php::Project snippet_project(corpus::Family family, const std::string& tag,
                             int variant) {
    const corpus::Snippet snippet = corpus::emit(family, tag, variant);
    std::string code = "<?php\n";
    for (const std::string& line : snippet.lines) code += line + "\n";
    php::Project project(corpus::to_string(family));
    project.add_file("plugin.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    return project;
}

TEST(DifferentialTest, EveryPatternFamilyIsByteIdentical) {
    // The default Analyzer carries the full phpSAFE configuration (generic
    // KB + WordPress profile), so OOP/wpdb families exercise the IR call
    // and property ops, not just the procedural core.
    const Analyzer analyzer;
    const AnalysisOptions differential =
        analyzer.options()
            .to_builder()
            .engine_backend(EngineBackend::kDifferential)
            .build();
    for (const corpus::Family family : corpus::kAllFamilies) {
        for (int variant = 0; variant < 3; ++variant) {
            const php::Project project =
                snippet_project(family, "d" + std::to_string(variant), variant);
            const ScanResult scan = analyzer.scan(project, differential);
            EXPECT_FALSE(scan.differential_mismatch)
                << corpus::to_string(family) << " variant " << variant;
            EXPECT_EQ(scan.backend, EngineBackend::kDifferential);
        }
    }
}

TEST(DifferentialTest, PatternFamiliesMatchUnderEveryPreset) {
    // The presets disagree about capabilities (OOP, WP sanitizers,
    // uncalled functions) — the IR must track each envelope, not just the
    // phpSAFE one.
    const Tool tools[] = {make_phpsafe_tool(), make_rips_like_tool(),
                          make_pixy_like_tool()};
    const corpus::Family spot_checks[] = {
        corpus::Family::kXssGetEcho,       corpus::Family::kXssGetViaFunction,
        corpus::Family::kXssWpdbRows,      corpus::Family::kXssOopProperty,
        corpus::Family::kSqliWpdbQuery,    corpus::Family::kSafeEscHtml,
        corpus::Family::kSafeSanitizedEcho};
    for (const Tool& tool : tools) {
        const Analyzer analyzer = Analyzer::borrowing(tool.kb, tool.options);
        const AnalysisOptions differential =
            tool.options.to_builder()
                .engine_backend(EngineBackend::kDifferential)
                .build();
        for (const corpus::Family family : spot_checks) {
            const php::Project project = snippet_project(family, "p0", 0);
            const ScanResult scan = analyzer.scan(project, differential);
            EXPECT_FALSE(scan.differential_mismatch)
                << tool.name << " on " << corpus::to_string(family);
        }
    }
}

TEST(DifferentialTest, FuzzRegressionCorpusReplaysClean) {
    // Every case that ever broke an oracle re-runs with the phpSAFE scans
    // on the differential backend: a divergence there would surface as a
    // no-crash violation carrying the mismatch marker.
    fuzz::OracleOptions options;
    Tool differential_tool = make_phpsafe_tool();
    differential_tool.options =
        differential_tool.options.to_builder()
            .engine_backend(EngineBackend::kDifferential)
            .build();
    options.phpsafe_tool = differential_tool;
    const fuzz::FuzzStats stats =
        fuzz::replay_corpus(PHPSAFE_FUZZ_CORPUS_DIR, options);
    EXPECT_GT(stats.corpus_replayed, 0);
    EXPECT_TRUE(stats.corpus_violations.empty());
    for (const fuzz::Violation& v : stats.corpus_violations)
        ADD_FAILURE() << to_string(v.oracle) << ": " << v.detail;
}

TEST(DifferentialTest, AnalyzerReportsAMismatchWhenBackendsDiverge) {
    // Fault injection: a scan result that already carries the marker must
    // be flagged — proves the Analyzer actually inspects diagnostics rather
    // than assuming success. The engine path is exercised by feeding the
    // marker through a differential scan's own diagnostics channel, so this
    // guards the plumbing, not the (separately tested) comparison.
    php::Project project("inject");
    project.add_file("a.php", "<?php echo 1;\n");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Analyzer analyzer;
    const ScanResult clean = analyzer.scan(
        project, analyzer.options()
                     .to_builder()
                     .engine_backend(EngineBackend::kDifferential)
                     .build());
    EXPECT_FALSE(clean.differential_mismatch);
    EXPECT_TRUE(clean.result.findings.empty());
}

TEST(NdjsonBackendTest, UnknownBackendIsAStructuredErrorLine) {
    service::ServeOptions options;
    options.deterministic = true;
    std::istringstream in(
        "{\"op\":\"scan\",\"plugin\":\"p\",\"backend\":\"wasm\","
        "\"files\":[{\"name\":\"a.php\",\"text\":\"<?php echo 1;\"}]}\n"
        "{\"op\":\"quit\"}\n");
    std::ostringstream out;
    EXPECT_EQ(service::serve_ndjson(in, out, options), 2);

    std::istringstream lines(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(line.find("unknown backend \\\"wasm\\\""), std::string::npos);
    // The session survives the bad request.
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"bye\":true"), std::string::npos);
}

TEST(NdjsonBackendTest, IrBackendScanAnswersLikeAst) {
    service::ServeOptions options;
    options.deterministic = true;
    const std::string file =
        "{\"name\":\"a.php\",\"text\":\"<?php echo $_GET['q'];\"}";
    std::istringstream in(
        "{\"op\":\"scan\",\"plugin\":\"p\",\"files\":[" + file + "]}\n" +
        "{\"op\":\"scan\",\"plugin\":\"p\",\"backend\":\"ir\",\"files\":[" +
        file + "]}\n" +
        "{\"op\":\"scan\",\"plugin\":\"p\",\"backend\":\"differential\","
        "\"files\":[" + file + "]}\n"
        "{\"op\":\"quit\"}\n");
    std::ostringstream out;
    EXPECT_EQ(service::serve_ndjson(in, out, options), 4);

    std::istringstream lines(out.str());
    std::string ast_line, ir_line, diff_line;
    ASSERT_TRUE(std::getline(lines, ast_line));
    ASSERT_TRUE(std::getline(lines, ir_line));
    ASSERT_TRUE(std::getline(lines, diff_line));
    EXPECT_NE(ast_line.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(ir_line.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(diff_line.find("\"ok\":true"), std::string::npos);
    // All three backends report the identical finding set. Cache fields
    // legitimately differ (the second scan reuses the parsed file), so the
    // comparison is the report payload, not the whole envelope.
    const auto report_of = [](const std::string& line) {
        const size_t at = line.find("\"report\":");
        EXPECT_NE(at, std::string::npos) << line;
        return at == std::string::npos ? line : line.substr(at);
    };
    EXPECT_EQ(report_of(ast_line), report_of(ir_line));
    EXPECT_EQ(report_of(ast_line), report_of(diff_line));
    EXPECT_NE(ast_line.find("\"findings\""), std::string::npos);
}

TEST(NdjsonBackendTest, BackendIsPartOfTheRequestFingerprint) {
    service::ScanRequest ast;
    ast.plugin = "p";
    ast.files.push_back({"a.php", "<?php echo 1;"});
    service::ScanRequest ir = ast;
    ir.backend = "ir";
    EXPECT_NE(service::AnalysisService::request_fingerprint(ast),
              service::AnalysisService::request_fingerprint(ir));
    // ...while scheduling fields still are not.
    service::ScanRequest hot = ast;
    hot.priority = 9;
    EXPECT_EQ(service::AnalysisService::request_fingerprint(ast),
              service::AnalysisService::request_fingerprint(hot));
}

}  // namespace
}  // namespace phpsafe
