// AnalysisService + AnalysisCache behavior: cache-state independence of
// findings (warm == cold, byte for byte), include-graph invalidation of
// function summaries, LRU eviction under a tiny byte budget, in-flight
// request deduplication, and the daemon's JSON reader.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "report/export.h"
#include "service/cache.h"
#include "service/service.h"
#include "util/json_reader.h"

namespace phpsafe {
namespace {

using service::AnalysisService;
using service::CacheStats;
using service::ScanRequest;
using service::ScanResponse;
using service::ServiceOptions;

ScanRequest simple_request(std::string plugin,
                           std::vector<service::SourceFileSpec> files) {
    ScanRequest request;
    request.plugin = std::move(plugin);
    request.files = std::move(files);
    return request;
}

/// The three-file project used by the invalidation tests: main echoes a GET
/// value routed through wrap() (lib.php), which delegates to inner()
/// (util.php). Whether the output is vulnerable depends only on inner().
ScanRequest layered_request(const std::string& inner_body) {
    return simple_request(
        "layered",
        {{"lib.php", "<?php function wrap($v) { return inner($v); }"},
         {"util.php", "<?php function inner($v) { " + inner_body + " }"},
         {"main.php",
          "<?php include 'lib.php'; include 'util.php'; "
          "echo wrap($_GET['x']);"}});
}

TEST(ServiceTest, FindsSimpleXss) {
    AnalysisService service;
    const ScanResponse response = service.scan(simple_request(
        "demo", {{"a.php", "<?php echo $_GET['x'];"}}));
    ASSERT_EQ(response.result.findings.size(), 1u);
    EXPECT_EQ(response.result.findings[0].kind, VulnKind::kXss);
    EXPECT_FALSE(response.from_result_cache);
}

TEST(ServiceTest, IdenticalRescanHitsResultPool) {
    AnalysisService service;
    const ScanRequest request =
        simple_request("demo", {{"a.php", "<?php echo $_GET['x'];"}});
    const ScanResponse cold = service.scan(request);
    const ScanResponse warm = service.scan(request);
    EXPECT_FALSE(cold.from_result_cache);
    EXPECT_TRUE(warm.from_result_cache);
    EXPECT_EQ(render_json_report(cold.result), render_json_report(warm.result));
}

TEST(ServiceTest, ColdScanChargesParsedBytesGauge) {
    AnalysisService service;
    const std::string code = "<?php echo $_GET['x'];";
    const ScanRequest request = simple_request("demo", {{"a.php", code}});
    const ScanResponse cold = service.scan(request);
    // The parsed-file pool charges the arena ledger plus the retained source
    // (plus a fixed entry header), so the gauge must reconcile exactly with
    // the arena counter for a single freshly parsed file.
    EXPECT_EQ(cold.counters.cache_bytes_parsed,
              64 + cold.counters.alloc_arena_bytes + code.size());
    EXPECT_GT(cold.counters.alloc_arena_bytes, 0u);
    // A byte-identical rescan is served from the result pool: nothing is
    // parsed, so nothing new is charged.
    const ScanResponse warm = service.scan(request);
    EXPECT_EQ(warm.counters.cache_bytes_parsed, 0u);
}

TEST(ServiceTest, EditedFileReusesUnchangedAstsAndSummaries) {
    AnalysisService service;
    (void)service.scan(layered_request("return htmlentities($v);"));

    // Touch only main.php; lib.php and util.php (and the summaries of the
    // two functions they declare) must come from the cache.
    ScanRequest edited = layered_request("return htmlentities($v);");
    edited.files[2].text += " echo 'v2';";
    const ScanResponse response = service.scan(edited);
    EXPECT_FALSE(response.from_result_cache);
    EXPECT_EQ(response.files_reused, 2);
    EXPECT_EQ(response.summaries_seeded, 2);
    EXPECT_EQ(response.summaries_invalidated, 0);
    EXPECT_TRUE(response.result.findings.empty());
}

TEST(ServiceTest, ChangedDependencyInvalidatesDependentSummary) {
    AnalysisService service;
    const ScanResponse sanitized =
        service.scan(layered_request("return htmlentities($v);"));
    EXPECT_TRUE(sanitized.result.findings.empty());

    // inner() loses its sanitization. wrap() lives in an unchanged file, so
    // its cached summary is FOUND — but its recorded dependency on
    // util.php's content no longer validates, so it must be recomputed (a
    // stale summary would keep reporting the flow as sanitized).
    const ScanRequest vulnerable = layered_request("return $v;");
    const ScanResponse warm = service.scan(vulnerable);
    EXPECT_GE(warm.summaries_invalidated, 1);
    ASSERT_EQ(warm.result.findings.size(), 1u);
    EXPECT_EQ(warm.result.findings[0].kind, VulnKind::kXss);

    // And the warm findings are byte-identical to a cold service's.
    AnalysisService cold_service;
    const ScanResponse cold = cold_service.scan(vulnerable);
    EXPECT_EQ(render_json_report(warm.result), render_json_report(cold.result));
}

TEST(ServiceTest, FileDeletedBetweenScansInvalidatesDependents) {
    AnalysisService service;
    const ScanResponse sanitized =
        service.scan(layered_request("return htmlentities($v);"));
    EXPECT_TRUE(sanitized.result.findings.empty());

    // util.php disappears from the plugin. wrap()'s cached summary records
    // a dependency on util.php's content; a file that no longer exists must
    // fail validation, not validate vacuously — otherwise wrap() would keep
    // reporting the flow as sanitized by a function that is gone.
    ScanRequest deleted = layered_request("return htmlentities($v);");
    deleted.files.erase(deleted.files.begin() + 1);  // drop util.php
    const ScanResponse warm = service.scan(deleted);
    EXPECT_FALSE(warm.from_result_cache);
    EXPECT_GE(warm.summaries_invalidated, 1);

    AnalysisService cold_service;
    const ScanResponse cold = cold_service.scan(deleted);
    EXPECT_EQ(render_json_report(warm.result), render_json_report(cold.result));
}

TEST(ServiceTest, IncludeRenamedToShadowAnotherFile) {
    // Every file's *content* stays byte-identical across the two scans —
    // only the names swap, flipping which file `include 'inc.php'` picks
    // up. The AST pool (content-addressed) may reuse everything; results
    // and summaries must still track the include resolution by name.
    const std::string sanitizes = "<?php $x = htmlentities($x);";
    const std::string noop = "<?php $unused = 1;";
    const std::string main_php =
        "<?php $x = $_GET['q']; include 'inc.php'; echo $x;";

    AnalysisService service;
    const ScanResponse before = service.scan(simple_request(
        "shadow",
        {{"inc.php", sanitizes}, {"spare.php", noop}, {"main.php", main_php}}));
    EXPECT_TRUE(before.result.findings.empty());

    // "spare.php" is renamed over "inc.php" (and the sanitizer file moves
    // aside): the include now resolves to the no-op shadow.
    const ScanResponse after = service.scan(simple_request(
        "shadow",
        {{"inc.php", noop}, {"spare.php", sanitizes}, {"main.php", main_php}}));
    EXPECT_FALSE(after.from_result_cache);
    ASSERT_EQ(after.result.findings.size(), 1u);
    EXPECT_EQ(after.result.findings[0].kind, VulnKind::kXss);

    AnalysisService cold_service;
    const ScanResponse cold = cold_service.scan(simple_request(
        "shadow",
        {{"inc.php", noop}, {"spare.php", sanitizes}, {"main.php", main_php}}));
    EXPECT_EQ(render_json_report(after.result), render_json_report(cold.result));
}

TEST(ServiceTest, InvalidationCascadesTwoLevelsUpTheCallGraph) {
    // outer() → mid() → inner(), one file each. Editing only inner()'s file
    // must invalidate the summaries of *both* callers above it: mid()
    // depends on inner()'s file directly, outer() only transitively
    // (through mid()'s recorded dependencies).
    const auto chain_request = [](const std::string& inner_body) {
        return simple_request(
            "chain",
            {{"outer.php", "<?php function outer($v) { return mid($v); }"},
             {"mid.php", "<?php function mid($v) { return inner($v); }"},
             {"inner.php", "<?php function inner($v) { " + inner_body + " }"},
             {"main.php",
              "<?php include 'outer.php'; include 'mid.php'; "
              "include 'inner.php'; echo outer($_GET['x']);"}});
    };

    AnalysisService service;
    const ScanResponse sanitized =
        service.scan(chain_request("return htmlentities($v);"));
    EXPECT_TRUE(sanitized.result.findings.empty());

    const ScanResponse warm = service.scan(chain_request("return $v;"));
    EXPECT_GE(warm.summaries_invalidated, 2)
        << "outer()'s summary must fall with mid()'s, not survive on its "
           "unchanged file content";
    ASSERT_EQ(warm.result.findings.size(), 1u);
    EXPECT_EQ(warm.result.findings[0].kind, VulnKind::kXss);

    AnalysisService cold_service;
    const ScanResponse cold = cold_service.scan(chain_request("return $v;"));
    EXPECT_EQ(render_json_report(warm.result), render_json_report(cold.result));
}

TEST(ServiceTest, LruEvictsUnderTinyByteBudget) {
    ServiceOptions options;
    options.budgets.file_bytes = 2048;    // holds ~2 small parsed files
    options.budgets.summary_bytes = 2048;
    options.budgets.result_bytes = 0;     // result pool disabled entirely
    AnalysisService service(options);

    std::vector<service::SourceFileSpec> files;
    for (int i = 0; i < 8; ++i) {
        const std::string n = std::to_string(i);
        files.push_back({"f" + n + ".php",
                         "<?php function fn" + n + "($v) { return $v . '" + n +
                             "'; } echo fn" + n + "($_GET['q" + n + "']);"});
    }
    const ScanRequest request = simple_request("evict", files);
    const ScanResponse first = service.scan(request);
    const CacheStats stats = service.cache_stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LT(stats.file_entries, files.size());
    EXPECT_LE(stats.bytes_resident,
              options.budgets.file_bytes + options.budgets.summary_bytes);
    EXPECT_EQ(stats.result_entries, 0u);

    // Eviction affects cost only: a re-scan under cache pressure returns
    // the same findings.
    const ScanResponse second = service.scan(request);
    EXPECT_FALSE(second.from_result_cache);
    EXPECT_EQ(render_json_report(first.result),
              render_json_report(second.result));
}

TEST(ServiceTest, InFlightIdenticalRequestsCoalesce) {
    AnalysisService service;
    service.pause();  // hold the queue so both submits see the same scan
    const ScanRequest request =
        simple_request("dedup", {{"a.php", "<?php echo $_GET['x'];"}});
    const AnalysisService::Ticket first = service.submit(request);
    const AnalysisService::Ticket second = service.submit(request);
    service.resume();
    const ScanResponse a = service.await(first);
    const ScanResponse b = service.await(second);
    EXPECT_FALSE(a.deduplicated);
    EXPECT_TRUE(b.deduplicated);
    EXPECT_EQ(render_json_report(a.result), render_json_report(b.result));
}

TEST(ServiceTest, RequestFingerprintCoversNamesAndContent) {
    const ScanRequest base =
        simple_request("p", {{"a.php", "<?php echo 1;"}});
    ScanRequest renamed = base;
    renamed.files[0].name = "b.php";
    ScanRequest edited = base;
    edited.files[0].text += " ";
    ScanRequest other_preset = base;
    other_preset.preset = "rips";
    const uint64_t fp = AnalysisService::request_fingerprint(base);
    EXPECT_NE(fp, AnalysisService::request_fingerprint(renamed));
    EXPECT_NE(fp, AnalysisService::request_fingerprint(edited));
    EXPECT_NE(fp, AnalysisService::request_fingerprint(other_preset));
    EXPECT_EQ(fp, AnalysisService::request_fingerprint(base));
}

TEST(ServiceTest, WarmScanOfCorpusPluginMatchesColdByteForByte) {
    corpus::CorpusOptions corpus_options;
    corpus_options.scale = 0.05;
    const corpus::Corpus corpus = corpus::generate_corpus(corpus_options);
    const corpus::GeneratedPlugin& plugin = corpus.plugins.front();

    ScanRequest request;
    request.plugin = plugin.name;
    for (const auto& [name, text] : plugin.v2014.files)
        request.files.push_back({name, text});

    AnalysisService warm_service;
    (void)warm_service.scan(request);  // prime
    ScanRequest touched = request;
    touched.files[0].text += "\n// touched\n";
    const ScanResponse warm = warm_service.scan(touched);
    EXPECT_GT(warm.files_reused, 0);
    EXPECT_GT(warm.summaries_seeded, 0);

    AnalysisService cold_service;
    const ScanResponse cold = cold_service.scan(touched);
    EXPECT_EQ(render_json_report(warm.result), render_json_report(cold.result));
}

TEST(ServiceTest, DepValidationMemoCollapsesRepeatedWalks) {
    // Twenty summaries all depending on the same helper function: summary
    // seeding validates each one, but the memo must resolve "shared_h" and
    // each file hash once — repeat checks are map hits, not re-walks of
    // the project (the cache_dep_walk_* counters prove it).
    ScanRequest request;
    request.plugin = "memo";
    request.files.push_back(
        {"helper.php",
         "<?php function shared_h($v) { return htmlentities($v); }"});
    for (int i = 0; i < 20; ++i) {
        const std::string n = std::to_string(i);
        request.files.push_back(
            {"f" + n + ".php",
             "<?php function leaf_" + n +
                 "($v) { return shared_h($v); } echo leaf_" + n +
                 "($_GET['x']);"});
    }

    ServiceOptions options;
    options.workers = 1;
    AnalysisService service(options);
    (void)service.scan(request);  // prime the summary pool

    ScanRequest touched = request;
    touched.files[1].text += " // touched";
    const ScanResponse warm = service.scan(touched);
    EXPECT_GT(warm.summaries_seeded, 0);
    EXPECT_GT(warm.counters.cache_dep_walks, 0u);
    EXPECT_GT(warm.counters.cache_dep_walk_memo_hits, 0u);
    // Unique resolutions (misses) must be strictly rarer than memoized
    // ones: every artifact re-checks shared_h and the same file hashes.
    EXPECT_LT(warm.counters.cache_dep_walk_steps,
              warm.counters.cache_dep_walk_memo_hits);
}

// ---------------------------------------------------------------------------
// JsonReader (the daemon's request decoder)
// ---------------------------------------------------------------------------

TEST(JsonReaderTest, ParsesDaemonRequestShape) {
    JsonValue v;
    ASSERT_TRUE(JsonReader::parse(
        R"({"op":"scan","plugin":"p","files":[{"name":"a.php","text":"<?php\n"}]})",
        v));
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.string_or("op", ""), "scan");
    const JsonValue* files = v.get("files");
    ASSERT_TRUE(files && files->is_array());
    ASSERT_EQ(files->array.size(), 1u);
    EXPECT_EQ(files->array[0].string_or("text", ""), "<?php\n");
}

TEST(JsonReaderTest, ParsesScalarsAndNesting) {
    JsonValue v;
    ASSERT_TRUE(JsonReader::parse(
        R"({"a":-1.5e2,"b":true,"c":null,"d":[1,2,[3]],"e":{"f":"g"}})", v));
    EXPECT_EQ(v.int_or("a", 0), -150);
    EXPECT_TRUE(v.get("b")->boolean);
    EXPECT_TRUE(v.get("c")->is_null());
    EXPECT_EQ(v.get("d")->array[2].array[0].number, 3);
    EXPECT_EQ(v.get("e")->string_or("f", ""), "g");
}

TEST(JsonReaderTest, DecodesEscapes) {
    JsonValue v;
    ASSERT_TRUE(JsonReader::parse(R"(["\"\\\n\tAé😀"])", v));
    EXPECT_EQ(v.array[0].string, "\"\\\n\tA\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonReader::parse("{\"a\":}", v, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(JsonReader::parse("[1,2", v));
    EXPECT_FALSE(JsonReader::parse("{} trailing", v));
    EXPECT_FALSE(JsonReader::parse("\"unterminated", v));
    EXPECT_FALSE(JsonReader::parse("nul", v));
    EXPECT_FALSE(JsonReader::parse("", v));
}

TEST(JsonReaderTest, RoundTripsThroughJsonWriter) {
    // The writer's escaping must always be parseable by the reader.
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object();
    w.kv("text", "quote\" slash\\ tab\t nl\n ctl\x01");
    w.end_object();
    JsonValue v;
    ASSERT_TRUE(JsonReader::parse(out.str(), v));
    EXPECT_EQ(v.string_or("text", ""), "quote\" slash\\ tab\t nl\n ctl\x01");
}

}  // namespace
}  // namespace phpsafe
