// Second wave of engine tests: PHP-specific semantics the first suite
// doesn't cover — heredocs, alternative syntax templates, string
// interpolation of members, static variables, $GLOBALS flows in functions,
// switch/try structure, multi-arg echoes, nested data shapes, and the
// WordPress idioms seen in real plugin code.
#include <gtest/gtest.h>

#include "baselines/analyzers.h"
#include "core/analyzer.h"
#include "php/project.h"

namespace phpsafe {
namespace {

AnalysisResult analyze(const std::string& code, const Tool& tool) {
    php::Project project("sem");
    project.add_file("main.php", code);
    DiagnosticSink sink;
    project.parse_all(sink);
    return Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
}

AnalysisResult analyze(const std::string& code) {
    return analyze(code, make_phpsafe_tool());
}

TEST(EngineSemanticsTest, HeredocInterpolationIsSink) {
    const auto r = analyze(
        "<?php $q = $_GET['q'];\n"
        "echo <<<HTML\n"
        "<div>$q</div>\n"
        "HTML;\n");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, NowdocDoesNotInterpolate) {
    const auto r = analyze(
        "<?php $q = $_GET['q'];\n"
        "echo <<<'HTML'\n"
        "<div>$q</div>\n"
        "HTML;\n");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineSemanticsTest, AlternativeSyntaxTemplate) {
    const auto r = analyze(
        "<?php if ($show): ?>\n"
        "<div><?php echo $_GET['m']; ?></div>\n"
        "<?php endif; ?>");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, ForeachAlternativeSyntaxWithWpdb) {
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "$rows = $wpdb->get_results('SELECT 1');\n"
        "foreach ($rows as $row): ?>\n"
        "<li><?php echo $row->name; ?></li>\n"
        "<?php endforeach;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, InterpolatedPropertyInString) {
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "$row = $wpdb->get_row('SELECT 1');\n"
        "echo \"<td>{$row->title}</td>\";");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_TRUE(r.findings[0].via_oop);
}

TEST(EngineSemanticsTest, InterpolatedArrayElementInString) {
    const auto r = analyze("<?php echo \"Hello $_GET[name]!\";");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, StaticVariableKeepsTaint) {
    const auto r = analyze(
        "<?php function cache_it() {\n"
        "  static $cached = null;\n"
        "  $cached = $_GET['v'];\n"
        "  echo $cached;\n"
        "}\n"
        "cache_it();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, GlobalsArrayWriteInFunction) {
    const auto r = analyze(
        "<?php function setup() { $GLOBALS['banner'] = $_GET['b']; }\n"
        "setup();\n"
        "echo $banner;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, TryCatchBodiesAnalyzed) {
    const auto r = analyze(
        "<?php try { echo $_GET['a']; } catch (Exception $e) { echo $_GET['b']; } "
        "finally { echo $_GET['c']; }");
    EXPECT_EQ(r.findings.size(), 3u);
}

TEST(EngineSemanticsTest, CaughtExceptionVariableIsClean) {
    const auto r = analyze(
        "<?php try { risky(); } catch (Exception $e) { echo $e; }");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineSemanticsTest, MultiArgEchoEachChecked) {
    const auto r = analyze("<?php echo '<b>', $_GET['a'], '</b>', $_GET['b'];");
    // One echo statement, two tainted arguments at the same line: they
    // deduplicate to distinct findings because the variable text differs.
    EXPECT_EQ(r.findings.size(), 2u);
}

TEST(EngineSemanticsTest, NestedArrayTaint) {
    const auto r = analyze(
        "<?php $cfg = array('items' => array('first' => $_GET['x']));\n"
        "echo $cfg['items']['first'];");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, VariableFunctionCallPropagates) {
    const auto r = analyze(
        "<?php $fn = 'strtoupper'; echo $fn($_GET['x']);");
    // Dynamic call: conservative propagation keeps the taint alive.
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, MethodChainOnWpdbRow) {
    const auto r = analyze(
        "<?php global $wpdb;\n"
        "echo $wpdb->get_row('SELECT 1')->content;");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kDatabase);
}

TEST(EngineSemanticsTest, WordpressOptionRoundTrip) {
    // update_option is unknown (propagate); get_option is a DB source —
    // the classic stored-XSS pair in options pages.
    const auto r = analyze(
        "<?php update_option('msg', $_POST['msg']);\n"
        "echo get_option('msg');");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kDatabase);
}

TEST(EngineSemanticsTest, SprintfWithStringFormatPropagates) {
    const auto r = analyze("<?php echo sprintf('<b>%s</b>', $_GET['x']);");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, ConcatInsideFunctionArgs) {
    const auto r = analyze(
        "<?php printf('%s', 'pre' . $_COOKIE['c'] . 'post');");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, UnsetOnlyAffectsNamedVariable) {
    const auto r = analyze(
        "<?php $a = $_GET['a']; $b = $_GET['b']; unset($a); echo $a; echo $b;");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_NE(r.findings[0].variable.find("$b"), std::string::npos);
}

TEST(EngineSemanticsTest, SelfPropertyViaStaticStore) {
    const auto r = analyze(
        "<?php class Cfg {\n"
        "  public static $msg = '';\n"
        "  public static function load() { self::$msg = $_GET['m']; }\n"
        "  public static function show() { echo self::$msg; }\n"
        "}\n"
        "Cfg::load();\n"
        "Cfg::show();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, ParentMethodCall) {
    const auto r = analyze(
        "<?php class Base { public function out($v) { echo $v; } }\n"
        "class Child extends Base {\n"
        "  public function show() { parent::out($_GET['x']); }\n"
        "}\n"
        "$c = new Child(); $c->show();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, SinkInsideSwitchCase) {
    const auto r = analyze(
        "<?php switch ($_GET['tab']) {\n"
        "  case 'a': echo htmlspecialchars($_GET['q']); break;\n"
        "  case 'b': echo $_GET['q']; break;\n"
        "}");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, EchoInsideHtmlHeavyTemplate) {
    const auto r = analyze(
        "<html><body>\n"
        "<?php $t = $_GET['title']; ?>\n"
        "<h1><?php echo $t; ?></h1>\n"
        "<p>static</p>\n"
        "</body></html>");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, FilesFailedCountsParseFailures) {
    php::Project project("mix");
    std::string garbage = "<?php ";
    for (int i = 0; i < 300; ++i) garbage += ")( ";
    project.add_file("bad.php", garbage);
    project.add_file("good.php", "<?php echo $_GET['x'];");
    DiagnosticSink sink;
    project.parse_all(sink);
    const Tool tool = make_phpsafe_tool();
    const AnalysisResult r =
        Analyzer::borrowing(tool.kb, tool.options).scan(project).result;
    EXPECT_EQ(r.files_failed, 1);
    EXPECT_EQ(r.findings.size(), 1u);  // the good file is still analyzed
}

TEST(EngineSemanticsTest, LoopIterations2CatchesLoopCarriedFlow) {
    const std::string code =
        "<?php $prev = 'clean';\n"
        "foreach ($_POST as $cur) {\n"
        "  echo $prev;\n"
        "  $prev = $cur;\n"
        "}";
    // One pass: $prev is clean at the echo. Two passes: loop-carried taint.
    Tool once = make_phpsafe_tool();
    EXPECT_TRUE(analyze(code, once).findings.empty());
    Tool twice = make_phpsafe_tool();
    twice.options.loop_iterations = 2;
    EXPECT_EQ(analyze(code, twice).findings.size(), 1u);
}

TEST(EngineSemanticsTest, ExitValueInsideCondition) {
    const auto r = analyze(
        "<?php $ok = is_dir('/tmp') or die('no tmp');\n"
        "echo $_GET['x'];");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, CoalesceKeepsTaint) {
    const auto r = analyze("<?php $v = $_GET['v'] ?? 'default'; echo $v;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, ElvisKeepsTaint) {
    const auto r = analyze("<?php $v = $_GET['v'] ?: 'default'; echo $v;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, ByRefParameterTaintsCallerVariable) {
    const auto r = analyze(
        "<?php function fill(&$out) { $out = $_GET['q']; }\n"
        "$value = '';\n"
        "fill($value);\n"
        "echo $value;");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, ByRefSanitizerClearsCallerVariable) {
    const auto r = analyze(
        "<?php function clean(&$v) { $v = htmlspecialchars($v); }\n"
        "$value = $_GET['q'];\n"
        "clean($value);\n"
        "echo $value;");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineSemanticsTest, GeneratorYieldFlowsToConsumer) {
    const auto r = analyze(
        "<?php function rows() {\n"
        "  yield $_GET['a'];\n"
        "  yield 'safe';\n"
        "}\n"
        "foreach (rows() as $row) { echo $row; }");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, GeneratorKeyValueYield) {
    const auto r = analyze(
        "<?php function pairs() { yield 'k' => $_POST['v']; }\n"
        "foreach (pairs() as $k => $v) { echo $v; }");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, CleanGeneratorIsClean) {
    const auto r = analyze(
        "<?php function nums() { yield 1; yield 2; }\n"
        "foreach (nums() as $n) { echo $n; }");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineSemanticsTest, ExtractInjectsTaintIntoUndefinedReads) {
    const auto r = analyze(
        "<?php function handler() {\n"
        "  extract($_POST);\n"
        "  echo $message;\n"
        "}\n"
        "handler();");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].vector, InputVector::kPost);
}

TEST(EngineSemanticsTest, ExtractDoesNotTaintAssignedVariables) {
    const auto r = analyze(
        "<?php function handler() {\n"
        "  $message = 'safe';\n"
        "  extract($_POST);\n"
        "  echo $message;\n"
        "}\n"
        "handler();");
    EXPECT_TRUE(r.findings.empty());  // explicit assignment wins in our model
}

TEST(EngineSemanticsTest, ExtractOfCleanArrayIsHarmless) {
    const auto r = analyze(
        "<?php function handler() {\n"
        "  extract(array('a' => 1));\n"
        "  echo $b;\n"
        "}\n"
        "handler();");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineSemanticsTest, ReferenceAliasSharesTaint) {
    // $a =& $b: taint written through one name is visible through the other
    // (the paper enables Pixy's "-A" flag for exactly this, §IV.B.4).
    const auto r = analyze(
        "<?php function f() {\n"
        "  $a =& $b;\n"
        "  $b = $_GET['x'];\n"
        "  echo $a;\n"
        "}\n"
        "f();");
    EXPECT_EQ(r.findings.size(), 1u);
}

TEST(EngineSemanticsTest, ReferenceAliasWriteThrough) {
    const auto r = analyze(
        "<?php function f() {\n"
        "  $b = $_GET['x'];\n"
        "  $a =& $b;\n"
        "  $a = 'safe';\n"
        "  echo $b;\n"
        "}\n"
        "f();");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineSemanticsTest, ReferenceAliasSanitizeThrough) {
    const auto r = analyze(
        "<?php function f() {\n"
        "  $b = $_GET['x'];\n"
        "  $a =& $b;\n"
        "  $a = htmlspecialchars($a);\n"
        "  echo $b;\n"
        "}\n"
        "f();");
    EXPECT_TRUE(r.findings.empty());
}

TEST(EngineSemanticsTest, ByRefFlowFromAnotherParameter) {
    const auto r = analyze(
        "<?php function copy_into($src, &$dst) { $dst = $src; }\n"
        "$out = '';\n"
        "copy_into($_POST['body'], $out);\n"
        "echo $out;");
    EXPECT_EQ(r.findings.size(), 1u);
}

}  // namespace
}  // namespace phpsafe
