// Unit tests for the dynamic interpreter's value model: PHP-style
// coercions, loose comparison, array ordering and sharing semantics.
#include <gtest/gtest.h>

#include "dynamic/value.h"

namespace phpsafe::dynamic {
namespace {

TEST(ValueTest, DefaultIsNull) {
    const Value v;
    EXPECT_TRUE(v.is_null());
    EXPECT_FALSE(v.to_bool());
    EXPECT_EQ(v.to_string(), "");
}

TEST(ValueTest, Truthiness) {
    EXPECT_FALSE(Value::string("").to_bool());
    EXPECT_FALSE(Value::string("0").to_bool());
    EXPECT_TRUE(Value::string("0.0").to_bool());  // PHP: only "" and "0" are falsy
    EXPECT_TRUE(Value::string("false").to_bool());
    EXPECT_FALSE(Value::integer(0).to_bool());
    EXPECT_TRUE(Value::integer(-1).to_bool());
    EXPECT_FALSE(Value::array().to_bool());  // empty array is falsy
}

TEST(ValueTest, StringToIntPrefix) {
    EXPECT_EQ(Value::string("42abc").to_int(), 42);
    EXPECT_EQ(Value::string("abc").to_int(), 0);
    EXPECT_EQ(Value::string("-7").to_int(), -7);
}

TEST(ValueTest, LooseEquality) {
    EXPECT_TRUE(Value::integer(10).loose_equals(Value::string("10")));
    EXPECT_TRUE(Value::string("1e1").loose_equals(Value::string("10")));
    EXPECT_FALSE(Value::string("abc").loose_equals(Value::string("abd")));
    EXPECT_TRUE(Value::boolean(true).loose_equals(Value::string("anything")));
    EXPECT_TRUE(Value::null().loose_equals(Value::string("")));
}

TEST(ValueTest, ArrayPreservesInsertionOrder) {
    Value arr = Value::array();
    arr.set_element("z", Value::integer(1));
    arr.set_element("a", Value::integer(2));
    arr.set_element("m", Value::integer(3));
    const auto& entries = arr.array_data()->entries;
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, "z");
    EXPECT_EQ(entries[1].first, "a");
    EXPECT_EQ(entries[2].first, "m");
}

TEST(ValueTest, ArrayOverwriteKeepsPosition) {
    Value arr = Value::array();
    arr.set_element("k", Value::integer(1));
    arr.set_element("j", Value::integer(2));
    arr.set_element("k", Value::integer(9));
    EXPECT_EQ(arr.array_size(), 2u);
    EXPECT_EQ(arr.get_element("k").to_int(), 9);
}

TEST(ValueTest, PushUsesNextIndex) {
    Value arr = Value::array();
    arr.push_element(Value::string("a"));
    arr.set_element("5", Value::string("b"));
    arr.push_element(Value::string("c"));
    EXPECT_EQ(arr.get_element("0").to_string(), "a");
    EXPECT_EQ(arr.get_element("5").to_string(), "b");
    EXPECT_EQ(arr.get_element("6").to_string(), "c");
}

TEST(ValueTest, ArraysShareDataOnCopy) {
    Value a = Value::array();
    Value b = a;
    b.set_element("k", Value::string("v"));
    EXPECT_EQ(a.get_element("k").to_string(), "v");
}

TEST(ValueTest, ObjectsShareProperties) {
    Value o = Value::object("widget");
    Value alias = o;
    alias.object_data()->properties["p"] = Value::integer(3);
    EXPECT_EQ(o.object_data()->properties["p"].to_int(), 3);
    EXPECT_EQ(o.object_data()->class_name, "widget");
}

TEST(ValueTest, MissingElementIsNull) {
    EXPECT_TRUE(Value::array().get_element("nope").is_null());
    EXPECT_TRUE(Value::string("s").get_element("0").is_null());  // non-array
}

TEST(ValueTest, IsNumericString) {
    EXPECT_TRUE(is_numeric_string("42"));
    EXPECT_TRUE(is_numeric_string(" 3.14"));
    EXPECT_TRUE(is_numeric_string("-7"));
    EXPECT_FALSE(is_numeric_string("1' OR"));
    EXPECT_FALSE(is_numeric_string(""));
    EXPECT_FALSE(is_numeric_string("1.2.3"));
    EXPECT_FALSE(is_numeric_string("abc"));
}

TEST(ValueTest, SetElementOnNonArrayConverts) {
    Value v = Value::string("x");
    v.set_element("k", Value::integer(1));
    EXPECT_TRUE(v.is_array());
    EXPECT_EQ(v.get_element("k").to_int(), 1);
}

}  // namespace
}  // namespace phpsafe::dynamic
