// Tests for the fuzzing subsystem (src/fuzz/): regression-corpus replay,
// seed-reproducible case generation, the fault-injection seam that proves
// the interpreter-agreement oracle catches a deliberately broken tool, and
// the regression file format round-trip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/analyzers.h"
#include "corpus/patterns.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutator.h"
#include "fuzz/oracles.h"
#include "fuzz/reducer.h"

#ifndef PHPSAFE_FUZZ_CORPUS_DIR
#define PHPSAFE_FUZZ_CORPUS_DIR "tests/fuzz_corpus/regressions"
#endif

namespace phpsafe::fuzz {
namespace {

// -- regression corpus --------------------------------------------------------

// Every checked-in regression (each a past crash or oracle violation,
// minimized) must replay clean. A failure here means a fixed bug came back.
TEST(FuzzRegressionCorpus, ReplaysClean) {
    const FuzzStats stats = replay_corpus(PHPSAFE_FUZZ_CORPUS_DIR, OracleOptions{});
    EXPECT_GE(stats.corpus_replayed, 3) << "regression corpus went missing";
    for (const Violation& v : stats.corpus_violations)
        ADD_FAILURE() << "[" << to_string(v.oracle) << "] " << v.detail;
}

// -- reproducibility ----------------------------------------------------------

// The acceptance contract: the same seed must produce the same mutation
// sequence, observable through the FNV-1a chain over every generated case.
TEST(FuzzReproducibility, SameSeedSameCaseTrace) {
    FuzzOptions options;
    options.seed = 7;
    options.iterations = 40;
    // Generation only: replaying/writing the corpus is covered elsewhere.
    options.corpus_dir.clear();
    options.write_regressions = false;

    const FuzzStats first = run_fuzz(options);
    const FuzzStats second = run_fuzz(options);
    EXPECT_EQ(first.case_trace_hash, second.case_trace_hash);
    EXPECT_EQ(first.iterations_run, second.iterations_run);
    EXPECT_EQ(first.structure_cases, second.structure_cases);
    EXPECT_TRUE(first.clean()) << "fixed-seed smoke run found violations";

    options.seed = 8;
    const FuzzStats other = run_fuzz(options);
    EXPECT_NE(first.case_trace_hash, other.case_trace_hash)
        << "different seeds must explore different cases";
}

// -- seeded fault -------------------------------------------------------------

// Removing the $_COOKIE source rule from the knowledge base makes the
// static engine miss a cookie-to-echo XSS that the dynamic validator can
// confirm concretely — exactly the false negative the interpreter-agreement
// oracle exists to catch.
TEST(FuzzSeededFault, RemovedCookieSourceIsCaughtByAgreementOracle) {
    Tool faulty = make_phpsafe_tool();
    faulty.kb.remove_superglobal("$_COOKIE");

    OracleOptions options;
    options.check_determinism = false;
    options.check_monotonicity = false;
    options.phpsafe_tool = faulty;
    OracleRunner runner(options);

    Mutator mutator(1);
    const FuzzCase c =
        mutator.structure_case_for(corpus::Family::kXssCookieEcho, 0, 0);
    ASSERT_TRUE(c.agreement_eligible);

    const std::vector<Violation> found = runner.run(c);
    ASSERT_FALSE(found.empty()) << "agreement oracle missed the seeded fault";
    bool agreement = false;
    for (const Violation& v : found) agreement |= v.oracle == Oracle::kAgreement;
    EXPECT_TRUE(agreement);

    // The delta-debugging reducer must shrink the repro to something a
    // human can read in one screen, and it must still violate.
    const FuzzCase minimized = reduce_case(c, Oracle::kAgreement, runner);
    EXPECT_LE(minimized.total_lines(), 25);
    bool still_fails = false;
    for (const Violation& v : runner.run(minimized))
        still_fails |= v.oracle == Oracle::kAgreement;
    EXPECT_TRUE(still_fails) << "reducer lost the violation";
}

// The intact tool passes the exact same case — the violation above is the
// fault, not the oracle.
TEST(FuzzSeededFault, IntactToolPassesTheSameCase) {
    OracleRunner runner;
    Mutator mutator(1);
    const FuzzCase c =
        mutator.structure_case_for(corpus::Family::kXssCookieEcho, 0, 0);
    const std::vector<Violation> found = runner.run(c);
    for (const Violation& v : found)
        ADD_FAILURE() << "[" << to_string(v.oracle) << "] " << v.detail;
}

// A removed sanitizer rule is *not* a static false negative (unknown
// functions propagate taint conservatively), so the battery must stay
// quiet: the seeded-fault test above fails for the right reason.
TEST(FuzzSeededFault, RemovedSanitizerStaysConservative) {
    Tool faulty = make_phpsafe_tool();
    faulty.kb.remove_function("htmlspecialchars");

    OracleOptions options;
    options.check_determinism = false;
    options.check_monotonicity = false;
    options.phpsafe_tool = faulty;
    OracleRunner runner(options);

    Mutator mutator(3);
    const FuzzCase c =
        mutator.structure_case_for(corpus::Family::kXssGetEcho, 0, 0);
    for (const Violation& v : runner.run(c))
        EXPECT_NE(v.oracle, Oracle::kAgreement) << v.detail;
}

// The concurrency oracle holds on a vulnerable multi-file case: randomized
// multi-client interleavings of the request variants reproduce the serial
// replay byte-for-byte.
TEST(FuzzOracles, ConcurrencyOracleCleanOnVulnerableCase) {
    OracleOptions options;
    options.check_no_crash = false;
    options.check_determinism = false;
    options.check_monotonicity = false;
    options.check_agreement = false;
    options.check_concurrency = true;
    OracleRunner runner(options);

    FuzzCase c;
    c.name = "concurrency-clean";
    c.files.push_back({"lib.php", "<?php function fwd($v) { return $v; }"});
    c.files.push_back(
        {"main.php",
         "<?php include 'lib.php'; echo fwd($_GET['q']);"});
    for (const Violation& v : runner.run(c))
        ADD_FAILURE() << "[" << to_string(v.oracle) << "] " << v.detail;
}

TEST(FuzzOracles, ConcurrencyOracleNameRoundTrips) {
    EXPECT_EQ(to_string(Oracle::kConcurrency), "concurrency");
    Oracle oracle = Oracle::kNoCrash;
    ASSERT_TRUE(oracle_from_string("concurrency", oracle));
    EXPECT_EQ(oracle, Oracle::kConcurrency);
}

// -- regression file format ---------------------------------------------------

TEST(FuzzCaseFormat, RoundTripsArbitraryBytes) {
    FuzzCase c;
    c.name = "bytes";
    c.byte_level = true;
    std::string text = "<?php echo ";
    text.push_back('\0');
    text += "\xff\xfe 'x';\n# not a header\n--8<-- file: fake len=9\n";
    // File *names* with spaces survive (the file mark anchors on " len=");
    // sink lines are whitespace-delimited, so sinks only ever reference the
    // space-free names the mutator generates.
    c.files.push_back({"weird name.php", text});
    c.files.push_back({"empty.php", ""});
    c.sinks.push_back({"empty.php", 1, VulnKind::kSqli, InputVector::kCookie});

    const std::string body = serialize_case(c, Oracle::kDeterminism);
    FuzzCase parsed;
    Oracle oracle = Oracle::kNoCrash;
    std::string error;
    ASSERT_TRUE(parse_case(body, parsed, oracle, &error)) << error;
    EXPECT_EQ(oracle, Oracle::kDeterminism);
    EXPECT_EQ(parsed.name, c.name);
    EXPECT_TRUE(parsed.byte_level);
    ASSERT_EQ(parsed.files.size(), 2u);
    EXPECT_EQ(parsed.files[0].name, "weird name.php");
    EXPECT_EQ(parsed.files[0].text, text);
    EXPECT_EQ(parsed.files[1].text, "");
    ASSERT_EQ(parsed.sinks.size(), 1u);
    EXPECT_EQ(parsed.sinks[0].file, "empty.php");
    EXPECT_EQ(parsed.sinks[0].line, 1);
    EXPECT_EQ(parsed.sinks[0].kind, VulnKind::kSqli);
    EXPECT_EQ(parsed.sinks[0].vector, InputVector::kCookie);
}

TEST(FuzzCaseFormat, RejectsTruncatedBody) {
    FuzzCase c;
    c.name = "t";
    c.files.push_back({"main.php", "<?php echo 1;\n"});
    std::string body = serialize_case(c, Oracle::kNoCrash);
    body.resize(body.size() - 6);  // chop into the file body
    FuzzCase parsed;
    Oracle oracle;
    EXPECT_FALSE(parse_case(body, parsed, oracle));
}

// -- mutation envelope sanity -------------------------------------------------

// Structure cases must stay inside the envelope the oracles assume:
// agreement cases have exactly one candidate sink per validated file, and
// every sink line must actually exist in its file.
TEST(FuzzMutator, StructureCasesKeepSinkLinesInRange) {
    Mutator mutator(99);
    for (int i = 0; i < 200; ++i) {
        const FuzzCase c = mutator.structure_case(i);
        ASSERT_FALSE(c.files.empty());
        for (const SinkSite& site : c.sinks) {
            int lines = 0;
            bool found = false;
            for (const FuzzFile& file : c.files) {
                if (file.name != site.file) continue;
                found = true;
                lines = 1;
                for (char ch : file.text)
                    if (ch == '\n') ++lines;
            }
            ASSERT_TRUE(found) << c.name << ": sink in unknown file " << site.file;
            ASSERT_GE(site.line, 1) << c.name;
            ASSERT_LE(site.line, lines) << c.name << ": sink line out of range";
        }
    }
}

}  // namespace
}  // namespace phpsafe::fuzz
